//! The [`Strategy`] trait and the primitive strategies (numeric ranges,
//! regex string literals).

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// just produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies behind shared references work like the strategy itself.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// Tuples of strategies generate tuples of values, left to right.
macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
}

/// String literals act as regex strategies (see [`crate::string`] for the
/// supported subset).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_in_bounds() {
        let mut rng = TestRng::for_test("ints");
        let strat = 2usize..9;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..9).contains(&v));
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = TestRng::for_test("floats");
        let strat = -1.0f32..1.0;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn str_literal_is_regex_strategy() {
        let mut rng = TestRng::for_test("re");
        let s = "[a-c]{2,4}".generate(&mut rng);
        assert!((2..=4).contains(&s.len()));
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }
}
