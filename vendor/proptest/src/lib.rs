#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate, covering the subset this
//! workspace uses: the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, range strategies, regex-literal string
//! strategies, [`collection::vec`] and [`sample::select`].
//!
//! The build container has no crates.io access, so the workspace vendors
//! this shim via a path dependency. Differences from real proptest:
//!
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the message instead of minimising them.
//! - **Deterministic.** Each test's RNG is seeded from the test name (or
//!   `PROPTEST_SEED`), so failures reproduce exactly.
//! - The regex strategy supports the subset the workspace's patterns use:
//!   literals, character classes with ranges, groups, and `{m}` / `{m,n}`
//!   repetition.
//!
//! Case count defaults to 64; override with `PROPTEST_CASES`.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything tests normally import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `fn name()` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    // Render inputs up front: the body may consume them.
                    let inputs = ::std::format!(
                        ::std::concat!($("\n  ", ::std::stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    let run = || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!("proptest case {case}/{cases} failed with inputs:{inputs}");
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body (panics with the
/// condition text on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}
