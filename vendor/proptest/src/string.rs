//! Generation of strings matching a regex subset: literal characters,
//! character classes with ranges (`[a-zA-Z ]`), groups, and `{m}` /
//! `{m,n}` repetition — exactly the forms this workspace's property
//! tests use.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<(Node, Repeat)>),
}

#[derive(Debug, Clone, Copy)]
struct Repeat {
    min: usize,
    max: usize,
}

const ONCE: Repeat = Repeat { min: 1, max: 1 };

/// Generates a string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset (alternation,
/// `*`/`+`/`?`, escapes, anchors…), naming the offending pattern.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (nodes, consumed) = parse_sequence(&chars, 0, pattern);
    assert_eq!(consumed, chars.len(), "unbalanced pattern {pattern:?}");
    let mut out = String::new();
    emit_sequence(&nodes, rng, &mut out);
    out
}

fn emit_sequence(nodes: &[(Node, Repeat)], rng: &mut TestRng, out: &mut String) {
    for (node, rep) in nodes {
        let n = rng.usize_inclusive(rep.min, rep.max);
        for _ in 0..n {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::Class(choices) => {
                    out.push(choices[rng.usize_inclusive(0, choices.len() - 1)]);
                }
                Node::Group(inner) => emit_sequence(inner, rng, out),
            }
        }
    }
}

/// Parses until end of input or a closing `)`, returning the nodes and
/// the index just past the last consumed character.
fn parse_sequence(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(Node, Repeat)>, usize) {
    let mut nodes = Vec::new();
    while i < chars.len() && chars[i] != ')' {
        let node = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"))
                    + i;
                let node = Node::Class(expand_class(&chars[i + 1..close], pattern));
                i = close + 1;
                node
            }
            '(' => {
                let (inner, after) = parse_sequence(chars, i + 1, pattern);
                assert!(
                    after < chars.len() && chars[after] == ')',
                    "unterminated group in {pattern:?}"
                );
                i = after + 1;
                Node::Group(inner)
            }
            '*' | '+' | '?' | '|' | '\\' | '^' | '$' | '.' => {
                panic!("unsupported regex feature {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                Node::Literal(c)
            }
        };
        let rep = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            parse_repeat(&body, pattern)
        } else {
            ONCE
        };
        nodes.push((node, rep));
    }
    (nodes, i)
}

fn parse_repeat(body: &str, pattern: &str) -> Repeat {
    let parse = |s: &str| -> usize {
        s.trim().parse().unwrap_or_else(|_| panic!("bad repetition {body:?} in {pattern:?}"))
    };
    match body.split_once(',') {
        Some((min, max)) => {
            let rep = Repeat { min: parse(min), max: parse(max) };
            assert!(rep.min <= rep.max, "inverted repetition {body:?} in {pattern:?}");
            rep
        }
        None => {
            let n = parse(body);
            Repeat { min: n, max: n }
        }
    }
}

/// Expands a class body (`a-zA-Z0-9 _` style) into its member characters.
fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in {pattern:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            out.extend((lo..=hi).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string-strategies")
    }

    #[test]
    fn class_with_repeat() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-d ]{0,30}", &mut r);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c) || c == ' '), "{s:?}");
        }
    }

    #[test]
    fn group_with_repeat() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-c]( [a-c]){0,6}", &mut r);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=7).contains(&words.len()), "{s:?}");
            assert!(words.iter().all(|w| w.len() == 1), "{s:?}");
        }
    }

    #[test]
    fn concatenated_classes() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-z]{0,4}[aeiou][a-z]{0,4}", &mut r);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().any(|c| "aeiou".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn multi_range_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z]{1,16}", &mut r);
            assert!((1..=16).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut r = rng();
        let s = generate_matching("ab[01]{3}", &mut r);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn rejects_unsupported_syntax() {
        generate_matching("a+", &mut rng());
    }
}
