//! Sampling strategies ([`select`]).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy choosing uniformly from a fixed list.
///
/// # Panics
///
/// [`Strategy::generate`] panics if the list is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select over empty list");
        self.options[rng.usize_inclusive(0, self.options.len() - 1)].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options() {
        let strat = select(vec![8_000u32, 16_000, 44_100]);
        let mut rng = TestRng::for_test("select");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
