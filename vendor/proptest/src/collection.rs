//! Collection strategies ([`vec`]).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact `usize` or a half-open
/// `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

/// A strategy producing `Vec`s of values from `element`, with length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_inclusive(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranged_length() {
        let strat = vec(0.0f64..1.0, 1..64);
        let mut rng = TestRng::for_test("vec-range");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..64).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn exact_length() {
        let strat = vec(0u8..10, 16);
        let mut rng = TestRng::for_test("vec-exact");
        assert_eq!(strat.generate(&mut rng).len(), 16);
    }
}
