//! The deterministic RNG and case-count configuration behind
//! [`proptest!`](crate::proptest).

/// Number of cases each property runs: `PROPTEST_CASES` or 64.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// SplitMix64 generator seeded from the test name (or `PROPTEST_SEED`),
/// so every run of a given test sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from `test_name` (FNV-1a), XORed with `PROPTEST_SEED` when
    /// set — giving reproducibility by default and variation on demand.
    pub fn for_test(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let extra =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        TestRng { state: h ^ extra }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_names_differ() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn usize_inclusive_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..500 {
            let v = rng.usize_inclusive(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(rng.usize_inclusive(5, 5), 5);
    }
}
