//! The generator types: [`StdRng`] and [`SmallRng`].
//!
//! Both are xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, so
//! streams are identical across platforms and runs. The real `rand` crate
//! uses different algorithms (ChaCha12 / xoshiro256++); this workspace
//! only relies on *determinism given a seed*, not on any particular
//! stream, so one good generator serves both names.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state, seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

macro_rules! generator {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                $name(Xoshiro256::from_u64(state))
            }
        }
    };
}

generator! {
    /// The default deterministic generator (stands in for `rand::rngs::StdRng`).
    StdRng
}

generator! {
    /// The small fast generator (stands in for `rand::rngs::SmallRng`,
    /// gated behind the `small_rng` feature in the real crate).
    SmallRng
}
