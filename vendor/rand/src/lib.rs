#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate, covering exactly the API subset
//! this workspace uses: [`Rng`] (`gen`, `gen_bool`, `gen_range` over plain
//! and inclusive integer/float ranges), [`SeedableRng::seed_from_u64`] and
//! the [`rngs::StdRng`] / [`rngs::SmallRng`] generator types.
//!
//! The build container has no crates.io access, so the workspace vendors
//! this shim via a path dependency. Both generators are xoshiro256++
//! seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic, which is what the experiment harness needs. The shim is
//! **not** a cryptographic RNG and deliberately implements nothing beyond
//! what the workspace calls.

pub mod rngs;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of a supported primitive type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from the system clock (non-reproducible); the
    /// shim derives it from [`std::time::SystemTime`].
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Maps 64 random bits to a float in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can produce.
pub trait StandardSample {
    /// Draws one value from the standard distribution (full integer
    /// range, `[0, 1)` for floats, fair coin for `bool`).
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Types [`Rng::gen_range`] can sample over.
///
/// A *single* blanket [`SampleRange`] impl per range shape (mirroring the
/// real crate's design) lets `T` unify with the range's element type, so
/// literal ranges like `-0.1..0.1` infer from surrounding arithmetic.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform<R: RngCore>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty gen_range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform<R: RngCore>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty gen_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::uniform(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn float_range_infers_from_context() {
        // Regression guard: a literal range must infer f32 from use.
        let mut rng = SmallRng::seed_from_u64(1);
        let jitter = 1.0 + rng.gen_range(-0.1..0.1);
        let scaled: f32 = 100.0f32 * jitter;
        assert!((89.0..=111.0).contains(&scaled));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
