//! Multi-producer multi-consumer FIFO channels (subset of
//! `crossbeam::channel`).
//!
//! Semantics mirror the real crate: senders and receivers are cloneable;
//! a channel is *disconnected* once every endpoint on the other side is
//! dropped; [`bounded`] blocks sends at capacity. The one deliberate
//! deviation: `bounded(0)` (a rendezvous channel) is approximated with
//! capacity 1 — nothing in this workspace uses rendezvous hand-off.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel buffering at most `cap` messages (`0` is treated
/// as `1`; see module docs).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn full(&self, state: &State<T>) -> bool {
        self.cap.is_some_and(|c| state.queue.len() >= c)
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; cloneable.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Error on [`Sender::send`]: every receiver is gone. Carries the
/// unsent message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error on [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; carries the unsent message.
    Full(T),
    /// Every receiver is gone; carries the unsent message.
    Disconnected(T),
}

/// Error on [`Receiver::recv`]: the channel is empty and every sender is
/// gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error on [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error on [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl<T> Sender<T> {
    /// Blocks until the message is queued (or every receiver is gone).
    ///
    /// # Errors
    ///
    /// Returns the message if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if !self.inner.full(&state) {
                state.queue.push_back(msg);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Queues the message without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
    /// if every receiver is gone; both carry the message back.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if self.inner.full(&state) {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives (or every sender is gone).
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is empty and every sender dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Takes a queued message without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if nothing is queued,
    /// [`TryRecvError::Disconnected`] once empty with no senders left.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        if let Some(msg) = state.queue.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] once empty with no senders left.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) =
                self.inner.not_empty.wait_timeout(state, deadline - now).expect("channel poisoned");
            state = guard;
        }
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Owning blocking iterator; ends when the channel disconnects.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.inner.state.lock().expect("channel poisoned").senders += 1;
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.inner.state.lock().expect("channel poisoned").receivers += 1;
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            drop(state);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            state.queue.clear();
            drop(state);
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        rx.recv().unwrap();
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = bounded(1);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn mpmc_clones_share_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn iterator_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        assert_eq!(rx.iter().sum::<i32>(), 10);
    }
}
