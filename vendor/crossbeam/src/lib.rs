#![warn(missing_docs)]

//! Offline stand-in for the `crossbeam` crate, providing the
//! [`channel`] module subset this workspace uses: bounded/unbounded
//! multi-producer multi-consumer channels with cloneable endpoints,
//! blocking/non-blocking/timed operations and disconnect tracking.
//!
//! The build container has no crates.io access, so the workspace vendors
//! this shim via a path dependency. The implementation is a
//! `Mutex<VecDeque>` + two `Condvar`s — not lock-free like the real
//! crossbeam, but correct, and fast enough for the worker counts this
//! repo runs (a handful of ASR workers, not thousands).

pub mod channel;
