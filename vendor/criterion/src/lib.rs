#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate: [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], [`Bencher::iter`] and
//! [`black_box`].
//!
//! The build container has no crates.io access, so the workspace vendors
//! this shim via a path dependency. Instead of criterion's statistical
//! machinery it runs a short warm-up followed by `sample_size` timed
//! samples and prints min/mean/max per benchmark — enough to compare hot
//! paths release-to-release by eye, with the same bench source code.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{name:32} (no samples)");
            return self;
        }
        let min = samples.iter().min().expect("nonempty");
        let max = samples.iter().max().expect("nonempty");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!("{name:32} min {min:>12.2?}  mean {mean:>12.2?}  max {max:>12.2?}");
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: a few warm-up runs, then `sample_size` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// Declares a benchmark group; both the plain and the
/// `name/config/targets` forms of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 3 warm-up + 5 timed.
        assert_eq!(runs, 8);
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("x", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, target);
        benches();
    }
}
