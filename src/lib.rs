#![warn(missing_docs)]

//! Facade crate re-exporting the MVP-EARS reproduction workspace.
//!
//! Downstream users normally depend on [`mvp_ears`] directly; this package
//! exists so that the repository-level `examples/` and `tests/` can exercise
//! every crate through one import.

pub use mvp_artifact as artifact;
pub use mvp_asr as asr;
pub use mvp_attack as attack;
pub use mvp_audio as audio;
pub use mvp_corpus as corpus;
pub use mvp_dsp as dsp;
pub use mvp_ears as ears;
pub use mvp_ml as ml;
pub use mvp_obs as obs;
pub use mvp_phonetics as phonetics;
pub use mvp_serve as serve;
pub use mvp_textsim as textsim;
