//! The Section III study as a runnable demo: craft AEs against DS0 and
//! test them against every other ASR profile, including the Kaldi variant
//! that differs only in its frame-subsampling factor.
//!
//! Run with `cargo run --release --example transferability`.

use mvp_asr::{Asr, AsrProfile};
use mvp_attack::{whitebox_attack, WhiteBoxConfig};
use mvp_corpus::{command_phrases, CorpusBuilder, CorpusConfig};
use mvp_textsim::wer;

fn main() {
    let ds0 = AsrProfile::Ds0.trained();
    let probes = [
        AsrProfile::Ds1,
        AsrProfile::Gcs,
        AsrProfile::At,
        AsrProfile::Kaldi,
        AsrProfile::KaldiVariant,
    ];
    println!("training {} ASR profiles (one-time)...\n", probes.len() + 1);
    let probe_asrs: Vec<_> = probes.iter().map(|p| p.trained()).collect();

    let hosts = CorpusBuilder::new(CorpusConfig {
        size: 5,
        seed: 1234,
        noise_prob: 0.0,
        ..CorpusConfig::default()
    })
    .build();
    let commands = command_phrases();

    let mut transfers = vec![0usize; probes.len()];
    let mut successes = 0usize;
    for (i, host) in hosts.utterances().iter().enumerate() {
        let cmd = commands[i % commands.len()];
        println!("host {:?} -> command {:?}", host.text, cmd);
        let out = whitebox_attack(&ds0, &host.wave, cmd, &WhiteBoxConfig::default());
        if !out.success {
            println!("  attack failed on DS0; skipping\n");
            continue;
        }
        successes += 1;
        println!(
            "  DS0 hears {:?} (similarity {:.1}%)",
            out.final_transcription,
            out.similarity * 100.0
        );
        for (j, asr) in probe_asrs.iter().enumerate() {
            let heard = asr.transcribe(&out.adversarial);
            let transferred = wer(cmd, &heard) == 0.0;
            if transferred {
                transfers[j] += 1;
            }
            println!(
                "  {:<11} hears {:?}{}",
                asr.name(),
                heard,
                if transferred { "  <-- TRANSFERRED" } else { "" }
            );
        }
        println!();
    }

    println!("summary over {successes} successful DS0 AEs:");
    for (p, &t) in probes.iter().zip(&transfers) {
        println!("  transfer to {:<11}: {t}/{successes}", p.name());
    }
    println!(
        "\nThe paper's finding — and this workspace's — is that audio AEs rarely \
         transfer across\ndiverse ASRs, which is exactly the signal MVP-EARS detects."
    );
}
