//! Quickstart: build an MVP-EARS detector, craft one adversarial example,
//! and watch the detector catch it.
//!
//! Run with `cargo run --release --example quickstart`.

use mvp_asr::{Asr, AsrProfile};
use mvp_attack::{whitebox_attack, WhiteBoxConfig};
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears::DetectionSystem;
use mvp_ml::ClassifierKind;

fn main() {
    // 1. A detection system: target DS0, auxiliary DS1 (both train on the
    //    first call and are cached process-wide).
    println!("training ASR profiles (one-time, a few seconds each)...");
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    println!("system: {}", system.name());

    // 2. A small benign corpus and one white-box AE for training/demo.
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 12, seed: 7, ..CorpusConfig::default() }).build();
    let benign: Vec<_> = corpus.utterances().iter().map(|u| u.wave.clone()).collect();

    println!("crafting a white-box AE (host: {:?})...", corpus.utterances()[0].text);
    let ds0 = AsrProfile::Ds0.trained();
    let attack = whitebox_attack(
        &ds0,
        &corpus.utterances()[0].wave,
        "open the front door",
        &WhiteBoxConfig::default(),
    );
    println!("attack outcome: {attack}");
    assert!(attack.success, "demo attack unexpectedly failed");

    // 3. Train the binary classifier on similarity-score vectors.
    let benign_scores: Vec<Vec<f64>> = benign.iter().map(|w| system.score_vector(w)).collect();
    let ae_scores = vec![system.score_vector(&attack.adversarial)];
    system.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);

    // 4. Detect.
    let verdict = system.detect(&attack.adversarial);
    println!("\nAE verdict: adversarial = {}", verdict.is_adversarial);
    println!("  target   ({}) heard: {:?}", ds0.name(), verdict.target_transcription);
    println!("  auxiliary heard:          {:?}", verdict.auxiliary_transcriptions[0]);
    println!("  similarity scores: {:?}", verdict.scores);

    let clean = system.detect(&benign[1]);
    println!("\nbenign verdict: adversarial = {}", clean.is_adversarial);
    println!("  similarity scores: {:?}", clean.scores);

    assert!(verdict.is_adversarial && !clean.is_adversarial);
    println!("\nMVP-EARS caught the AE and passed the benign sample.");
}
