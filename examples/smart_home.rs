//! Smart-home scenario from the paper's introduction: an adversary embeds
//! "open the front door" into innocuous audio played near a voice-controlled
//! home, and the MVP-EARS detector guarding the assistant refuses it.
//!
//! Uses the full three-auxiliary system DS0+{DS1, GCS, AT} — the paper's
//! best configuration (99.88% accuracy).
//!
//! Run with `cargo run --release --example smart_home`.

use mvp_asr::{Asr, AsrProfile};
use mvp_attack::{whitebox_attack, WhiteBoxConfig};
use mvp_corpus::{CorpusBuilder, CorpusConfig};
use mvp_ears::DetectionSystem;
use mvp_ml::ClassifierKind;

/// Commands a smart home must never accept from unverified audio.
const DANGEROUS: [&str; 3] = ["open the front door", "unlock the garage", "turn off the alarm"];

fn main() {
    println!("training the four ASR profiles (one-time)...");
    let mut guard = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .auxiliary(AsrProfile::At)
        .build();
    println!("guard system: {}\n", guard.name());

    // Household audio the assistant normally hears.
    let household =
        CorpusBuilder::new(CorpusConfig { size: 16, seed: 99, ..CorpusConfig::default() }).build();

    // Train the guard: benign household audio vs a handful of crafted AEs.
    let ds0 = AsrProfile::Ds0.trained();
    println!("crafting {} training AEs...", DANGEROUS.len());
    let mut ae_scores = Vec::new();
    for (i, cmd) in DANGEROUS.iter().enumerate() {
        let host = &household.utterances()[i].wave;
        let out = whitebox_attack(&ds0, host, cmd, &WhiteBoxConfig::default());
        if out.success {
            ae_scores.push(guard.score_vector(&out.adversarial));
        }
    }
    let benign_scores: Vec<Vec<f64>> = household
        .utterances()
        .iter()
        .skip(DANGEROUS.len())
        .map(|u| guard.score_vector(&u.wave))
        .collect();
    guard.train_on_scores(&benign_scores, &ae_scores, ClassifierKind::Svm);

    // The actual attack: a *fresh* AE on unseen household audio.
    let fresh_host = &household.utterances()[DANGEROUS.len() + 1];
    println!("\nadversary plays audio that sounds like {:?}...", fresh_host.text);
    let attack =
        whitebox_attack(&ds0, &fresh_host.wave, "open the front door", &WhiteBoxConfig::default());
    if !attack.success {
        println!("(the attack itself failed; the door stays shut trivially)");
        return;
    }
    println!("the assistant's own ASR ({}) hears: {:?}", ds0.name(), attack.final_transcription);

    let verdict = guard.detect(&attack.adversarial);
    println!("\nMVP-EARS verdict: adversarial = {}", verdict.is_adversarial);
    for (asr, text) in ["DS1", "GCS", "AT"].iter().zip(&verdict.auxiliary_transcriptions) {
        println!("  {asr} heard {text:?}");
    }
    println!("  similarity scores: {:?}", verdict.scores);
    if verdict.is_adversarial {
        println!("\ncommand rejected — the front door stays locked.");
    } else {
        println!("\ncommand accepted — detection failed on this sample!");
    }
}
