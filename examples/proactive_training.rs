//! Section V-H as a runnable demo: synthesize hypothetical *transferable*
//! (multiple-ASR-effective) AEs at the feature-vector level, train the
//! comprehensive detector on the two-auxiliary-fooling types, and show it
//! still catches every less-transferable AE — before any real transferable
//! audio AE exists.
//!
//! Run with `cargo run --release --example proactive_training`.

use mvp_asr::AsrProfile;
use mvp_attack::{whitebox_attack, WhiteBoxConfig};
use mvp_corpus::{command_phrases, CorpusBuilder, CorpusConfig};
use mvp_ears::eval::ScorePools;
use mvp_ears::{synthesize_mae, DetectionSystem, MaeType};
use mvp_ml::{ClassifierKind, Mat};

fn main() {
    println!("training the four ASR profiles (one-time)...");
    let mut system = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary(AsrProfile::Ds1)
        .auxiliary(AsrProfile::Gcs)
        .auxiliary(AsrProfile::At)
        .build();

    // Real score pools: benign audio and a handful of real (DS0-only) AEs.
    let corpus =
        CorpusBuilder::new(CorpusConfig { size: 10, seed: 5, ..CorpusConfig::default() }).build();
    let benign: Vec<Vec<f64>> =
        corpus.utterances().iter().map(|u| system.score_vector(&u.wave)).collect();
    let ds0 = AsrProfile::Ds0.trained();
    println!("crafting a few real AEs for the attack score pool...");
    let mut real_aes = Vec::new();
    for (i, cmd) in command_phrases().iter().take(4).enumerate() {
        let out =
            whitebox_attack(&ds0, &corpus.utterances()[i].wave, cmd, &WhiteBoxConfig::default());
        if out.success {
            real_aes.push(system.score_vector(&out.adversarial));
        }
    }
    let pools = ScorePools::from_score_vectors(&benign, &real_aes);

    // Synthesize the six hypothetical MAE types (one score row per AE).
    let per_type: Vec<Mat> = MaeType::ALL
        .iter()
        .enumerate()
        .map(|(i, t)| synthesize_mae(&pools, &t.fooled_mask(), 200, i as u64))
        .collect();

    // Comprehensive training set: Types 4-6 (each fools two auxiliaries).
    let mut train_aes = Mat::zeros(0, pools.n_auxiliaries());
    for vectors in &per_type[3..6] {
        for row in vectors.rows() {
            train_aes.push_row(row);
        }
    }
    let mut train_benign = Mat::zeros(0, pools.n_auxiliaries());
    for i in 0..train_aes.n_rows() {
        train_benign.push_row(&benign[i % benign.len()]);
    }
    let n_train = train_aes.n_rows();
    system.train_on_mats(train_benign, train_aes, ClassifierKind::Svm);
    println!("\ncomprehensive system trained on {n_train} synthesized MAE vectors");

    // It must now catch everything *less* transferable than its training AEs.
    for (i, t) in MaeType::ALL.iter().enumerate().take(3) {
        let caught = per_type[i].rows().filter(|v| system.classify_scores(v)).count();
        println!("  defense vs {}: {}/{}", t.name(), caught, per_type[i].n_rows());
    }
    let caught_real = real_aes.iter().filter(|v| system.classify_scores(v)).count();
    println!("  defense vs real (DS0-only) AEs: {caught_real}/{}", real_aes.len());
    println!(
        "\nThe detector was never shown a real transferable AE, yet it flags every\n\
         hypothetical one that fools a subset of its training fool-sets — the paper's\n\
         'one giant step ahead of attackers' claim."
    );
}
