//! The long-lived detection engine.
//!
//! ```text
//!  submit() ──try_send──▶ ingress queue (bounded; full ⇒ shed)
//!                             │
//!                         batcher thread
//!                  cache hits answered inline; misses
//!                  grouped into micro-batches (flush on
//!                  max_batch or max_delay_ms, deduped by
//!                  waveform hash)
//!                    │                      │
//!          BatchMeta ─▶ collector    WorkItem ─▶ one persistent
//!                            ▲               worker per recogniser
//!                            └── WorkResult ──┘   (transcribe_batch)
//!                             │
//!                         collector thread
//!                  joins results per batch; finalizes full
//!                  verdicts, inserts the cache, and applies
//!                  the degradation policy to deadline misses
//!                             │
//!                       reply channel ──▶ PendingVerdict::wait()
//! ```
//!
//! Unlike [`DetectionSystem::detect`], which spawns one thread per
//! recogniser per call, the engine keeps one worker per recogniser alive
//! for its whole lifetime and feeds each worker whole batches, so thread
//! startup and feature-extraction scratch allocations are amortised
//! across requests.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};

use mvp_artifact::{ArtifactError, Persist};
use mvp_asr::{AsrScratch, TrainedAsr};
use mvp_audio::Waveform;
use mvp_ears::{DetectionSystem, DetectionSystemSnapshot};

use crate::cache::{waveform_key, LruCache, TranscriptVec};
use crate::degrade::{DegradePolicy, FallbackTier};
use crate::stats::{ServeStats, StatsSnapshot};

/// Engine tuning knobs. The defaults suit an interactive service; load
/// tests override them per level.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Ingress queue capacity; a full queue sheds new requests.
    pub queue_cap: usize,
    /// Flush a micro-batch when it reaches this many requests.
    pub max_batch: usize,
    /// ... or when the oldest queued request has waited this long.
    pub max_delay_ms: u64,
    /// Per-request deadline. The target ASR missing it fails the request;
    /// an auxiliary missing it degrades the verdict.
    pub deadline_ms: u64,
    /// Per-auxiliary deadline override (clamped to `deadline_ms`).
    /// `None` inherits `deadline_ms`; `Some(0)` disables the auxiliary
    /// outright (it is never dispatched — deterministic degraded mode).
    /// May be shorter than the full auxiliary list; missing tail entries
    /// are `None`.
    pub aux_deadline_ms: Vec<Option<u64>>,
    /// Transcription-cache capacity in waveforms; `0` disables caching.
    pub cache_cap: usize,
    /// Model directory for [`DetectionEngine::start_or_warm`]: when set,
    /// the engine loads its detection system from
    /// `<model_dir>/detector.mvpa` instead of training, and persists the
    /// system there after a cold start. `None` disables the disk tier.
    pub model_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue_cap: 64,
            max_batch: 8,
            max_delay_ms: 5,
            deadline_ms: 1_000,
            aux_deadline_ms: Vec::new(),
            cache_cap: 256,
            model_dir: None,
        }
    }
}

/// How a verdict was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Every recogniser answered; full classifier verdict.
    Full,
    /// At least one auxiliary was missing; a fallback tier answered.
    Degraded(FallbackTier),
    /// The target ASR itself missed the deadline; no verdict possible.
    Failed,
}

/// The engine's answer for one request.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The classification, or `None` when the request [failed](VerdictKind::Failed).
    pub is_adversarial: Option<bool>,
    /// Full, degraded, or failed.
    pub kind: VerdictKind,
    /// Whether the transcription vector came from the cache.
    pub from_cache: bool,
    /// Per-auxiliary similarity scores; `None` where the auxiliary was
    /// missing.
    pub scores: Vec<Option<f64>>,
    /// The target transcription, when the target answered.
    pub target_transcription: Option<String>,
    /// End-to-end latency from `submit` to finalization.
    pub latency: Duration,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The ingress queue is full — backpressure; retry later.
    Overloaded,
    /// The engine has shut down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "ingress queue full (request shed)"),
            SubmitError::Closed => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A handle to a verdict still being computed.
#[derive(Debug)]
pub struct PendingVerdict {
    rx: Receiver<Verdict>,
}

impl PendingVerdict {
    /// Blocks until the verdict arrives. Every accepted request is
    /// answered, even through shutdown and deadline misses.
    ///
    /// # Panics
    ///
    /// Panics if the engine's threads died without replying (a bug).
    pub fn wait(self) -> Verdict {
        self.rx.recv().expect("engine dropped the reply channel")
    }

    /// Returns the verdict if it is already available.
    pub fn try_wait(&self) -> Option<Verdict> {
        self.rx.try_recv().ok()
    }
}

struct Request {
    wave: Arc<Waveform>,
    key: u64,
    submitted: Instant,
    reply: Sender<Verdict>,
}

struct Waiter {
    reply: Sender<Verdict>,
    submitted: Instant,
}

/// One unique waveform within a batch and everyone waiting on it.
struct BatchItem {
    key: u64,
    waiters: Vec<Waiter>,
}

struct WorkItem {
    batch_id: u64,
    waves: Vec<Arc<Waveform>>,
}

struct WorkResult {
    batch_id: u64,
    asr_index: usize,
    texts: Vec<String>,
}

struct BatchMeta {
    batch_id: u64,
    items: Vec<BatchItem>,
    /// Per recogniser (target first): whether work was sent to it.
    dispatched: Vec<bool>,
    /// Per recogniser: when the collector stops waiting for it.
    deadlines: Vec<Instant>,
}

enum CollectorMsg {
    Meta(BatchMeta),
    Result(WorkResult),
}

struct BatchState {
    items: Vec<BatchItem>,
    dispatched: Vec<bool>,
    deadlines: Vec<Instant>,
    /// Per recogniser: transcriptions aligned with `items`.
    results: Vec<Option<Vec<String>>>,
}

impl BatchState {
    /// Ready when every dispatched recogniser has answered or timed out.
    fn is_ready(&self, now: Instant) -> bool {
        (0..self.dispatched.len())
            .all(|i| !self.dispatched[i] || self.results[i].is_some() || now >= self.deadlines[i])
    }

    /// The next instant at which readiness can change by timeout alone.
    fn next_deadline(&self) -> Option<Instant> {
        (0..self.dispatched.len())
            .filter(|&i| self.dispatched[i] && self.results[i].is_none())
            .map(|i| self.deadlines[i])
            .min()
    }
}

type SharedCache = Arc<Mutex<LruCache<u64, TranscriptVec>>>;

/// The long-lived serving engine. Dropping it drains in-flight requests
/// (each gets a verdict) and joins all threads.
pub struct DetectionEngine {
    ingress: Option<Sender<Request>>,
    threads: Vec<JoinHandle<()>>,
    stats: Arc<ServeStats>,
}

impl std::fmt::Debug for DetectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionEngine").field("threads", &self.threads.len()).finish()
    }
}

impl DetectionEngine {
    /// Starts the engine: one batcher, one persistent worker per
    /// recogniser, one collector.
    ///
    /// # Panics
    ///
    /// Panics if the system is untrained, `queue_cap`/`max_batch` is
    /// zero, or `aux_deadline_ms` is longer than the auxiliary list.
    pub fn start(
        system: Arc<DetectionSystem>,
        policy: DegradePolicy,
        config: EngineConfig,
    ) -> DetectionEngine {
        assert!(system.is_trained(), "serve a trained DetectionSystem");
        assert!(config.queue_cap > 0, "queue_cap must be positive");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let n_aux = system.n_auxiliaries();
        assert!(
            config.aux_deadline_ms.len() <= n_aux,
            "aux_deadline_ms has {} entries for {} auxiliaries",
            config.aux_deadline_ms.len(),
            n_aux
        );
        assert_eq!(policy.n_aux(), n_aux, "degrade policy dimension mismatch");

        let stats = Arc::new(ServeStats::new());
        let policy = Arc::new(policy);
        let cache: Option<SharedCache> =
            (config.cache_cap > 0).then(|| Arc::new(Mutex::new(LruCache::new(config.cache_cap))));

        let (ingress_tx, ingress_rx) = channel::bounded::<Request>(config.queue_cap);
        let (collector_tx, collector_rx) = channel::unbounded::<CollectorMsg>();

        let recognizers = system.recognizers();
        let mut threads = Vec::with_capacity(recognizers.len() + 2);
        let mut worker_txs = Vec::with_capacity(recognizers.len());
        for (i, asr) in recognizers.into_iter().enumerate() {
            let (tx, rx) = channel::unbounded::<WorkItem>();
            worker_txs.push(tx);
            let collector_tx = collector_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(asr, i, rx, collector_tx))
                    .expect("spawn worker"),
            );
        }

        {
            let system = Arc::clone(&system);
            let stats = Arc::clone(&stats);
            let cache = cache.clone();
            let config = config.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-batcher".into())
                    .spawn(move || {
                        batcher_loop(
                            system,
                            config,
                            ingress_rx,
                            worker_txs,
                            collector_tx,
                            cache,
                            stats,
                        )
                    })
                    .expect("spawn batcher"),
            );
        }

        {
            let stats = Arc::clone(&stats);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-collector".into())
                    .spawn(move || collector_loop(system, policy, collector_rx, cache, stats))
                    .expect("spawn collector"),
            );
        }

        DetectionEngine { ingress: Some(ingress_tx), threads, stats }
    }

    /// File name of the persisted detection system inside
    /// [`EngineConfig::model_dir`].
    pub const SNAPSHOT_FILE: &'static str = "detector.mvpa";

    /// Starts the engine, warm-starting from `config.model_dir` when a
    /// persisted detection system exists there.
    ///
    /// - snapshot present and valid → restore it (no training) and start;
    ///   returns `warm = true`;
    /// - snapshot absent (or no `model_dir`) → call `cold` to build the
    ///   system, persist it for the next process, and start; returns
    ///   `warm = false`;
    /// - snapshot present but unreadable (corrupt, version skew) → return
    ///   the error rather than silently retraining; the caller decides
    ///   whether to delete the artifact or run cold.
    ///
    /// # Panics
    ///
    /// Panics as [`start`](Self::start) does on invalid configs or an
    /// untrained cold system.
    pub fn start_or_warm(
        policy: DegradePolicy,
        config: EngineConfig,
        cold: impl FnOnce() -> DetectionSystem,
    ) -> Result<(DetectionEngine, bool), ArtifactError> {
        let path = config.model_dir.as_ref().map(|dir| dir.join(Self::SNAPSHOT_FILE));
        if let Some(path) = &path {
            match DetectionSystemSnapshot::load_file(path) {
                Ok(snapshot) => {
                    let system = Arc::new(snapshot.restore());
                    return Ok((Self::start(system, policy, config), true));
                }
                Err(err) if err.is_not_found() => {}
                Err(err) => return Err(err),
            }
        }
        let system = Arc::new(cold());
        if let Some(path) = &path {
            DetectionSystemSnapshot::capture(&system).save_file(path)?;
        }
        Ok((Self::start(system, policy, config), false))
    }

    /// Submits a waveform for detection. Non-blocking: a full ingress
    /// queue sheds the request with [`SubmitError::Overloaded`].
    pub fn submit(&self, wave: impl Into<Arc<Waveform>>) -> Result<PendingVerdict, SubmitError> {
        let tx = self.ingress.as_ref().ok_or(SubmitError::Closed)?;
        let wave = wave.into();
        let key = waveform_key(&wave);
        let (reply_tx, reply_rx) = channel::bounded(1);
        let request = Request { wave, key, submitted: Instant::now(), reply: reply_tx };
        // Gauge first so it never underflows against the batcher's decrement.
        self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(request) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(PendingVerdict { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::Closed)
            }
        }
    }

    /// Convenience: submit and block for the verdict.
    pub fn detect_blocking(&self, wave: impl Into<Arc<Waveform>>) -> Result<Verdict, SubmitError> {
        self.submit(wave).map(PendingVerdict::wait)
    }

    /// A point-in-time copy of the engine metrics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Shuts down explicitly (Drop does the same): stops intake, drains
    /// in-flight requests, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.ingress.take());
        for t in self.threads.drain(..) {
            if let Err(panic) = t.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for DetectionEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    asr: Arc<TrainedAsr>,
    asr_index: usize,
    work: Receiver<WorkItem>,
    out: Sender<CollectorMsg>,
) {
    // One scratch plan per worker thread: after the first few batches every
    // pipeline intermediate is served from these buffers, so steady-state
    // batches allocate nothing on the hot path.
    let mut scratch = AsrScratch::default();
    for WorkItem { batch_id, waves } in work.iter() {
        let refs: Vec<&Waveform> = waves.iter().map(Arc::as_ref).collect();
        let texts = asr.transcribe_batch_with(&refs, &mut scratch);
        if out.send(CollectorMsg::Result(WorkResult { batch_id, asr_index, texts })).is_err() {
            return;
        }
    }
}

fn batcher_loop(
    system: Arc<DetectionSystem>,
    config: EngineConfig,
    ingress: Receiver<Request>,
    worker_txs: Vec<Sender<WorkItem>>,
    collector_tx: Sender<CollectorMsg>,
    cache: Option<SharedCache>,
    stats: Arc<ServeStats>,
) {
    let n_rec = worker_txs.len();
    let overall = Duration::from_millis(config.deadline_ms);
    let max_delay = Duration::from_millis(config.max_delay_ms);
    let mut next_batch_id = 0u64;
    let mut pending: Vec<Request> = Vec::new();
    let mut flush_at: Option<Instant> = None;

    let flush = |pending: &mut Vec<Request>, next_batch_id: &mut u64| {
        if pending.is_empty() {
            return;
        }
        let batch_id = *next_batch_id;
        *next_batch_id += 1;

        let mut items: Vec<BatchItem> = Vec::new();
        let mut waves: Vec<Arc<Waveform>> = Vec::new();
        let mut index_of: HashMap<u64, usize> = HashMap::new();
        let mut earliest = pending[0].submitted;
        let n_requests = pending.len() as u64;
        for Request { wave, key, submitted, reply } in pending.drain(..) {
            earliest = earliest.min(submitted);
            let waiter = Waiter { reply, submitted };
            match index_of.get(&key) {
                Some(&idx) => items[idx].waiters.push(waiter),
                None => {
                    index_of.insert(key, items.len());
                    waves.push(wave);
                    items.push(BatchItem { key, waiters: vec![waiter] });
                }
            }
        }

        let mut dispatched = vec![true; n_rec];
        let mut deadlines = vec![earliest + overall; n_rec];
        for (j, override_ms) in config.aux_deadline_ms.iter().enumerate() {
            match override_ms {
                Some(0) => dispatched[j + 1] = false,
                Some(ms) => {
                    deadlines[j + 1] =
                        earliest + Duration::from_millis((*ms).min(config.deadline_ms));
                }
                None => {}
            }
        }

        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_requests.fetch_add(n_requests, Ordering::Relaxed);

        // Meta enters the collector queue before any worker can answer, so
        // the collector always knows a batch before seeing its results.
        let meta = BatchMeta { batch_id, items, dispatched: dispatched.clone(), deadlines };
        if collector_tx.send(CollectorMsg::Meta(meta)).is_err() {
            return;
        }
        for (i, tx) in worker_txs.iter().enumerate() {
            if dispatched[i] {
                let _ = tx.send(WorkItem { batch_id, waves: waves.clone() });
            }
        }
    };

    loop {
        let received = match flush_at {
            None => ingress.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(t) => ingress.recv_timeout(t.saturating_duration_since(Instant::now())),
        };
        match received {
            Ok(request) => {
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                if let Some(cached) = lookup(&cache, &request.key, &stats) {
                    answer_cache_hit(&system, &request, &cached, &stats);
                    continue;
                }
                pending.push(request);
                if pending.len() >= config.max_batch {
                    flush(&mut pending, &mut next_batch_id);
                    flush_at = None;
                } else if flush_at.is_none() {
                    flush_at = Some(Instant::now() + max_delay);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                flush(&mut pending, &mut next_batch_id);
                flush_at = None;
            }
            Err(RecvTimeoutError::Disconnected) => {
                flush(&mut pending, &mut next_batch_id);
                return; // drops worker and collector senders
            }
        }
    }
}

fn lookup(cache: &Option<SharedCache>, key: &u64, stats: &ServeStats) -> Option<TranscriptVec> {
    let cache = cache.as_ref()?;
    stats.cache_lookups.fetch_add(1, Ordering::Relaxed);
    let hit = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(key).cloned();
    if hit.is_some() {
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

fn answer_cache_hit(
    system: &DetectionSystem,
    request: &Request,
    texts: &TranscriptVec,
    stats: &ServeStats,
) {
    let (target, auxiliaries) = DetectionSystem::split_transcripts(texts.as_ref().clone());
    let detection = system.detect_from_transcripts(target, auxiliaries);
    let verdict = Verdict {
        is_adversarial: Some(detection.is_adversarial),
        kind: VerdictKind::Full,
        from_cache: true,
        scores: detection.scores.into_iter().map(Some).collect(),
        target_transcription: Some(detection.target_transcription),
        latency: request.submitted.elapsed(),
    };
    stats.latency.record(verdict.latency);
    stats.completed.fetch_add(1, Ordering::Relaxed);
    let _ = request.reply.send(verdict);
}

fn collector_loop(
    system: Arc<DetectionSystem>,
    policy: Arc<DegradePolicy>,
    rx: Receiver<CollectorMsg>,
    cache: Option<SharedCache>,
    stats: Arc<ServeStats>,
) {
    let mut batches: HashMap<u64, BatchState> = HashMap::new();
    loop {
        let next_deadline = batches.values().filter_map(BatchState::next_deadline).min();
        let received = match next_deadline {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(t) => rx.recv_timeout(t.saturating_duration_since(Instant::now())),
        };
        match received {
            Ok(CollectorMsg::Meta(meta)) => {
                let n_rec = meta.dispatched.len();
                batches.insert(
                    meta.batch_id,
                    BatchState {
                        items: meta.items,
                        dispatched: meta.dispatched,
                        deadlines: meta.deadlines,
                        results: (0..n_rec).map(|_| None).collect(),
                    },
                );
            }
            Ok(CollectorMsg::Result(result)) => {
                if let Some(state) = batches.get_mut(&result.batch_id) {
                    state.results[result.asr_index] = Some(result.texts);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Producers gone and their queue drained: every result that
            // will ever arrive has arrived, so finalize what remains
            // (missing slots count as missed) rather than waiting out
            // deadlines.
            Err(RecvTimeoutError::Disconnected) => {
                for (_, state) in batches.drain() {
                    finalize(&system, &policy, &cache, &stats, state);
                }
                return;
            }
        }
        let now = Instant::now();
        let ready: Vec<u64> =
            batches.iter().filter(|(_, s)| s.is_ready(now)).map(|(&id, _)| id).collect();
        for id in ready {
            let state = batches.remove(&id).expect("ready batch present");
            finalize(&system, &policy, &cache, &stats, state);
        }
    }
}

fn finalize(
    system: &DetectionSystem,
    policy: &DegradePolicy,
    cache: &Option<SharedCache>,
    stats: &ServeStats,
    state: BatchState,
) {
    let n_rec = state.results.len();
    let n_aux = n_rec - 1;
    for (idx, item) in state.items.into_iter().enumerate() {
        let target = state.results[0].as_ref().map(|texts| texts[idx].clone());
        let verdict = match target {
            None => Verdict {
                is_adversarial: None,
                kind: VerdictKind::Failed,
                from_cache: false,
                scores: vec![None; n_aux],
                target_transcription: None,
                latency: Duration::ZERO,
            },
            Some(target) => {
                let available: Vec<(usize, String)> = (0..n_aux)
                    .filter_map(|j| {
                        state.results[j + 1].as_ref().map(|texts| (j, texts[idx].clone()))
                    })
                    .collect();
                if available.len() == n_aux {
                    let auxiliaries: Vec<String> = available.into_iter().map(|(_, t)| t).collect();
                    let detection = system.detect_from_transcripts(target, auxiliaries);
                    if let Some(cache) = cache {
                        let mut vector = Vec::with_capacity(n_rec);
                        vector.push(detection.target_transcription.clone());
                        vector.extend(detection.auxiliary_transcriptions.iter().cloned());
                        cache
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .insert(item.key, Arc::new(vector));
                    }
                    Verdict {
                        is_adversarial: Some(detection.is_adversarial),
                        kind: VerdictKind::Full,
                        from_cache: false,
                        scores: detection.scores.into_iter().map(Some).collect(),
                        target_transcription: Some(detection.target_transcription),
                        latency: Duration::ZERO,
                    }
                } else {
                    let indices: Vec<usize> = available.iter().map(|&(j, _)| j).collect();
                    let texts: Vec<String> = available.into_iter().map(|(_, t)| t).collect();
                    let partial = system.scores_from_transcripts(&target, &texts);
                    let pairs: Vec<(usize, f64)> =
                        indices.iter().copied().zip(partial.iter().copied()).collect();
                    let (is_adversarial, tier) = policy.classify(&pairs);
                    let mut scores = vec![None; n_aux];
                    for (&j, &s) in indices.iter().zip(partial.iter()) {
                        scores[j] = Some(s);
                    }
                    Verdict {
                        is_adversarial: Some(is_adversarial),
                        kind: VerdictKind::Degraded(tier),
                        from_cache: false,
                        scores,
                        target_transcription: Some(target),
                        latency: Duration::ZERO,
                    }
                }
            }
        };
        for waiter in item.waiters {
            let mut verdict = verdict.clone();
            verdict.latency = waiter.submitted.elapsed();
            match verdict.kind {
                VerdictKind::Failed => {
                    stats.deadline_failures.fetch_add(1, Ordering::Relaxed);
                }
                VerdictKind::Degraded(_) => {
                    stats.degraded.fetch_add(1, Ordering::Relaxed);
                }
                VerdictKind::Full => {}
            }
            stats.latency.record(verdict.latency);
            stats.completed.fetch_add(1, Ordering::Relaxed);
            let _ = waiter.reply.send(verdict);
        }
    }
}
