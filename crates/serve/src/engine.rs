//! The long-lived detection engine.
//!
//! ```text
//!  submit() ──try_send──▶ ingress queue (bounded; full ⇒ shed)
//!                             │
//!                         batcher thread
//!                  cache hits answered inline; misses
//!                  grouped into micro-batches (flush on
//!                  max_batch or max_delay_ms, deduped by
//!                  waveform hash)
//!                    │                      │
//!          BatchMeta ─▶ collector    WorkItem ─▶ one persistent
//!                            ▲               worker per recogniser
//!                            └── WorkResult ──┘   (transcribe_batch)
//!                             │
//!                         collector thread
//!                  joins results per batch; finalizes full
//!                  verdicts, inserts the cache, and applies
//!                  the degradation policy to deadline misses
//!                             │
//!                       reply channel ──▶ PendingVerdict::wait()
//! ```
//!
//! Unlike [`DetectionSystem::detect`], which spawns one thread per
//! recogniser per call, the engine keeps one worker per recogniser alive
//! for its whole lifetime and feeds each worker whole batches, so thread
//! startup and feature-extraction scratch allocations are amortised
//! across requests.
//!
//! Streamed requests ([`DetectionEngine::submit_stream`]) ride the same
//! threads: the batcher forwards each chunk to every worker immediately
//! (streams are not micro-batched), each worker advances one incremental
//! [`AsrStream`] per open stream, and the collector assembles the running
//! transcripts — firing an early `Adversarial` verdict when the
//! configured [`EngineConfig::early_exit`] rule trips, or the full
//! end-of-stream verdict at [`StreamHandle::finish`]. With early exit
//! off, a chunked stream and a one-shot [`submit`](DetectionEngine::submit)
//! of the same signal produce byte-identical transcripts and scores.
//! Streams are flow-controlled, not shed: a full ingress queue blocks
//! the pushing caller instead of dropping a chunk mid-utterance. They
//! bypass the transcription cache, per-recogniser deadlines, and
//! modality scoring (the audio is consumed chunk by chunk, never
//! retained server-side).
//!
//! Every stage is instrumented: `serve.submit`, `serve.flush`,
//! `serve.cache_hit`, `serve.transcribe_batch` and `serve.finalize`
//! spans (inert unless `mvp_obs::trace` is enabled), registry-backed
//! [`ServeStats`] counters, and — when [`EngineConfig::audit`] is set —
//! one JSONL record per verdict or shed from which the decision can be
//! reconstructed offline.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};

use mvp_artifact::{ArtifactError, Persist};
use mvp_asr::{Asr, AsrProfile, AsrScratch, AsrStream, TrainedAsr};
use mvp_audio::Waveform;
use mvp_ears::{DetectionSystem, DetectionSystemSnapshot, EarlyExit};
use mvp_modality::{ModalityInput, ModalityKind};
use mvp_obs::metrics::Counter;
use mvp_obs::{AuditLog, JsonObj, Registry};

use crate::cache::{waveform_key, LruCache, TranscriptVec};
use crate::degrade::{DegradePolicy, FallbackTier};
use crate::stats::{ServeStats, StatsSnapshot};

/// Engine tuning knobs. The defaults suit an interactive service; load
/// tests override them per level.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Ingress queue capacity; a full queue sheds new requests.
    pub queue_cap: usize,
    /// Flush a micro-batch when it reaches this many requests.
    pub max_batch: usize,
    /// ... or when the oldest queued request has waited this long.
    pub max_delay_ms: u64,
    /// Per-request deadline. The target ASR missing it fails the request;
    /// an auxiliary missing it degrades the verdict.
    pub deadline_ms: u64,
    /// Per-auxiliary deadline override (clamped to `deadline_ms`).
    /// `None` inherits `deadline_ms`; `Some(0)` disables the auxiliary
    /// outright (it is never dispatched — deterministic degraded mode).
    /// May be shorter than the full auxiliary list; missing tail entries
    /// are `None`.
    pub aux_deadline_ms: Vec<Option<u64>>,
    /// Per-auxiliary precision mix (the PVP axis): `true` swaps that
    /// auxiliary's persistent worker to the profile's int8 quantized
    /// variant at engine start, so the ensemble mixes f64 and int8
    /// members without retraining or re-snapshotting. May be shorter
    /// than the auxiliary list; missing tail entries stay f64. An
    /// auxiliary that is already an int8 variant is left as-is; one
    /// whose name matches no [`AsrProfile`] cannot be swapped and fails
    /// engine start.
    pub aux_int8: Vec<bool>,
    /// Transcription-cache capacity in waveforms; `0` disables caching.
    pub cache_cap: usize,
    /// The modality mix scored per request, in order. Every kind must be
    /// registered on the served system. Empty (the default) = similarity
    /// only, the pre-modality behaviour. When the system carries a fused
    /// classifier and this mix covers its whole registry, requests whose
    /// modalities all score within budget get fused verdicts.
    pub modalities: Vec<ModalityKind>,
    /// Per-modality time budget, parallel to `modalities` (missing tail
    /// entries are `None`). `None` always scores; `Some(ms)` skips the
    /// modality when the request is already older than `ms` when its
    /// turn comes — so `Some(0)` disables it outright. A skipped
    /// modality on a fused-capable engine degrades the verdict to
    /// [`FallbackTier::SimilarityOnly`].
    pub modality_budget_ms: Vec<Option<u64>>,
    /// Model directory for [`DetectionEngine::start_or_warm`]: when set,
    /// the engine loads its detection system from
    /// `<model_dir>/detector.mvpa` instead of training, and persists the
    /// system there after a cold start. `None` disables the disk tier.
    pub model_dir: Option<PathBuf>,
    /// Verdict audit log. When set, every answered request (full,
    /// degraded, failed, cache hit) and every shed appends one JSONL
    /// record. `None` (the default) disables auditing.
    pub audit: Option<Arc<AuditLog>>,
    /// Early-exit rule for streamed requests: when set, the collector
    /// re-scores the running transcripts after every chunk and can
    /// answer `Adversarial` before end-of-stream. `None` (the default)
    /// decides only at [`StreamHandle::finish`], which keeps chunked
    /// verdicts byte-identical to one-shot ones.
    pub early_exit: Option<EarlyExit>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue_cap: 64,
            max_batch: 8,
            max_delay_ms: 5,
            deadline_ms: 1_000,
            aux_deadline_ms: Vec::new(),
            aux_int8: Vec::new(),
            cache_cap: 256,
            modalities: Vec::new(),
            modality_budget_ms: Vec::new(),
            model_dir: None,
            audit: None,
            early_exit: None,
        }
    }
}

/// The per-request modality schedule, fixed at engine start.
struct ModalityPlan {
    kinds: Vec<ModalityKind>,
    budgets_ms: Vec<Option<u64>>,
    /// The system carries a fused classifier and `kinds` covers its
    /// whole registry, so fully-scored requests get fused verdicts.
    fused_capable: bool,
}

impl ModalityPlan {
    fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// One modality's evidence for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ModalityReport {
    /// Which modality.
    pub kind: ModalityKind,
    /// Whether it was scored (false = its budget was already spent).
    pub scored: bool,
    /// The feature block, higher = more benign-stable; empty when
    /// skipped.
    pub features: Vec<f64>,
    /// Wall time spent scoring (0 when skipped).
    pub elapsed_us: u64,
}

/// Scores the planned modalities for one request, skipping any whose
/// budget is already spent relative to `submitted`.
fn score_modalities(
    system: &DetectionSystem,
    plan: &ModalityPlan,
    wave: &Waveform,
    target_text: &str,
    submitted: Instant,
    stats: &ServeStats,
) -> Vec<ModalityReport> {
    let input = ModalityInput::new(system.target(), wave, target_text);
    plan.kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let budget = plan.budgets_ms.get(i).copied().flatten();
            let spent_ms = submitted.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
            if budget.is_some_and(|ms| spent_ms >= ms) {
                stats.modality_budget_missed.inc();
                return ModalityReport { kind, scored: false, features: Vec::new(), elapsed_us: 0 };
            }
            let outcome = system
                .modalities()
                .score_where(&input, |k| k == kind)
                .pop()
                // mvp-lint: allow(panic-path) -- engine start asserted every planned kind is registered; an empty result is a config-validation bug, not request input
                .expect("planned modality registered");
            stats.modality_scored.inc();
            ModalityReport {
                kind,
                scored: true,
                features: outcome.features,
                elapsed_us: outcome.elapsed_us,
            }
        })
        .collect()
}

/// How a verdict was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Every recogniser answered; full classifier verdict.
    Full,
    /// At least one auxiliary was missing; a fallback tier answered.
    Degraded(FallbackTier),
    /// The target ASR itself missed the deadline; no verdict possible.
    Failed,
}

/// The engine's answer for one request.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The classification, or `None` when the request [failed](VerdictKind::Failed).
    pub is_adversarial: Option<bool>,
    /// Full, degraded, or failed.
    pub kind: VerdictKind,
    /// Whether the transcription vector came from the cache.
    pub from_cache: bool,
    /// Per-auxiliary similarity scores; `None` where the auxiliary was
    /// missing.
    pub scores: Vec<Option<f64>>,
    /// The target transcription, when the target answered.
    pub target_transcription: Option<String>,
    /// One report per planned modality, in plan order; empty when the
    /// engine runs similarity-only or the request failed/degraded
    /// before modality scoring.
    pub modalities: Vec<ModalityReport>,
    /// Whether the fused similarity + modality classifier answered.
    pub fused: bool,
    /// Whether this verdict fired before end-of-stream under the
    /// engine's [`EngineConfig::early_exit`] rule. Always `false` for
    /// one-shot submissions and for stream verdicts decided at finish.
    pub early_exit: bool,
    /// End-to-end latency from `submit` to finalization.
    pub latency: Duration,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The ingress queue is full — backpressure; retry later.
    Overloaded,
    /// The engine has shut down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "ingress queue full (request shed)"),
            SubmitError::Closed => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A handle to a verdict still being computed.
#[derive(Debug)]
pub struct PendingVerdict {
    rx: Receiver<Verdict>,
}

impl PendingVerdict {
    /// Blocks until the verdict arrives. Every accepted request is
    /// answered, even through shutdown and deadline misses.
    ///
    /// # Panics
    ///
    /// Panics if the engine's threads died without replying (a bug).
    pub fn wait(self) -> Verdict {
        // mvp-lint: allow(panic-path) -- every accepted ticket is answered by construction (drain-on-shutdown); a dropped channel is an engine bug the caller cannot degrade around
        self.rx.recv().expect("engine dropped the reply channel")
    }

    /// Returns the verdict if it is already available.
    pub fn try_wait(&self) -> Option<Verdict> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the verdict. `Err(self)` on timeout
    /// returns the ticket so the caller can keep waiting, retry with a
    /// longer budget, or drop it — no caller is ever forced to hang
    /// forever on a wedged engine.
    ///
    /// # Panics
    ///
    /// Panics if the engine's threads died without replying (a bug),
    /// exactly as [`wait`](Self::wait) does.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Verdict, PendingVerdict> {
        match self.rx.recv_timeout(timeout) {
            Ok(verdict) => Ok(verdict),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => {
                // mvp-lint: allow(panic-path) -- same invariant as wait(): every accepted ticket is answered by construction; a dropped channel is an engine bug
                panic!("engine dropped the reply channel")
            }
        }
    }
}

struct Request {
    id: u64,
    wave: Arc<Waveform>,
    key: u64,
    submitted: Instant,
    /// Time spent in the ingress queue, stamped at batcher pickup.
    queued_us: u64,
    reply: Sender<Verdict>,
}

/// Everything that can enter the ingress queue: one-shot requests and
/// stream lifecycle messages share the single bounded channel, so
/// per-stream chunk order is preserved end to end.
enum IngressMsg {
    Detect(Request),
    Stream(StreamMsg),
}

struct StreamMsg {
    id: u64,
    payload: StreamPayload,
}

enum StreamPayload {
    Open { reply: Sender<Verdict>, opened: Instant },
    Chunk { samples: Arc<Vec<f32>> },
    Finish,
}

struct Waiter {
    id: u64,
    reply: Sender<Verdict>,
    submitted: Instant,
    queued_us: u64,
}

/// One unique waveform within a batch and everyone waiting on it. The
/// waveform itself rides along so the collector can score modalities at
/// finalization.
struct BatchItem {
    key: u64,
    wave: Arc<Waveform>,
    waiters: Vec<Waiter>,
}

enum WorkItem {
    Batch {
        batch_id: u64,
        waves: Vec<Arc<Waveform>>,
    },
    StreamChunk {
        stream_id: u64,
        samples: Arc<Vec<f32>>,
        /// Send the running transcript back after this chunk (true only
        /// when the engine has an early-exit rule to evaluate).
        report_running: bool,
    },
    StreamFinish {
        stream_id: u64,
    },
}

struct WorkResult {
    batch_id: u64,
    asr_index: usize,
    texts: Vec<String>,
    elapsed_us: u64,
}

struct BatchMeta {
    batch_id: u64,
    items: Vec<BatchItem>,
    /// Per recogniser (target first): whether work was sent to it.
    dispatched: Vec<bool>,
    /// Per recogniser: when the collector stops waiting for it.
    deadlines: Vec<Instant>,
}

enum CollectorMsg {
    Meta(BatchMeta),
    Result(WorkResult),
    StreamOpen { stream_id: u64, reply: Sender<Verdict>, opened: Instant },
    StreamRunning { stream_id: u64, asr_index: usize, seq: u64, frames: usize, text: String },
    StreamFinal { stream_id: u64, asr_index: usize, text: String },
}

/// Collector-side state of one open stream.
struct StreamState {
    reply: Sender<Verdict>,
    opened: Instant,
    /// An early verdict has been sent; the finish only cleans up.
    answered: bool,
    /// Consecutive collapsed early-exit evaluations.
    collapsed: usize,
    /// Chunk seq of the last early-exit evaluation (each chunk is
    /// evaluated at most once, after every recogniser has reported it).
    evaluated_seq: u64,
    /// Per recogniser: logit frames decoded so far. The early-exit
    /// `min_frames` gate reads the minimum, mirroring
    /// `mvp_ears::DetectionStream::evaluate` — a heavily subsampling
    /// auxiliary (or a lagging precision variant) must not be judged on a
    /// near-empty running transcript.
    frames: Vec<usize>,
    /// Per recogniser: latest running `(seq, transcript)`.
    running: Vec<Option<(u64, String)>>,
    /// Per recogniser: the final flushed transcript.
    finals: Vec<Option<String>>,
}

struct BatchState {
    items: Vec<BatchItem>,
    dispatched: Vec<bool>,
    deadlines: Vec<Instant>,
    /// Per recogniser: transcriptions aligned with `items`.
    results: Vec<Option<Vec<String>>>,
    /// Per recogniser: batch transcription wall time, for audit records.
    elapsed_us: Vec<Option<u64>>,
}

impl BatchState {
    /// Ready when every dispatched recogniser has answered or timed out.
    fn is_ready(&self, now: Instant) -> bool {
        self.dispatched.iter().zip(&self.results).zip(&self.deadlines).all(
            |((&dispatched, result), &deadline)| !dispatched || result.is_some() || now >= deadline,
        )
    }

    /// The next instant at which readiness can change by timeout alone.
    fn next_deadline(&self) -> Option<Instant> {
        (0..self.dispatched.len())
            .filter(|&i| self.dispatched[i] && self.results[i].is_none())
            .map(|i| self.deadlines[i])
            .min()
    }
}

/// The transcription cache shared between batcher and collector.
///
/// All access goes through [`with`](Self::with), which recovers — and
/// counts — a poisoned lock: a thread panicking while holding the cache
/// must degrade to a possibly-stale cache, never wedge the engine.
#[derive(Clone)]
struct SharedCache {
    inner: Arc<Mutex<LruCache<u64, TranscriptVec>>>,
    poison_recovered: Counter,
}

impl SharedCache {
    fn new(capacity: usize, poison_recovered: Counter) -> SharedCache {
        SharedCache { inner: Arc::new(Mutex::new(LruCache::new(capacity))), poison_recovered }
    }

    fn with<T>(&self, f: impl FnOnce(&mut LruCache<u64, TranscriptVec>) -> T) -> T {
        let mut guard = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                // Count the incident once, then clear the flag: the LRU
                // is never left mid-mutation by its panic-free methods.
                self.poison_recovered.inc();
                self.inner.clear_poison();
                poisoned.into_inner()
            }
        };
        f(&mut guard)
    }
}

/// Wall-clock microseconds since the Unix epoch, for audit records.
fn wall_ts_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// Builds the JSONL audit record for one answered request.
#[allow(clippy::too_many_arguments)]
fn verdict_record(
    id: u64,
    batch_id: Option<u64>,
    verdict: &Verdict,
    aux_texts: &[Option<String>],
    threshold: Option<f64>,
    queued_us: u64,
    transcribe_us: &[Option<u64>],
    finalize_us: u64,
) -> String {
    let (kind, tier) = match verdict.kind {
        VerdictKind::Full => ("full", None),
        VerdictKind::Degraded(t) => ("degraded", Some(t.name())),
        VerdictKind::Failed => ("failed", None),
    };
    let mut aux = String::from("[");
    for (j, text) in aux_texts.iter().enumerate() {
        if j > 0 {
            aux.push(',');
        }
        aux.push_str(
            &JsonObj::new()
                .u64("i", j as u64)
                .opt_str("text", text.as_deref())
                .opt_f64("score", verdict.scores.get(j).copied().flatten())
                .finish(),
        );
    }
    aux.push(']');
    let mut transcribe = String::from("[");
    for (i, t) in transcribe_us.iter().enumerate() {
        if i > 0 {
            transcribe.push(',');
        }
        match t {
            Some(us) => transcribe.push_str(&us.to_string()),
            None => transcribe.push_str("null"),
        }
    }
    transcribe.push(']');
    let mut modalities = String::from("[");
    for (i, report) in verdict.modalities.iter().enumerate() {
        if i > 0 {
            modalities.push(',');
        }
        let mut features = String::from("[");
        for (j, f) in report.features.iter().enumerate() {
            if j > 0 {
                features.push(',');
            }
            features.push_str(&format!("{f}"));
        }
        features.push(']');
        modalities.push_str(
            &JsonObj::new()
                .str("name", report.kind.name())
                .bool("scored", report.scored)
                .raw("features", &features)
                .u64("us", report.elapsed_us)
                .finish(),
        );
    }
    modalities.push(']');
    let timing = JsonObj::new()
        .u64("queue_us", queued_us)
        .raw("transcribe_us", &transcribe)
        .u64("finalize_us", finalize_us)
        .u64("total_us", verdict.latency.as_micros().min(u128::from(u64::MAX)) as u64)
        .finish();
    let obj = JsonObj::new()
        // v2 added the "modalities" array and the "fused" flag;
        // v3 added the "early" flag (stream verdicts that fired before
        // end-of-stream).
        .u64("v", 3)
        .str("event", "verdict")
        .u64("ts_us", wall_ts_us())
        .u64("request", id);
    let obj = match batch_id {
        Some(b) => obj.u64("batch", b),
        None => obj.null("batch"),
    };
    obj.str("kind", kind)
        .opt_str("tier", tier)
        .bool("cache", verdict.from_cache)
        .opt_bool("adversarial", verdict.is_adversarial)
        .bool("fused", verdict.fused)
        .bool("early", verdict.early_exit)
        .opt_str("target", verdict.target_transcription.as_deref())
        .opt_f64("threshold", threshold)
        .raw("aux", &aux)
        .raw("modalities", &modalities)
        .raw("timing", &timing)
        .finish()
}

/// The long-lived serving engine. Dropping it drains in-flight requests
/// (each gets a verdict) and joins all threads.
pub struct DetectionEngine {
    ingress: Option<Sender<IngressMsg>>,
    threads: Vec<JoinHandle<()>>,
    stats: Arc<ServeStats>,
    audit: Option<Arc<AuditLog>>,
    next_id: AtomicU64,
    next_stream_id: AtomicU64,
}

impl std::fmt::Debug for DetectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionEngine").field("threads", &self.threads.len()).finish()
    }
}

impl DetectionEngine {
    /// Starts the engine: one batcher, one persistent worker per
    /// recogniser, one collector.
    ///
    /// # Panics
    ///
    /// Panics if the system is untrained, `queue_cap`/`max_batch` is
    /// zero, or `aux_deadline_ms` is longer than the auxiliary list.
    pub fn start(
        system: Arc<DetectionSystem>,
        policy: DegradePolicy,
        config: EngineConfig,
    ) -> DetectionEngine {
        assert!(system.is_trained(), "serve a trained DetectionSystem");
        assert!(config.queue_cap > 0, "queue_cap must be positive");
        assert!(config.max_batch > 0, "max_batch must be positive");
        let n_aux = system.n_auxiliaries();
        assert!(
            config.aux_deadline_ms.len() <= n_aux,
            "aux_deadline_ms has {} entries for {} auxiliaries",
            config.aux_deadline_ms.len(),
            n_aux
        );
        assert!(
            config.aux_int8.len() <= n_aux,
            "aux_int8 has {} entries for {} auxiliaries",
            config.aux_int8.len(),
            n_aux
        );
        assert_eq!(policy.n_aux(), n_aux, "degrade policy dimension mismatch");
        let registered = system.modalities().kinds();
        for (i, kind) in config.modalities.iter().enumerate() {
            assert!(
                registered.contains(kind),
                "modality {kind} is not registered on the served system"
            );
            assert!(
                !config.modalities[..i].contains(kind),
                "modality {kind} listed twice in the engine config"
            );
        }
        assert!(
            config.modality_budget_ms.len() <= config.modalities.len(),
            "modality_budget_ms has {} entries for {} modalities",
            config.modality_budget_ms.len(),
            config.modalities.len()
        );
        let plan = Arc::new(ModalityPlan {
            fused_capable: system.is_fused() && config.modalities == registered,
            kinds: config.modalities.clone(),
            budgets_ms: config.modality_budget_ms.clone(),
        });

        let stats = Arc::new(ServeStats::new());
        let policy = Arc::new(policy);
        let audit = config.audit.clone();
        let cache: Option<SharedCache> = (config.cache_cap > 0)
            .then(|| SharedCache::new(config.cache_cap, stats.cache_poison_recovered.clone()));

        let (ingress_tx, ingress_rx) = channel::bounded::<IngressMsg>(config.queue_cap);
        // Bounded like every other serve channel (channel-discipline):
        // the collector always drains and never sends into a producer,
        // so capacity only sizes the buffer — it cannot deadlock.
        let (collector_tx, collector_rx) =
            channel::bounded::<CollectorMsg>((config.queue_cap * 8).max(256));

        let mut recognizers = system.recognizers();
        // Apply the precision mix: marked auxiliaries transcribe on the
        // profile's int8 variant while scoring, classification and the
        // cache stay untouched (both precisions produce plain text).
        for (j, &int8) in config.aux_int8.iter().enumerate() {
            if !int8 || recognizers[j + 1].quantized_model().is_some() {
                continue;
            }
            let name = recognizers[j + 1].name().to_string();
            let Some(profile) = AsrProfile::by_name(&name) else {
                // mvp-lint: allow(panic-path) -- engine construction config validation, before any request is accepted
                panic!("aux_int8[{j}]: auxiliary {name:?} matches no profile, cannot derive its int8 variant")
            };
            recognizers[j + 1] = profile.trained_quantized();
        }
        // Partition the machine's cores between the ASR workers: each
        // worker's kernel-plane frame parallelism (`par_rows` inside
        // MFCC/CTC) gets an equal share, so intra-request data
        // parallelism never oversubscribes the batch plane.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        mvp_dsp::kernel::set_threads((cores / recognizers.len().max(1)).max(1));
        let mut threads = Vec::with_capacity(recognizers.len() + 2);
        let mut worker_txs = Vec::with_capacity(recognizers.len());
        for (i, asr) in recognizers.into_iter().enumerate() {
            // Bounded: a backlogged worker exerts backpressure on the
            // batcher (and through the ingress queue, on submitters)
            // instead of buffering without limit.
            let (tx, rx) = channel::bounded::<WorkItem>((config.queue_cap * 4).max(64));
            worker_txs.push(tx);
            let collector_tx = collector_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(asr, i, rx, collector_tx))
                    // mvp-lint: allow(panic-path) -- engine construction, before any request is accepted; failing to spawn means no engine exists to degrade
                    .expect("spawn worker"),
            );
        }

        {
            let system = Arc::clone(&system);
            let stats = Arc::clone(&stats);
            let cache = cache.clone();
            let config = config.clone();
            let plan = Arc::clone(&plan);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-batcher".into())
                    .spawn(move || {
                        batcher_loop(
                            system,
                            config,
                            plan,
                            ingress_rx,
                            worker_txs,
                            collector_tx,
                            cache,
                            stats,
                        )
                    })
                    // mvp-lint: allow(panic-path) -- engine construction, before any request is accepted; failing to spawn means no engine exists to degrade
                    .expect("spawn batcher"),
            );
        }

        {
            let stats = Arc::clone(&stats);
            let audit = audit.clone();
            let early = config.early_exit;
            threads.push(
                std::thread::Builder::new()
                    .name("serve-collector".into())
                    .spawn(move || {
                        collector_loop(
                            system,
                            policy,
                            plan,
                            early,
                            collector_rx,
                            cache,
                            stats,
                            audit,
                        )
                    })
                    // mvp-lint: allow(panic-path) -- engine construction, before any request is accepted; failing to spawn means no engine exists to degrade
                    .expect("spawn collector"),
            );
        }

        DetectionEngine {
            ingress: Some(ingress_tx),
            threads,
            stats,
            audit,
            next_id: AtomicU64::new(0),
            next_stream_id: AtomicU64::new(0),
        }
    }

    /// File name of the persisted detection system inside
    /// [`EngineConfig::model_dir`].
    pub const SNAPSHOT_FILE: &'static str = "detector.mvpa";

    /// Starts the engine, warm-starting from `config.model_dir` when a
    /// persisted detection system exists there.
    ///
    /// - snapshot present and valid → restore it (no training) and start;
    ///   returns `warm = true`;
    /// - snapshot absent (or no `model_dir`) → call `cold` to build the
    ///   system, persist it for the next process, and start; returns
    ///   `warm = false`;
    /// - snapshot present but unreadable (corrupt, version skew) → return
    ///   the error rather than silently retraining; the caller decides
    ///   whether to delete the artifact or run cold.
    ///
    /// # Panics
    ///
    /// Panics as [`start`](Self::start) does on invalid configs or an
    /// untrained cold system.
    pub fn start_or_warm(
        policy: DegradePolicy,
        config: EngineConfig,
        cold: impl FnOnce() -> DetectionSystem,
    ) -> Result<(DetectionEngine, bool), ArtifactError> {
        let path = config.model_dir.as_ref().map(|dir| dir.join(Self::SNAPSHOT_FILE));
        if let Some(path) = &path {
            match DetectionSystemSnapshot::load_file(path) {
                Ok(snapshot) => {
                    let system = Arc::new(snapshot.restore());
                    return Ok((Self::start(system, policy, config), true));
                }
                Err(err) if err.is_not_found() => {}
                Err(err) => return Err(err),
            }
        }
        let system = Arc::new(cold());
        if let Some(path) = &path {
            DetectionSystemSnapshot::capture(&system).save_file(path)?;
        }
        Ok((Self::start(system, policy, config), false))
    }

    /// Submits a waveform for detection. Non-blocking: a full ingress
    /// queue sheds the request with [`SubmitError::Overloaded`].
    pub fn submit(&self, wave: impl Into<Arc<Waveform>>) -> Result<PendingVerdict, SubmitError> {
        let tx = self.ingress.as_ref().ok_or(SubmitError::Closed)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let _span = mvp_obs::span!("serve.submit", id);
        let wave = wave.into();
        let key = waveform_key(&wave);
        let (reply_tx, reply_rx) = channel::bounded(1);
        let request =
            Request { id, wave, key, submitted: Instant::now(), queued_us: 0, reply: reply_tx };
        // Gauge first so it never underflows against the batcher's decrement.
        self.stats.queue_depth.inc();
        match tx.try_send(IngressMsg::Detect(request)) {
            Ok(()) => {
                self.stats.submitted.inc();
                Ok(PendingVerdict { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats.queue_depth.dec();
                self.stats.shed.inc();
                if let Some(audit) = &self.audit {
                    let _ = audit.append(
                        &JsonObj::new()
                            .u64("v", 1)
                            .str("event", "shed")
                            .u64("ts_us", wall_ts_us())
                            .u64("request", id)
                            .finish(),
                    );
                }
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.stats.queue_depth.dec();
                Err(SubmitError::Closed)
            }
        }
    }

    /// Opens a chunked-ingress stream. Chunks pushed through the
    /// returned [`StreamHandle`] feed the same persistent workers as
    /// one-shot requests; the verdict arrives at
    /// [`finish`](StreamHandle::finish), or earlier when the engine's
    /// [`EngineConfig::early_exit`] rule fires.
    ///
    /// The handle borrows the engine, so a stream can never outlive it —
    /// shutdown cannot start while a stream is open, which is what makes
    /// "every accepted stream is answered" a structural guarantee.
    pub fn submit_stream(&self) -> Result<StreamHandle<'_>, SubmitError> {
        let tx = self.ingress.as_ref().ok_or(SubmitError::Closed)?;
        let id = self.next_stream_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel::bounded(1);
        let payload = StreamPayload::Open { reply: reply_tx, opened: Instant::now() };
        tx.send(IngressMsg::Stream(StreamMsg { id, payload })).map_err(|_| SubmitError::Closed)?;
        self.stats.streams_opened.inc();
        Ok(StreamHandle { engine: self, id, reply: reply_rx, got: None, finished: false })
    }

    /// Current ingress queue depth (the batcher's backlog). The shard
    /// router reads this to decide when to steal.
    pub fn queue_depth(&self) -> u64 {
        self.stats.queue_depth.get()
    }

    /// Convenience: submit and block for the verdict.
    pub fn detect_blocking(&self, wave: impl Into<Arc<Waveform>>) -> Result<Verdict, SubmitError> {
        self.submit(wave).map(PendingVerdict::wait)
    }

    /// A point-in-time copy of the engine metrics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The metrics registry backing [`stats`](Self::stats); hand it to an
    /// [`mvp_obs::SnapshotWriter`] for periodic exposition dumps.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(self.stats.registry())
    }

    /// Prometheus-style text exposition of every engine metric.
    pub fn metrics_text(&self) -> String {
        self.stats.render_text()
    }

    /// Shuts down explicitly (Drop does the same): stops intake, drains
    /// in-flight requests, joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.ingress.take());
        for t in self.threads.drain(..) {
            if let Err(panic) = t.join() {
                std::panic::resume_unwind(panic);
            }
        }
        // Give the kernel plane its automatic thread count back now
        // that the worker fleet no longer owns the cores.
        mvp_dsp::kernel::set_threads(0);
    }
}

impl Drop for DetectionEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// One open chunked-ingress stream on a [`DetectionEngine`].
///
/// Push sample chunks with [`push`](Self::push), poll for an early
/// verdict with [`try_verdict`](Self::try_verdict), and settle with
/// [`finish`](Self::finish). Exactly one verdict is produced per stream
/// — early or final, never both. Dropping the handle without finishing
/// sends a best-effort finish so worker-side stream state is reclaimed.
#[derive(Debug)]
pub struct StreamHandle<'a> {
    engine: &'a DetectionEngine,
    id: u64,
    reply: Receiver<Verdict>,
    /// An early verdict observed by `try_verdict`, held for `finish`.
    got: Option<Verdict>,
    finished: bool,
}

impl StreamHandle<'_> {
    /// The engine-assigned stream id (also the `request` field of the
    /// stream's audit records).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn send(&self, payload: StreamPayload) -> Result<(), SubmitError> {
        let tx = self.engine.ingress.as_ref().ok_or(SubmitError::Closed)?;
        tx.send(IngressMsg::Stream(StreamMsg { id: self.id, payload }))
            .map_err(|_| SubmitError::Closed)
    }

    /// Feeds the next chunk of samples. Blocks while the ingress queue
    /// is full — streams are flow-controlled, never shed mid-utterance.
    pub fn push(&mut self, samples: &[f32]) -> Result<(), SubmitError> {
        self.push_arc(Arc::new(samples.to_vec()))
    }

    /// [`push`](Self::push) without copying an already-shared buffer.
    pub fn push_arc(&mut self, samples: Arc<Vec<f32>>) -> Result<(), SubmitError> {
        self.engine.stats.stream_chunks.inc();
        self.send(StreamPayload::Chunk { samples })
    }

    /// Returns the early verdict if one has fired. After this returns
    /// `Some`, further pushes still advance the recognisers but the
    /// verdict is settled; [`finish`](Self::finish) returns it.
    pub fn try_verdict(&mut self) -> Option<&Verdict> {
        if self.got.is_none() {
            self.got = self.reply.try_recv().ok();
        }
        self.got.as_ref()
    }

    /// Ends the stream and blocks for its verdict: the early one if the
    /// rule fired, otherwise the full end-of-stream detection (the only
    /// place a stream can be judged `Benign`).
    pub fn finish(mut self) -> Result<Verdict, SubmitError> {
        self.finished = true;
        self.send(StreamPayload::Finish)?;
        if let Some(verdict) = self.got.take() {
            return Ok(verdict);
        }
        self.reply.recv().map_err(|_| SubmitError::Closed)
    }
}

impl Drop for StreamHandle<'_> {
    fn drop(&mut self) {
        if !self.finished {
            if let Some(tx) = self.engine.ingress.as_ref() {
                // Best-effort: a full queue here leaks the worker-side
                // stream state until engine shutdown, which is preferable
                // to a Drop that can block.
                let _ = tx.try_send(IngressMsg::Stream(StreamMsg {
                    id: self.id,
                    payload: StreamPayload::Finish,
                }));
            }
        }
    }
}

fn worker_loop(
    asr: Arc<TrainedAsr>,
    asr_index: usize,
    work: Receiver<WorkItem>,
    out: Sender<CollectorMsg>,
) {
    // One scratch plan per worker thread: after the first few batches every
    // pipeline intermediate is served from these buffers, so steady-state
    // batches allocate nothing on the hot path. Streams each carry their
    // own incremental state (`AsrStream`) keyed by stream id; the `u64`
    // alongside is the chunk seq, counted identically by every worker so
    // the collector can align running transcripts across recognisers.
    let mut scratch = AsrScratch::default();
    let mut streams: HashMap<u64, (AsrStream, u64)> = HashMap::new();
    for item in work.iter() {
        match item {
            WorkItem::Batch { batch_id, waves } => {
                let started = Instant::now();
                let texts = {
                    let _span = mvp_obs::span!("serve.transcribe_batch", batch_id);
                    let refs: Vec<&Waveform> = waves.iter().map(Arc::as_ref).collect();
                    asr.transcribe_batch_with(&refs, &mut scratch)
                };
                let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                let result = WorkResult { batch_id, asr_index, texts, elapsed_us };
                if out.send(CollectorMsg::Result(result)).is_err() {
                    return;
                }
            }
            WorkItem::StreamChunk { stream_id, samples, report_running } => {
                let (stream, seq) = streams.entry(stream_id).or_default();
                asr.stream_push_f32(stream, &samples);
                *seq += 1;
                if report_running {
                    let msg = CollectorMsg::StreamRunning {
                        stream_id,
                        asr_index,
                        seq: *seq,
                        frames: stream.frames_decoded(),
                        text: asr.stream_transcript(stream),
                    };
                    if out.send(msg).is_err() {
                        return;
                    }
                }
            }
            WorkItem::StreamFinish { stream_id } => {
                let (mut stream, _seq) = streams.remove(&stream_id).unwrap_or_default();
                let text = asr.stream_finish(&mut stream);
                if out.send(CollectorMsg::StreamFinal { stream_id, asr_index, text }).is_err() {
                    return;
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn batcher_loop(
    system: Arc<DetectionSystem>,
    config: EngineConfig,
    plan: Arc<ModalityPlan>,
    ingress: Receiver<IngressMsg>,
    worker_txs: Vec<Sender<WorkItem>>,
    collector_tx: Sender<CollectorMsg>,
    cache: Option<SharedCache>,
    stats: Arc<ServeStats>,
) {
    let n_rec = worker_txs.len();
    let overall = Duration::from_millis(config.deadline_ms);
    let max_delay = Duration::from_millis(config.max_delay_ms);
    let mut next_batch_id = 0u64;
    let mut pending: Vec<Request> = Vec::new();
    let mut flush_at: Option<Instant> = None;

    let flush = |pending: &mut Vec<Request>, next_batch_id: &mut u64| {
        if pending.is_empty() {
            return;
        }
        let batch_id = *next_batch_id;
        *next_batch_id += 1;
        let _span = mvp_obs::span!("serve.flush", batch_id);

        let mut items: Vec<BatchItem> = Vec::new();
        let mut waves: Vec<Arc<Waveform>> = Vec::new();
        let mut index_of: HashMap<u64, usize> = HashMap::new();
        let Some(first) = pending.first() else { return };
        let mut earliest = first.submitted;
        let n_requests = pending.len() as u64;
        for Request { id, wave, key, submitted, queued_us, reply } in pending.drain(..) {
            earliest = earliest.min(submitted);
            let waiter = Waiter { id, reply, submitted, queued_us };
            match index_of.get(&key).and_then(|&idx| items.get_mut(idx)) {
                Some(item) => item.waiters.push(waiter),
                None => {
                    index_of.insert(key, items.len());
                    waves.push(Arc::clone(&wave));
                    items.push(BatchItem { key, wave, waiters: vec![waiter] });
                }
            }
        }

        let mut dispatched = vec![true; n_rec];
        let mut deadlines = vec![earliest + overall; n_rec];
        // Entry 0 is the target recogniser; per-auxiliary overrides
        // start at index 1.
        let aux = dispatched.iter_mut().skip(1).zip(deadlines.iter_mut().skip(1));
        for (override_ms, (dispatch, deadline)) in config.aux_deadline_ms.iter().zip(aux) {
            match override_ms {
                Some(0) => *dispatch = false,
                Some(ms) => {
                    *deadline = earliest + Duration::from_millis((*ms).min(config.deadline_ms));
                }
                None => {}
            }
        }

        stats.batches.inc();
        stats.batched_requests.add(n_requests);

        // Meta enters the collector queue before any worker can answer, so
        // the collector always knows a batch before seeing its results.
        let meta = BatchMeta { batch_id, items, dispatched: dispatched.clone(), deadlines };
        if collector_tx.send(CollectorMsg::Meta(meta)).is_err() {
            return;
        }
        for (tx, &dispatch) in worker_txs.iter().zip(&dispatched) {
            if dispatch {
                let _ = tx.send(WorkItem::Batch { batch_id, waves: waves.clone() });
            }
        }
    };

    loop {
        let received = match flush_at {
            None => ingress.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(t) => ingress.recv_timeout(t.saturating_duration_since(Instant::now())),
        };
        match received {
            Ok(IngressMsg::Detect(mut request)) => {
                stats.queue_depth.dec();
                request.queued_us =
                    request.submitted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                if let Some(cached) = lookup(&cache, &request.key, &stats) {
                    answer_cache_hit(&system, &plan, &request, &cached, &stats, &config.audit);
                    continue;
                }
                pending.push(request);
                if pending.len() >= config.max_batch {
                    flush(&mut pending, &mut next_batch_id);
                    flush_at = None;
                } else if flush_at.is_none() {
                    flush_at = Some(Instant::now() + max_delay);
                }
            }
            // Stream traffic is forwarded immediately, never batched: a
            // chunk is one unit of work for every recogniser, and order
            // within a stream is preserved by channel FIFO end to end.
            Ok(IngressMsg::Stream(StreamMsg { id, payload })) => match payload {
                StreamPayload::Open { reply, opened } => {
                    let msg = CollectorMsg::StreamOpen { stream_id: id, reply, opened };
                    if collector_tx.send(msg).is_err() {
                        return;
                    }
                }
                StreamPayload::Chunk { samples } => {
                    let report_running = config.early_exit.is_some();
                    for tx in &worker_txs {
                        let item = WorkItem::StreamChunk {
                            stream_id: id,
                            samples: Arc::clone(&samples),
                            report_running,
                        };
                        let _ = tx.send(item);
                    }
                }
                StreamPayload::Finish => {
                    for tx in &worker_txs {
                        let _ = tx.send(WorkItem::StreamFinish { stream_id: id });
                    }
                }
            },
            Err(RecvTimeoutError::Timeout) => {
                flush(&mut pending, &mut next_batch_id);
                flush_at = None;
            }
            Err(RecvTimeoutError::Disconnected) => {
                flush(&mut pending, &mut next_batch_id);
                return; // drops worker and collector senders
            }
        }
    }
}

fn lookup(cache: &Option<SharedCache>, key: &u64, stats: &ServeStats) -> Option<TranscriptVec> {
    let cache = cache.as_ref()?;
    stats.cache_lookups.inc();
    let hit = cache.with(|c| c.get(key).cloned());
    if hit.is_some() {
        stats.cache_hits.inc();
    }
    hit
}

/// Applies the modality plan to a full similarity verdict: upgrade to a
/// fused verdict when every planned modality scored on a fused-capable
/// engine, degrade to [`FallbackTier::SimilarityOnly`] when one missed
/// its budget, or just attach the evidence reports otherwise.
fn resolve_with_modalities(
    system: &DetectionSystem,
    plan: &ModalityPlan,
    wave: &Waveform,
    similarity_verdict: bool,
    scores: &[f64],
    target_text: &str,
    submitted: Instant,
    stats: &ServeStats,
) -> (bool, VerdictKind, Vec<ModalityReport>, bool) {
    if plan.is_empty() {
        return (similarity_verdict, VerdictKind::Full, Vec::new(), false);
    }
    let reports = score_modalities(system, plan, wave, target_text, submitted, stats);
    if !plan.fused_capable {
        return (similarity_verdict, VerdictKind::Full, reports, false);
    }
    if reports.iter().all(|r| r.scored) {
        let mut raw = scores.to_vec();
        for report in &reports {
            raw.extend_from_slice(&report.features);
        }
        let fused = system
            .fused_classifier()
            // mvp-lint: allow(panic-path) -- fused_capable is only set at engine start when the system carries a fused classifier
            .expect("fused-capable plan implies a fused classifier");
        return (fused.is_adversarial(&raw), VerdictKind::Full, reports, true);
    }
    (similarity_verdict, VerdictKind::Degraded(FallbackTier::SimilarityOnly), reports, false)
}

fn answer_cache_hit(
    system: &DetectionSystem,
    plan: &ModalityPlan,
    request: &Request,
    texts: &TranscriptVec,
    stats: &ServeStats,
    audit: &Option<Arc<AuditLog>>,
) {
    let _span = mvp_obs::span!("serve.cache_hit", request.id);
    let (target, auxiliaries) = DetectionSystem::split_transcripts(texts.as_ref().clone());
    let detection = system.detect_from_transcripts(target, auxiliaries);
    let aux_texts: Vec<Option<String>> =
        detection.auxiliary_transcriptions.iter().cloned().map(Some).collect();
    let (is_adversarial, kind, modalities, fused) = resolve_with_modalities(
        system,
        plan,
        &request.wave,
        detection.is_adversarial,
        &detection.scores,
        &detection.target_transcription,
        request.submitted,
        stats,
    );
    let verdict = Verdict {
        is_adversarial: Some(is_adversarial),
        kind,
        from_cache: true,
        scores: detection.scores.into_iter().map(Some).collect(),
        target_transcription: Some(detection.target_transcription),
        modalities,
        fused,
        early_exit: false,
        latency: request.submitted.elapsed(),
    };
    if matches!(verdict.kind, VerdictKind::Degraded(_)) {
        stats.degraded.inc();
    }
    if verdict.fused {
        stats.fused_verdicts.inc();
    }
    stats.latency.record(verdict.latency);
    stats.completed.inc();
    if let Some(audit) = audit {
        let record =
            verdict_record(request.id, None, &verdict, &aux_texts, None, request.queued_us, &[], 0);
        let _ = audit.append(&record);
    }
    let _ = request.reply.send(verdict);
}

#[allow(clippy::too_many_arguments)]
fn collector_loop(
    system: Arc<DetectionSystem>,
    policy: Arc<DegradePolicy>,
    plan: Arc<ModalityPlan>,
    early: Option<EarlyExit>,
    rx: Receiver<CollectorMsg>,
    cache: Option<SharedCache>,
    stats: Arc<ServeStats>,
    audit: Option<Arc<AuditLog>>,
) {
    let mut batches: HashMap<u64, BatchState> = HashMap::new();
    let mut streams: HashMap<u64, StreamState> = HashMap::new();
    let n_rec = system.n_recognizers();
    loop {
        let next_deadline = batches.values().filter_map(BatchState::next_deadline).min();
        let received = match next_deadline {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(t) => rx.recv_timeout(t.saturating_duration_since(Instant::now())),
        };
        match received {
            Ok(CollectorMsg::Meta(meta)) => {
                let n_rec = meta.dispatched.len();
                batches.insert(
                    meta.batch_id,
                    BatchState {
                        items: meta.items,
                        dispatched: meta.dispatched,
                        deadlines: meta.deadlines,
                        results: (0..n_rec).map(|_| None).collect(),
                        elapsed_us: vec![None; n_rec],
                    },
                );
            }
            Ok(CollectorMsg::Result(result)) => {
                if let Some(state) = batches.get_mut(&result.batch_id) {
                    if let Some(slot) = state.results.get_mut(result.asr_index) {
                        *slot = Some(result.texts);
                    }
                    if let Some(slot) = state.elapsed_us.get_mut(result.asr_index) {
                        *slot = Some(result.elapsed_us);
                    }
                }
            }
            Ok(CollectorMsg::StreamOpen { stream_id, reply, opened }) => {
                streams.insert(
                    stream_id,
                    StreamState {
                        reply,
                        opened,
                        answered: false,
                        collapsed: 0,
                        evaluated_seq: 0,
                        frames: vec![0; n_rec],
                        running: vec![None; n_rec],
                        finals: vec![None; n_rec],
                    },
                );
            }
            Ok(CollectorMsg::StreamRunning { stream_id, asr_index, seq, frames, text }) => {
                if let Some(state) = streams.get_mut(&stream_id) {
                    if let Some(slot) = state.frames.get_mut(asr_index) {
                        *slot = frames;
                    }
                    if let Some(slot) = state.running.get_mut(asr_index) {
                        *slot = Some((seq, text));
                    }
                    if !state.answered {
                        if let Some(rule) = early {
                            evaluate_stream(&system, rule, state, &stats, &audit, stream_id);
                        }
                    }
                }
            }
            Ok(CollectorMsg::StreamFinal { stream_id, asr_index, text }) => {
                let done = match streams.get_mut(&stream_id) {
                    Some(state) => {
                        if let Some(slot) = state.finals.get_mut(asr_index) {
                            *slot = Some(text);
                        }
                        state.finals.iter().all(Option::is_some)
                    }
                    None => false,
                };
                if done {
                    // mvp-lint: allow(panic-path) -- `done` was computed from this exact entry two lines up with no intervening removal
                    let state = streams.remove(&stream_id).expect("finalized stream present");
                    finalize_stream(&system, &stats, &audit, stream_id, state);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Producers gone and their queue drained: every result that
            // will ever arrive has arrived, so finalize what remains
            // (missing slots count as missed) rather than waiting out
            // deadlines, and answer any still-open stream with a Failed
            // verdict so no ticket is left hanging.
            Err(RecvTimeoutError::Disconnected) => {
                for (id, state) in batches.drain() {
                    finalize(&system, &policy, &plan, &cache, &stats, &audit, id, state);
                }
                for (_, state) in streams.drain() {
                    if !state.answered {
                        let verdict = Verdict {
                            is_adversarial: None,
                            kind: VerdictKind::Failed,
                            from_cache: false,
                            scores: vec![None; n_rec - 1],
                            target_transcription: None,
                            modalities: Vec::new(),
                            fused: false,
                            early_exit: false,
                            latency: state.opened.elapsed(),
                        };
                        stats.completed.inc();
                        let _ = state.reply.send(verdict);
                    }
                }
                return;
            }
        }
        let now = Instant::now();
        let ready: Vec<u64> =
            batches.iter().filter(|(_, s)| s.is_ready(now)).map(|(&id, _)| id).collect();
        for id in ready {
            // mvp-lint: allow(panic-path) -- `id` was collected from `batches` two lines up with no intervening removal; absence is an engine bug, not request input
            let state = batches.remove(&id).expect("ready batch present");
            finalize(&system, &policy, &plan, &cache, &stats, &audit, id, state);
        }
    }
}

/// One early-exit evaluation over a stream's running transcripts. Runs
/// once per chunk seq, after every recogniser has reported that seq; the
/// mechanics mirror `mvp_ears::DetectionStream::evaluate` so serve-side
/// and in-process streaming agree on when a verdict may fire early.
fn evaluate_stream(
    system: &DetectionSystem,
    rule: EarlyExit,
    state: &mut StreamState,
    stats: &ServeStats,
    audit: &Option<Arc<AuditLog>>,
    stream_id: u64,
) {
    let mut seq = u64::MAX;
    for report in &state.running {
        match report {
            Some((s, _)) => seq = seq.min(*s),
            None => return,
        }
    }
    if seq <= state.evaluated_seq {
        return;
    }
    state.evaluated_seq = seq;
    if state.frames.iter().copied().min().unwrap_or(0) < rule.min_frames {
        return;
    }
    let target = state.running.first().and_then(Option::as_ref).map_or("", |(_, t)| t.as_str());
    let auxiliaries: Vec<String> = state
        .running
        .iter()
        .skip(1)
        .map(|r| r.as_ref().map_or(String::new(), |(_, t)| t.clone()))
        .collect();
    let scores = system.scores_from_transcripts(target, &auxiliaries);
    let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
    let collapsed = mean < rule.threshold - rule.margin && system.classify_scores(&scores);
    state.collapsed = if collapsed { state.collapsed + 1 } else { 0 };
    if state.collapsed < rule.horizon.max(1) {
        return;
    }
    state.answered = true;
    stats.stream_early_exits.inc();
    let verdict = Verdict {
        is_adversarial: Some(true),
        kind: VerdictKind::Full,
        from_cache: false,
        scores: scores.into_iter().map(Some).collect(),
        target_transcription: Some(target.to_string()),
        modalities: Vec::new(),
        fused: false,
        early_exit: true,
        latency: state.opened.elapsed(),
    };
    stats.latency.record(verdict.latency);
    stats.completed.inc();
    if let Some(audit) = audit {
        let aux_texts: Vec<Option<String>> = auxiliaries.into_iter().map(Some).collect();
        let record = verdict_record(stream_id, None, &verdict, &aux_texts, None, 0, &[], 0);
        let _ = audit.append(&record);
    }
    let _ = state.reply.send(verdict);
}

/// Settles a stream whose every recogniser has flushed: the full
/// end-of-stream detection — the only place a stream is judged benign.
/// A stream already answered early only has its state reclaimed here.
fn finalize_stream(
    system: &DetectionSystem,
    stats: &ServeStats,
    audit: &Option<Arc<AuditLog>>,
    stream_id: u64,
    state: StreamState,
) {
    stats.streams_completed.inc();
    if state.answered {
        return;
    }
    let texts: Vec<String> = state.finals.into_iter().map(Option::unwrap_or_default).collect();
    let (target, auxiliaries) = DetectionSystem::split_transcripts(texts);
    let detection = system.detect_from_transcripts(target, auxiliaries);
    let aux_texts: Vec<Option<String>> =
        detection.auxiliary_transcriptions.iter().cloned().map(Some).collect();
    let verdict = Verdict {
        is_adversarial: Some(detection.is_adversarial),
        kind: VerdictKind::Full,
        from_cache: false,
        scores: detection.scores.into_iter().map(Some).collect(),
        target_transcription: Some(detection.target_transcription),
        modalities: Vec::new(),
        fused: false,
        early_exit: false,
        latency: state.opened.elapsed(),
    };
    stats.latency.record(verdict.latency);
    stats.completed.inc();
    if let Some(audit) = audit {
        let record = verdict_record(stream_id, None, &verdict, &aux_texts, None, 0, &[], 0);
        let _ = audit.append(&record);
    }
    let _ = state.reply.send(verdict);
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    system: &DetectionSystem,
    policy: &DegradePolicy,
    plan: &ModalityPlan,
    cache: &Option<SharedCache>,
    stats: &ServeStats,
    audit: &Option<Arc<AuditLog>>,
    batch_id: u64,
    state: BatchState,
) {
    let _span = mvp_obs::span!("serve.finalize", batch_id);
    let started = Instant::now();
    let n_rec = state.results.len();
    let n_aux = n_rec - 1;
    for (idx, item) in state.items.into_iter().enumerate() {
        let target = state
            .results
            .first()
            .and_then(Option::as_ref)
            .and_then(|texts| texts.get(idx))
            .cloned();
        let (verdict, aux_texts) = match target {
            None => (
                Verdict {
                    is_adversarial: None,
                    kind: VerdictKind::Failed,
                    from_cache: false,
                    scores: vec![None; n_aux],
                    target_transcription: None,
                    modalities: Vec::new(),
                    fused: false,
                    early_exit: false,
                    latency: Duration::ZERO,
                },
                vec![None; n_aux],
            ),
            Some(target) => {
                let available: Vec<(usize, String)> = (0..n_aux)
                    .filter_map(|j| {
                        state
                            .results
                            .get(j + 1)
                            .and_then(Option::as_ref)
                            .and_then(|texts| texts.get(idx))
                            .map(|t| (j, t.clone()))
                    })
                    .collect();
                if available.len() == n_aux {
                    let auxiliaries: Vec<String> = available.into_iter().map(|(_, t)| t).collect();
                    let detection = system.detect_from_transcripts(target, auxiliaries);
                    if let Some(cache) = cache {
                        let mut vector = Vec::with_capacity(n_rec);
                        vector.push(detection.target_transcription.clone());
                        vector.extend(detection.auxiliary_transcriptions.iter().cloned());
                        cache.with(|c| c.insert(item.key, Arc::new(vector)));
                    }
                    let aux_texts: Vec<Option<String>> =
                        detection.auxiliary_transcriptions.iter().cloned().map(Some).collect();
                    // Modality budgets run against the oldest waiter:
                    // the request that has been waiting longest decides
                    // how much patience the batch has left.
                    let earliest =
                        item.waiters.iter().map(|w| w.submitted).min().unwrap_or_else(Instant::now);
                    let (is_adversarial, kind, modalities, fused) = resolve_with_modalities(
                        system,
                        plan,
                        &item.wave,
                        detection.is_adversarial,
                        &detection.scores,
                        &detection.target_transcription,
                        earliest,
                        stats,
                    );
                    (
                        Verdict {
                            is_adversarial: Some(is_adversarial),
                            kind,
                            from_cache: false,
                            scores: detection.scores.into_iter().map(Some).collect(),
                            target_transcription: Some(detection.target_transcription),
                            modalities,
                            fused,
                            early_exit: false,
                            latency: Duration::ZERO,
                        },
                        aux_texts,
                    )
                } else {
                    let indices: Vec<usize> = available.iter().map(|&(j, _)| j).collect();
                    let texts: Vec<String> = available.into_iter().map(|(_, t)| t).collect();
                    let partial = system.scores_from_transcripts(&target, &texts);
                    let pairs: Vec<(usize, f64)> =
                        indices.iter().copied().zip(partial.iter().copied()).collect();
                    let (is_adversarial, tier) = policy.classify(&pairs);
                    let mut scores = vec![None; n_aux];
                    let mut aux_texts: Vec<Option<String>> = vec![None; n_aux];
                    for ((&j, &s), text) in indices.iter().zip(partial.iter()).zip(texts) {
                        if let Some(slot) = scores.get_mut(j) {
                            *slot = Some(s);
                        }
                        if let Some(slot) = aux_texts.get_mut(j) {
                            *slot = Some(text);
                        }
                    }
                    (
                        Verdict {
                            is_adversarial: Some(is_adversarial),
                            kind: VerdictKind::Degraded(tier),
                            from_cache: false,
                            scores,
                            target_transcription: Some(target),
                            // An auxiliary already missed its deadline;
                            // modality scoring would only add latency to
                            // an answer the fused classifier cannot use.
                            modalities: Vec::new(),
                            fused: false,
                            early_exit: false,
                            latency: Duration::ZERO,
                        },
                        aux_texts,
                    )
                }
            }
        };
        // The mean-score threshold makes MeanThreshold verdicts
        // reconstructible from the audit record alone.
        let threshold = match verdict.kind {
            VerdictKind::Degraded(FallbackTier::MeanThreshold) => policy.mean_threshold(),
            _ => None,
        };
        for waiter in item.waiters {
            let mut verdict = verdict.clone();
            verdict.latency = waiter.submitted.elapsed();
            match verdict.kind {
                VerdictKind::Failed => {
                    stats.deadline_failures.inc();
                }
                VerdictKind::Degraded(_) => {
                    stats.degraded.inc();
                }
                VerdictKind::Full => {}
            }
            if verdict.fused {
                stats.fused_verdicts.inc();
            }
            stats.latency.record(verdict.latency);
            stats.completed.inc();
            if let Some(audit) = audit {
                let record = verdict_record(
                    waiter.id,
                    Some(batch_id),
                    &verdict,
                    &aux_texts,
                    threshold,
                    waiter.queued_us,
                    &state.elapsed_us,
                    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                );
                let _ = audit.append(&record);
            }
            let _ = waiter.reply.send(verdict);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cache_recovers_from_poisoning() {
        let recovered = Counter::new();
        let cache = SharedCache::new(4, recovered.clone());
        cache.with(|c| c.insert(1, Arc::new(vec!["a".into()])));
        let poisoner = cache.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker dies while holding the cache lock");
        })
        .join();
        // The poisoned lock is recovered (and counted), not propagated:
        // the cache keeps answering.
        assert_eq!(cache.with(|c| c.get(&1).cloned()).map(|v| v.len()), Some(1));
        cache.with(|c| c.insert(2, Arc::new(vec!["b".into()])));
        assert!(cache.with(|c| c.get(&2).is_some()));
        assert_eq!(recovered.get(), 1);
    }

    #[test]
    fn verdict_records_parse_and_reconstruct() {
        let verdict = Verdict {
            is_adversarial: Some(true),
            kind: VerdictKind::Degraded(FallbackTier::MeanThreshold),
            from_cache: false,
            scores: vec![Some(0.12), None],
            target_transcription: Some("open the door".into()),
            modalities: vec![
                ModalityReport {
                    kind: ModalityKind::Transform,
                    scored: true,
                    features: vec![0.91, 0.05],
                    elapsed_us: 420,
                },
                ModalityReport {
                    kind: ModalityKind::Distribution,
                    scored: false,
                    features: Vec::new(),
                    elapsed_us: 0,
                },
            ],
            fused: false,
            early_exit: false,
            latency: Duration::from_micros(1500),
        };
        let line = verdict_record(
            7,
            Some(3),
            &verdict,
            &[Some("open door".into()), None],
            Some(0.4),
            250,
            &[Some(900), Some(800), None],
            30,
        );
        let v = mvp_obs::json::parse(&line).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("verdict"));
        assert_eq!(v.get("v").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("request").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("degraded"));
        assert_eq!(v.get("tier").unwrap().as_str(), Some("mean_threshold"));
        assert_eq!(v.get("adversarial").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("threshold").unwrap().as_f64(), Some(0.4));
        assert_eq!(v.get("fused").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("early").unwrap().as_bool(), Some(false));
        let modalities = v.get("modalities").unwrap().as_arr().unwrap();
        assert_eq!(modalities.len(), 2);
        assert_eq!(modalities[0].get("name").unwrap().as_str(), Some("transform"));
        assert_eq!(modalities[0].get("scored").unwrap().as_bool(), Some(true));
        assert_eq!(modalities[0].get("features").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(modalities[0].get("us").unwrap().as_f64(), Some(420.0));
        assert_eq!(modalities[1].get("scored").unwrap().as_bool(), Some(false));
        let aux = v.get("aux").unwrap().as_arr().unwrap();
        assert_eq!(aux.len(), 2);
        assert_eq!(aux[0].get("score").unwrap().as_f64(), Some(0.12));
        assert!(aux[1].get("text").unwrap().is_null());
        let timing = v.get("timing").unwrap();
        assert_eq!(timing.get("queue_us").unwrap().as_f64(), Some(250.0));
        assert_eq!(timing.get("total_us").unwrap().as_f64(), Some(1500.0));
        assert!(timing.get("transcribe_us").unwrap().as_arr().unwrap()[2].is_null());
    }
}
