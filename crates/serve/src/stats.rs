//! Service-level instrumentation: throughput counters, queue-depth
//! gauge, cache hit rate, and a lock-free latency histogram with
//! p50/p95/p99 estimation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: one per power-of-two of microseconds,
/// which spans sub-microsecond to ~36 minutes with ≤ 2× relative error.
const BUCKETS: usize = 32;

/// A concurrent log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Largest recorded latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0 < q <= 1`) in microseconds: the upper
    /// edge of the bucket containing the quantile rank, i.e. within 2× of
    /// the true value. Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i) µs (bucket 0: 0).
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_micros()
    }
}

/// Cumulative engine counters. All methods are thread-safe; gauges and
/// counters are monotone except `queue_depth`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests accepted into the ingress queue.
    pub submitted: AtomicU64,
    /// Requests rejected by backpressure (queue full).
    pub shed: AtomicU64,
    /// Requests answered (with any verdict).
    pub completed: AtomicU64,
    /// Requests answered in degraded mode (≥ 1 auxiliary dropped).
    pub degraded: AtomicU64,
    /// Requests that failed outright (target ASR missed the deadline).
    pub deadline_failures: AtomicU64,
    /// Cache lookups performed.
    pub cache_lookups: AtomicU64,
    /// Cache lookups that hit.
    pub cache_hits: AtomicU64,
    /// Current ingress queue depth.
    pub queue_depth: AtomicU64,
    /// Batches dispatched to workers.
    pub batches: AtomicU64,
    /// Total requests across dispatched batches (for mean batch size).
    pub batched_requests: AtomicU64,
    /// End-to-end latency of answered requests.
    pub latency: LatencyHistogram,
}

impl ServeStats {
    /// Creates zeroed stats.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Takes a point-in-time copy of every metric.
    pub fn snapshot(&self) -> StatsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let batches = load(&self.batches);
        StatsSnapshot {
            submitted: load(&self.submitted),
            shed: load(&self.shed),
            completed: load(&self.completed),
            degraded: load(&self.degraded),
            deadline_failures: load(&self.deadline_failures),
            cache_lookups: load(&self.cache_lookups),
            cache_hits: load(&self.cache_hits),
            queue_depth: load(&self.queue_depth),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                load(&self.batched_requests) as f64 / batches as f64
            },
            latency_mean_micros: self.latency.mean_micros(),
            latency_p50_micros: self.latency.quantile_micros(0.50),
            latency_p95_micros: self.latency.quantile_micros(0.95),
            latency_p99_micros: self.latency.quantile_micros(0.99),
            latency_max_micros: self.latency.max_micros(),
        }
    }
}

/// A point-in-time copy of the engine metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted into the ingress queue.
    pub submitted: u64,
    /// Requests rejected by backpressure.
    pub shed: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests answered in degraded mode.
    pub degraded: u64,
    /// Requests failed because the target ASR missed the deadline.
    pub deadline_failures: u64,
    /// Cache lookups performed.
    pub cache_lookups: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Ingress queue depth at snapshot time.
    pub queue_depth: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Mean end-to-end latency (µs).
    pub latency_mean_micros: f64,
    /// Median end-to-end latency (µs, bucket upper edge).
    pub latency_p50_micros: u64,
    /// 95th-percentile latency (µs, bucket upper edge).
    pub latency_p95_micros: u64,
    /// 99th-percentile latency (µs, bucket upper edge).
    pub latency_p99_micros: u64,
    /// Maximum observed latency (µs).
    pub latency_max_micros: u64,
}

impl StatsSnapshot {
    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Renders the snapshot as a JSON object (the repo has no serde; the
    /// field set is flat, so hand-rolling is trivial and dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"submitted\":{},\"shed\":{},\"completed\":{},\"degraded\":{},",
                "\"deadline_failures\":{},\"cache_lookups\":{},\"cache_hits\":{},",
                "\"cache_hit_rate\":{:.4},\"queue_depth\":{},\"batches\":{},",
                "\"mean_batch_size\":{:.3},\"latency_mean_us\":{:.1},",
                "\"latency_p50_us\":{},\"latency_p95_us\":{},\"latency_p99_us\":{},",
                "\"latency_max_us\":{}}}"
            ),
            self.submitted,
            self.shed,
            self.completed,
            self.degraded,
            self.deadline_failures,
            self.cache_lookups,
            self.cache_hits,
            self.cache_hit_rate(),
            self.queue_depth,
            self.batches,
            self.mean_batch_size,
            self.latency_mean_micros,
            self.latency_p50_micros,
            self.latency_p95_micros,
            self.latency_p99_micros,
            self.latency_max_micros,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_micros(0.5);
        // True median 5 ms -> bucket upper edge within [5ms, 10ms].
        assert!((5_000..=10_000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!(p99 >= 100_000, "p99 {p99}");
        assert_eq!(h.max_micros(), 100_000);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0.0);
    }

    #[test]
    fn quantiles_monotone_in_q() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(Duration::from_micros(i * 37 % 5000));
        }
        let (p50, p95, p99) =
            (h.quantile_micros(0.5), h.quantile_micros(0.95), h.quantile_micros(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn snapshot_hit_rate_and_json() {
        let s = ServeStats::new();
        s.submitted.store(10, Ordering::Relaxed);
        s.cache_lookups.store(8, Ordering::Relaxed);
        s.cache_hits.store(2, Ordering::Relaxed);
        s.latency.record(Duration::from_millis(3));
        let snap = s.snapshot();
        assert!((snap.cache_hit_rate() - 0.25).abs() < 1e-12);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"submitted\":10"));
        assert!(json.contains("\"cache_hit_rate\":0.2500"));
    }
}
