//! Service-level instrumentation: throughput counters, queue-depth
//! gauge, cache hit rate, and latency quantiles.
//!
//! Every metric lives in an [`mvp_obs::Registry`], so the same storage
//! cells back the typed [`StatsSnapshot`], the Prometheus-style text
//! exposition, and any periodic snapshot writer — there is no second
//! set of books to drift out of sync.

use std::sync::Arc;

use mvp_obs::metrics::{Counter, Gauge, Histogram, Registry};

/// The serve latency histogram. Retained name from the pre-registry
/// implementation; the type now lives in `mvp_obs`.
pub use mvp_obs::metrics::Histogram as LatencyHistogram;

/// Cumulative engine counters, registry-backed. All handles are
/// thread-safe; counters are monotone, `queue_depth` moves both ways.
#[derive(Debug)]
pub struct ServeStats {
    registry: Arc<Registry>,
    /// Requests accepted into the ingress queue.
    pub submitted: Counter,
    /// Requests rejected by backpressure (queue full).
    pub shed: Counter,
    /// Requests answered (with any verdict).
    pub completed: Counter,
    /// Requests answered in degraded mode (≥ 1 auxiliary dropped).
    pub degraded: Counter,
    /// Requests that failed outright (target ASR missed the deadline).
    pub deadline_failures: Counter,
    /// Cache lookups performed.
    pub cache_lookups: Counter,
    /// Cache lookups that hit.
    pub cache_hits: Counter,
    /// Times a poisoned cache lock was recovered (a worker panicked
    /// while holding it and the engine carried on).
    pub cache_poison_recovered: Counter,
    /// Current ingress queue depth.
    pub queue_depth: Gauge,
    /// Batches dispatched to workers.
    pub batches: Counter,
    /// Total requests across dispatched batches (for mean batch size).
    pub batched_requests: Counter,
    /// Modality evaluations completed (one per modality per request).
    pub modality_scored: Counter,
    /// Modality evaluations skipped because the per-request budget was
    /// already spent (or the modality was disabled with a zero budget).
    pub modality_budget_missed: Counter,
    /// Requests answered by the fused similarity + modality classifier.
    pub fused_verdicts: Counter,
    /// Chunked-ingress streams opened.
    pub streams_opened: Counter,
    /// Stream chunks pushed across all streams.
    pub stream_chunks: Counter,
    /// Streams answered early by the early-exit rule.
    pub stream_early_exits: Counter,
    /// Streams fully finished (every recogniser flushed), whether the
    /// verdict was early or settled at end-of-stream.
    pub streams_completed: Counter,
    /// End-to-end latency of answered requests.
    pub latency: Histogram,
}

impl ServeStats {
    /// Creates zeroed stats backed by a fresh registry.
    pub fn new() -> ServeStats {
        let registry = Arc::new(Registry::new());
        ServeStats {
            submitted: registry
                .counter("serve_submitted_total", "requests accepted into the ingress queue"),
            shed: registry.counter("serve_shed_total", "requests rejected by backpressure"),
            completed: registry.counter("serve_completed_total", "requests answered"),
            degraded: registry.counter("serve_degraded_total", "requests answered degraded"),
            deadline_failures: registry
                .counter("serve_deadline_failures_total", "requests failed on target deadline"),
            cache_lookups: registry
                .counter("serve_cache_lookups_total", "transcription cache lookups"),
            cache_hits: registry.counter("serve_cache_hits_total", "transcription cache hits"),
            cache_poison_recovered: registry.counter(
                "serve_cache_poison_recovered_total",
                "poisoned cache locks recovered after a worker panic",
            ),
            queue_depth: registry.gauge("serve_queue_depth", "current ingress queue depth"),
            batches: registry.counter("serve_batches_total", "micro-batches dispatched"),
            batched_requests: registry
                .counter("serve_batched_requests_total", "requests across dispatched batches"),
            modality_scored: registry
                .counter("serve_modality_scored_total", "modality evaluations completed"),
            modality_budget_missed: registry.counter(
                "serve_modality_budget_missed_total",
                "modality evaluations skipped on a spent per-request budget",
            ),
            fused_verdicts: registry
                .counter("serve_fused_verdicts_total", "requests answered by the fused classifier"),
            streams_opened: registry
                .counter("serve_streams_opened_total", "chunked-ingress streams opened"),
            stream_chunks: registry.counter("serve_stream_chunks_total", "stream chunks pushed"),
            stream_early_exits: registry.counter(
                "serve_stream_early_exits_total",
                "streams answered early by the early-exit rule",
            ),
            streams_completed: registry
                .counter("serve_streams_completed_total", "streams fully finished"),
            latency: registry
                .histogram("serve_latency_micros", "end-to-end request latency in microseconds"),
            registry,
        }
    }

    /// The registry backing every metric; render it for exposition or
    /// hand it to an [`mvp_obs::SnapshotWriter`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Prometheus-style text exposition of every serve metric.
    pub fn render_text(&self) -> String {
        self.registry.render_text()
    }

    /// Takes a point-in-time copy of every metric.
    pub fn snapshot(&self) -> StatsSnapshot {
        let batches = self.batches.get();
        StatsSnapshot {
            submitted: self.submitted.get(),
            shed: self.shed.get(),
            completed: self.completed.get(),
            degraded: self.degraded.get(),
            deadline_failures: self.deadline_failures.get(),
            cache_lookups: self.cache_lookups.get(),
            cache_hits: self.cache_hits.get(),
            cache_poison_recovered: self.cache_poison_recovered.get(),
            queue_depth: self.queue_depth.get(),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                self.batched_requests.get() as f64 / batches as f64
            },
            modality_scored: self.modality_scored.get(),
            modality_budget_missed: self.modality_budget_missed.get(),
            fused_verdicts: self.fused_verdicts.get(),
            streams_opened: self.streams_opened.get(),
            stream_chunks: self.stream_chunks.get(),
            stream_early_exits: self.stream_early_exits.get(),
            streams_completed: self.streams_completed.get(),
            latency_mean_micros: self.latency.mean_micros(),
            latency_p50_micros: self.latency.quantile_micros(0.50),
            latency_p95_micros: self.latency.quantile_micros(0.95),
            latency_p99_micros: self.latency.quantile_micros(0.99),
            latency_max_micros: self.latency.max_micros(),
        }
    }
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new()
    }
}

/// A point-in-time copy of the engine metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted into the ingress queue.
    pub submitted: u64,
    /// Requests rejected by backpressure.
    pub shed: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests answered in degraded mode.
    pub degraded: u64,
    /// Requests failed because the target ASR missed the deadline.
    pub deadline_failures: u64,
    /// Cache lookups performed.
    pub cache_lookups: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Poisoned cache locks recovered.
    pub cache_poison_recovered: u64,
    /// Ingress queue depth at snapshot time.
    pub queue_depth: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Modality evaluations completed.
    pub modality_scored: u64,
    /// Modality evaluations skipped on a spent budget.
    pub modality_budget_missed: u64,
    /// Requests answered by the fused classifier.
    pub fused_verdicts: u64,
    /// Chunked-ingress streams opened.
    pub streams_opened: u64,
    /// Stream chunks pushed.
    pub stream_chunks: u64,
    /// Streams answered early by the early-exit rule.
    pub stream_early_exits: u64,
    /// Streams fully finished.
    pub streams_completed: u64,
    /// Mean end-to-end latency (µs).
    pub latency_mean_micros: f64,
    /// Median end-to-end latency (µs, bucket upper edge).
    pub latency_p50_micros: u64,
    /// 95th-percentile latency (µs, bucket upper edge).
    pub latency_p95_micros: u64,
    /// 99th-percentile latency (µs, bucket upper edge).
    pub latency_p99_micros: u64,
    /// Maximum observed latency (µs).
    pub latency_max_micros: u64,
}

impl StatsSnapshot {
    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Merges per-shard snapshots into one aggregate view. Counters and
    /// gauges sum; `mean_batch_size` and `latency_mean_micros` are
    /// weighted means (by batches and completed requests respectively);
    /// latency quantiles and max take the worst shard — exact histogram
    /// merging would need the raw buckets, and a cross-shard p99 is
    /// upper-bounded by the worst per-shard p99, which is the
    /// conservative number an operator wants anyway.
    pub fn merged(shards: &[StatsSnapshot]) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        let mut batch_requests = 0.0f64;
        let mut latency_sum = 0.0f64;
        for s in shards {
            out.submitted += s.submitted;
            out.shed += s.shed;
            out.completed += s.completed;
            out.degraded += s.degraded;
            out.deadline_failures += s.deadline_failures;
            out.cache_lookups += s.cache_lookups;
            out.cache_hits += s.cache_hits;
            out.cache_poison_recovered += s.cache_poison_recovered;
            out.queue_depth += s.queue_depth;
            out.batches += s.batches;
            batch_requests += s.mean_batch_size * s.batches as f64;
            out.modality_scored += s.modality_scored;
            out.modality_budget_missed += s.modality_budget_missed;
            out.fused_verdicts += s.fused_verdicts;
            out.streams_opened += s.streams_opened;
            out.stream_chunks += s.stream_chunks;
            out.stream_early_exits += s.stream_early_exits;
            out.streams_completed += s.streams_completed;
            latency_sum += s.latency_mean_micros * s.completed as f64;
            out.latency_p50_micros = out.latency_p50_micros.max(s.latency_p50_micros);
            out.latency_p95_micros = out.latency_p95_micros.max(s.latency_p95_micros);
            out.latency_p99_micros = out.latency_p99_micros.max(s.latency_p99_micros);
            out.latency_max_micros = out.latency_max_micros.max(s.latency_max_micros);
        }
        if out.batches > 0 {
            out.mean_batch_size = batch_requests / out.batches as f64;
        }
        if out.completed > 0 {
            out.latency_mean_micros = latency_sum / out.completed as f64;
        }
        out
    }

    /// Renders the snapshot as a JSON object (the repo has no serde; the
    /// field set is flat, so hand-rolling is trivial and dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"submitted\":{},\"shed\":{},\"completed\":{},\"degraded\":{},",
                "\"deadline_failures\":{},\"cache_lookups\":{},\"cache_hits\":{},",
                "\"cache_hit_rate\":{:.4},\"cache_poison_recovered\":{},",
                "\"queue_depth\":{},\"batches\":{},",
                "\"mean_batch_size\":{:.3},\"modality_scored\":{},",
                "\"modality_budget_missed\":{},\"fused_verdicts\":{},",
                "\"streams_opened\":{},\"stream_chunks\":{},",
                "\"stream_early_exits\":{},\"streams_completed\":{},",
                "\"latency_mean_us\":{:.1},",
                "\"latency_p50_us\":{},\"latency_p95_us\":{},\"latency_p99_us\":{},",
                "\"latency_max_us\":{}}}"
            ),
            self.submitted,
            self.shed,
            self.completed,
            self.degraded,
            self.deadline_failures,
            self.cache_lookups,
            self.cache_hits,
            self.cache_hit_rate(),
            self.cache_poison_recovered,
            self.queue_depth,
            self.batches,
            self.mean_batch_size,
            self.modality_scored,
            self.modality_budget_missed,
            self.fused_verdicts,
            self.streams_opened,
            self.stream_chunks,
            self.stream_early_exits,
            self.streams_completed,
            self.latency_mean_micros,
            self.latency_p50_micros,
            self.latency_p95_micros,
            self.latency_p99_micros,
            self.latency_max_micros,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_micros(0.5);
        // True median 5 ms -> bucket upper edge within [5ms, 10ms].
        assert!((5_000..=10_000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!(p99 >= 100_000, "p99 {p99}");
        assert_eq!(h.max_micros(), 100_000);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0.0);
    }

    #[test]
    fn quantiles_monotone_in_q() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(Duration::from_micros(i * 37 % 5000));
        }
        let (p50, p95, p99) =
            (h.quantile_micros(0.5), h.quantile_micros(0.95), h.quantile_micros(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn snapshot_hit_rate_and_json() {
        let s = ServeStats::new();
        s.submitted.add(10);
        s.cache_lookups.add(8);
        s.cache_hits.add(2);
        s.latency.record(Duration::from_millis(3));
        let snap = s.snapshot();
        assert!((snap.cache_hit_rate() - 0.25).abs() < 1e-12);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"submitted\":10"));
        assert!(json.contains("\"cache_hit_rate\":0.2500"));
        assert!(json.contains("\"cache_poison_recovered\":0"));
    }

    #[test]
    fn snapshot_matches_exposition() {
        // The snapshot and the rendered registry must read the same
        // cells: no dual bookkeeping.
        let s = ServeStats::new();
        s.submitted.add(7);
        s.shed.inc();
        s.queue_depth.set(3);
        s.latency.record(Duration::from_micros(900));
        let snap = s.snapshot();
        let text = s.render_text();
        assert!(text.contains(&format!("serve_submitted_total {}", snap.submitted)));
        assert!(text.contains(&format!("serve_shed_total {}", snap.shed)));
        assert!(text.contains(&format!("serve_queue_depth {}", snap.queue_depth)));
        assert!(text.contains("serve_latency_micros_count 1"));
        assert!(text.contains("serve_latency_micros_sum 900"));
    }

    #[test]
    fn merged_sums_counters_and_takes_worst_tails() {
        let a = ServeStats::new();
        a.submitted.add(4);
        a.completed.add(4);
        a.cache_lookups.add(4);
        a.cache_hits.add(2);
        a.streams_opened.add(1);
        a.latency.record(Duration::from_micros(100));
        let b = ServeStats::new();
        b.submitted.add(6);
        b.completed.add(2);
        b.cache_lookups.add(2);
        b.stream_early_exits.inc();
        b.latency.record(Duration::from_micros(900));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let m = StatsSnapshot::merged(&[sa.clone(), sb.clone()]);
        assert_eq!(m.submitted, 10);
        assert_eq!(m.completed, 6);
        assert_eq!(m.cache_lookups, 6);
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.streams_opened, 1);
        assert_eq!(m.stream_early_exits, 1);
        assert_eq!(m.latency_max_micros, sa.latency_max_micros.max(sb.latency_max_micros));
        assert!(m.latency_p99_micros >= sa.latency_p99_micros.max(sb.latency_p99_micros));
        // Weighted mean lands between the two shard means.
        assert!(m.latency_mean_micros > sa.latency_mean_micros);
        assert!(m.latency_mean_micros < sb.latency_mean_micros);
        assert_eq!(StatsSnapshot::merged(&[]), StatsSnapshot::default());
    }

    #[test]
    fn registry_names_cover_every_snapshot_field() {
        let s = ServeStats::new();
        let names = s.registry().names();
        for required in [
            "serve_submitted_total",
            "serve_shed_total",
            "serve_completed_total",
            "serve_degraded_total",
            "serve_deadline_failures_total",
            "serve_cache_lookups_total",
            "serve_cache_hits_total",
            "serve_cache_poison_recovered_total",
            "serve_queue_depth",
            "serve_batches_total",
            "serve_batched_requests_total",
            "serve_modality_scored_total",
            "serve_modality_budget_missed_total",
            "serve_fused_verdicts_total",
            "serve_streams_opened_total",
            "serve_stream_chunks_total",
            "serve_stream_early_exits_total",
            "serve_streams_completed_total",
            "serve_latency_micros",
        ] {
            assert!(names.iter().any(|n| n == required), "missing metric {required}");
        }
    }
}
