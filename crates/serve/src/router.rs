//! The shard router: N [`DetectionEngine`]s behind one submit surface.
//!
//! ```text
//!   submit(wave) ── key = waveform_key ──▶ home = key % N
//!        │                                     │
//!        │        home backlog < steal_depth ──┴──▶ home shard
//!        │        home backlog ≥ steal_depth ──────▶ least-loaded shard
//!        │                                           (steal, counted)
//!        └─ home Overloaded ───────────────────────▶ least-loaded other
//!                                                    shard (steal), else
//!                                                    shed
//! ```
//!
//! Routing is **content-hashed**: the same waveform always lands on the
//! same home shard, so each shard's transcription cache only ever holds
//! its own residents — N shards multiply the effective cache capacity
//! without any cross-shard invalidation protocol. Work-stealing trades
//! that affinity away only when the home shard's ingress queue has
//! visibly backed up (its queue-depth gauge at or past
//! [`RouterConfig::steal_depth`]), preferring a colder cache over a
//! longer queue; every such deviation increments the home shard's steal
//! counter so the affinity loss is observable.
//!
//! Streams carry no content key at open time (the audio has not arrived
//! yet), so [`submit_stream`](ShardRouter::submit_stream) round-robins
//! across shards — streams bypass the cache anyway, so there is no
//! affinity to preserve.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mvp_audio::Waveform;
use mvp_ears::DetectionSystem;

use crate::cache::waveform_key;
use crate::degrade::DegradePolicy;
use crate::engine::{
    DetectionEngine, EngineConfig, PendingVerdict, StreamHandle, SubmitError, Verdict,
};
use crate::stats::StatsSnapshot;

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of engine shards. Each runs its own batcher, workers,
    /// collector, and transcription cache.
    pub n_shards: usize,
    /// Home-shard ingress backlog (queue depth) at which a submission
    /// abandons cache affinity and steals to the least-loaded shard.
    /// `0` steals whenever any other shard is strictly less loaded.
    pub steal_depth: usize,
    /// Per-shard engine configuration (note `cache_cap` is *per shard*:
    /// N shards hold N × `cache_cap` waveforms between them).
    pub engine: EngineConfig,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig { n_shards: 2, steal_depth: 8, engine: EngineConfig::default() }
    }
}

/// N detection-engine shards behind a content-hash router with
/// work-stealing. See the [module docs](self) for the routing policy.
pub struct ShardRouter {
    shards: Vec<DetectionEngine>,
    /// Per home shard: submissions routed away from it by stealing.
    steals: Vec<AtomicU64>,
    steal_depth: u64,
    next_stream: AtomicU64,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter").field("shards", &self.shards.len()).finish()
    }
}

impl ShardRouter {
    /// Starts `config.n_shards` engines over one shared system. The
    /// degrade policy is not `Clone` (it owns trained classifiers), so
    /// each shard gets its own from `policy`, called with the shard
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero, or as [`DetectionEngine::start`]
    /// does on an invalid engine config.
    pub fn start(
        system: Arc<DetectionSystem>,
        config: RouterConfig,
        mut policy: impl FnMut(usize) -> DegradePolicy,
    ) -> ShardRouter {
        assert!(config.n_shards > 0, "n_shards must be positive");
        let shards: Vec<DetectionEngine> = (0..config.n_shards)
            .map(|i| DetectionEngine::start(Arc::clone(&system), policy(i), config.engine.clone()))
            .collect();
        // Each engine start split the cores over its own workers only;
        // with N shards of workers live at once, re-partition so the
        // kernel plane's frame parallelism never oversubscribes.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let denominator = (system.n_recognizers() * config.n_shards).max(1);
        mvp_dsp::kernel::set_threads((cores / denominator).max(1));
        ShardRouter {
            steals: (0..config.n_shards).map(|_| AtomicU64::new(0)).collect(),
            steal_depth: config.steal_depth as u64,
            next_stream: AtomicU64::new(0),
            shards,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` homes to.
    fn home_of(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// The shard with the shallowest ingress queue (lowest index wins
    /// ties, so the choice is deterministic under equal load).
    fn least_loaded(&self, exclude: Option<usize>) -> usize {
        let mut best = usize::MAX;
        let mut best_depth = u64::MAX;
        for (i, shard) in self.shards.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            let depth = shard.queue_depth();
            if depth < best_depth {
                best_depth = depth;
                best = i;
            }
        }
        best
    }

    /// Submits a waveform through the router. Routing: home shard by
    /// content hash; least-loaded shard when the home backlog is at or
    /// past `steal_depth` (or the home sheds) — each such deviation
    /// counts as a steal against the home shard. [`SubmitError::Overloaded`]
    /// only when the stolen-to shard sheds as well.
    pub fn submit(&self, wave: impl Into<Arc<Waveform>>) -> Result<PendingVerdict, SubmitError> {
        let wave = wave.into();
        let home = self.home_of(waveform_key(&wave));
        if let [only] = self.shards.as_slice() {
            return only.submit(wave);
        }
        let mut shard = home;
        let backlogged = self.shards.get(home).is_some_and(|s| s.queue_depth() >= self.steal_depth);
        if backlogged {
            let victim = self.least_loaded(None);
            if victim != home {
                shard = victim;
            }
        }
        let Some(chosen) = self.shards.get(shard) else {
            return Err(SubmitError::Overloaded);
        };
        match chosen.submit(Arc::clone(&wave)) {
            Ok(pending) => {
                if shard != home {
                    self.record_steal(home);
                }
                Ok(pending)
            }
            // The chosen shard shed at the door: one last steal attempt
            // at whichever other shard is least loaded right now. A
            // `least_loaded` miss returns `usize::MAX`, which `get`
            // turns into the Overloaded answer.
            Err(SubmitError::Overloaded) => {
                let victim = self.least_loaded(Some(shard));
                let Some(engine) = self.shards.get(victim) else {
                    return Err(SubmitError::Overloaded);
                };
                let pending = engine.submit(wave)?;
                self.record_steal(home);
                Ok(pending)
            }
            Err(SubmitError::Closed) => Err(SubmitError::Closed),
        }
    }

    /// Counts one steal against `home`'s shard.
    fn record_steal(&self, home: usize) {
        if let Some(counter) = self.steals.get(home) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Convenience: submit and block for the verdict.
    pub fn detect_blocking(&self, wave: impl Into<Arc<Waveform>>) -> Result<Verdict, SubmitError> {
        self.submit(wave).map(PendingVerdict::wait)
    }

    /// Opens a chunked-ingress stream on the next shard round-robin.
    pub fn submit_stream(&self) -> Result<StreamHandle<'_>, SubmitError> {
        let n = self.shards.len() as u64;
        let shard = (self.next_stream.fetch_add(1, Ordering::Relaxed) % n) as usize;
        self.shards.get(shard).ok_or(SubmitError::Closed)?.submit_stream()
    }

    /// Point-in-time metrics of every shard, in shard order.
    pub fn shard_stats(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(DetectionEngine::stats).collect()
    }

    /// Aggregate metrics across shards (see [`StatsSnapshot::merged`]
    /// for the quantile caveat).
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::merged(&self.shard_stats())
    }

    /// Per home shard: how many submissions stealing routed away from it.
    pub fn steal_counts(&self) -> Vec<u64> {
        self.steals.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Shuts every shard down in order: each stops intake, drains its
    /// in-flight requests, and joins its threads. Dropping the router
    /// does the same.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let config = RouterConfig::default();
        assert!(config.n_shards >= 1);
        assert!(config.engine.queue_cap > 0);
    }
}
