//! Deterministic load generation against a [`DetectionEngine`] or
//! [`ShardRouter`] (anything implementing [`LoadTarget`]).
//!
//! Three disciplines:
//!
//! - **closed loop**: K submitter threads, each waiting for its verdict
//!   before submitting again — measures capacity at fixed concurrency;
//! - **open loop**: requests dispatched on a seeded pre-computed arrival
//!   schedule regardless of completion — measures behaviour (shedding,
//!   latency tails) at a fixed offered rate;
//! - **streaming**: K submitter threads feeding fixed-duration chunks
//!   through [`StreamHandle`]s, stopping a stream the moment an early
//!   verdict fires — measures early-exit rate and time-to-verdict.
//!
//! Which waveform each request carries is fully determined by the spec's
//! seed: a fraction of requests (`duplicate_frac`) replay an earlier
//! waveform to exercise the transcription cache, the rest walk the
//! corpus in order. Timing-derived metrics (latency, wall time) vary run
//! to run, but the request sequence and — in closed loop — every verdict
//! are reproducible.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_audio::Waveform;

use crate::engine::{
    DetectionEngine, PendingVerdict, StreamHandle, SubmitError, Verdict, VerdictKind,
};
use crate::router::ShardRouter;
use crate::stats::StatsSnapshot;

/// A submit surface the load generator can drive: one engine or a whole
/// shard router.
pub trait LoadTarget {
    /// Submit one waveform (non-blocking; may shed).
    fn submit_wave(&self, wave: Arc<Waveform>) -> Result<PendingVerdict, SubmitError>;
    /// Open a chunked-ingress stream.
    fn open_stream(&self) -> Result<StreamHandle<'_>, SubmitError>;
    /// Point-in-time metrics (aggregated across shards for a router).
    fn load_stats(&self) -> StatsSnapshot;
}

impl LoadTarget for DetectionEngine {
    fn submit_wave(&self, wave: Arc<Waveform>) -> Result<PendingVerdict, SubmitError> {
        self.submit(wave)
    }

    fn open_stream(&self) -> Result<StreamHandle<'_>, SubmitError> {
        self.submit_stream()
    }

    fn load_stats(&self) -> StatsSnapshot {
        self.stats()
    }
}

impl LoadTarget for ShardRouter {
    fn submit_wave(&self, wave: Arc<Waveform>) -> Result<PendingVerdict, SubmitError> {
        self.submit(wave)
    }

    fn open_stream(&self) -> Result<StreamHandle<'_>, SubmitError> {
        self.submit_stream()
    }

    fn load_stats(&self) -> StatsSnapshot {
        self.stats()
    }
}

/// The load discipline for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `concurrency` submitters, each one request in flight.
    Closed {
        /// Number of submitter threads.
        concurrency: usize,
    },
    /// Seeded Poisson arrivals at `rate_hz`, `waiters` threads draining
    /// verdicts.
    Open {
        /// Offered request rate (arrivals per second).
        rate_hz: f64,
        /// Verdict-draining thread count.
        waiters: usize,
    },
    /// `concurrency` submitters, each feeding one stream at a time in
    /// `chunk_ms` chunks **paced to real time** (a chunk of audio takes
    /// its own duration to arrive), cutting the stream short when an
    /// early verdict fires — so `mean_verdict_audio_frac` measures how
    /// much of the utterance the detector actually needed.
    Streaming {
        /// Number of submitter threads (streams in flight).
        concurrency: usize,
        /// Chunk duration in milliseconds of audio.
        chunk_ms: u64,
    },
}

/// One load level to run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Level name, used in reports.
    pub name: String,
    /// Total requests to offer.
    pub requests: usize,
    /// Closed, open, or streaming loop.
    pub mode: LoadMode,
    /// Fraction of requests replaying an earlier waveform (cache food).
    pub duplicate_frac: f64,
    /// Seed for the request sequence and arrival schedule.
    pub seed: u64,
}

/// Client-side verdict tally for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictTally {
    /// Full verdicts computed by the recognisers.
    pub full: u64,
    /// Full verdicts answered from the transcription cache.
    pub cached: u64,
    /// Degraded verdicts (any fallback tier).
    pub degraded: u64,
    /// Failed requests (target deadline missed).
    pub failed: u64,
    /// Verdicts that flagged the audio adversarial.
    pub flagged_adversarial: u64,
}

impl VerdictTally {
    fn absorb(&mut self, verdict: &Verdict) {
        match verdict.kind {
            VerdictKind::Full if verdict.from_cache => self.cached += 1,
            VerdictKind::Full => self.full += 1,
            VerdictKind::Degraded(_) => self.degraded += 1,
            VerdictKind::Failed => self.failed += 1,
        }
        if verdict.is_adversarial == Some(true) {
            self.flagged_adversarial += 1;
        }
    }

    fn merge(&mut self, other: VerdictTally) {
        self.full += other.full;
        self.cached += other.cached;
        self.degraded += other.degraded;
        self.failed += other.failed;
        self.flagged_adversarial += other.flagged_adversarial;
    }

    /// Total verdicts received.
    pub fn total(&self) -> u64 {
        self.full + self.cached + self.degraded + self.failed
    }
}

/// Client-side streaming accounting: how early verdicts arrive.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct StreamTally {
    streams: u64,
    early_exits: u64,
    /// Sum over streams of the audio fraction consumed when the verdict
    /// became known (1.0 for end-of-stream verdicts).
    frac_sum: f64,
    /// Sum of server-side open→verdict latencies (µs).
    ttv_us_sum: u64,
}

impl StreamTally {
    fn merge(&mut self, other: StreamTally) {
        self.streams += other.streams;
        self.early_exits += other.early_exits;
        self.frac_sum += other.frac_sum;
        self.ttv_us_sum += other.ttv_us_sum;
    }
}

/// The outcome of one load level.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The spec's name.
    pub name: String,
    /// Requests offered.
    pub offered: usize,
    /// Requests shed at ingress.
    pub shed: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Client-side verdict tally.
    pub tally: VerdictTally,
    /// Streamed requests answered before end-of-stream (0 for
    /// non-streaming modes).
    pub early_exits: u64,
    /// Mean fraction of the audio consumed when the verdict became
    /// known: 1.0 = every verdict waited for end-of-stream; 0 when the
    /// level ran no streams.
    pub mean_verdict_audio_frac: f64,
    /// Mean stream open→verdict latency (µs; 0 when no streams ran).
    pub mean_time_to_verdict_us: f64,
    /// Engine metrics snapshot at the end of the run.
    pub stats: StatsSnapshot,
}

impl LoadReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{:?},\"offered\":{},\"shed\":{},\"wall_secs\":{:.3},",
                "\"throughput_rps\":{:.2},\"verdicts\":{{\"full\":{},\"cached\":{},",
                "\"degraded\":{},\"failed\":{},\"flagged_adversarial\":{}}},",
                "\"early_exits\":{},\"mean_verdict_audio_frac\":{:.4},",
                "\"mean_time_to_verdict_us\":{:.1},",
                "\"stats\":{}}}"
            ),
            self.name,
            self.offered,
            self.shed,
            self.wall.as_secs_f64(),
            self.throughput_rps,
            self.tally.full,
            self.tally.cached,
            self.tally.degraded,
            self.tally.failed,
            self.tally.flagged_adversarial,
            self.early_exits,
            self.mean_verdict_audio_frac,
            self.mean_time_to_verdict_us,
            self.stats.to_json(),
        )
    }
}

/// The seeded corpus index for each of the `requests` submissions.
fn request_schedule(spec: &LoadSpec, corpus_len: usize) -> Vec<usize> {
    assert!(corpus_len > 0, "empty load corpus");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut schedule = Vec::with_capacity(spec.requests);
    let mut fresh = 0usize;
    for k in 0..spec.requests {
        if k > 0 && rng.gen_bool(spec.duplicate_frac.clamp(0.0, 1.0)) {
            let replay = rng.gen_range(0..k);
            schedule.push(schedule[replay]);
        } else {
            schedule.push(fresh % corpus_len);
            fresh += 1;
        }
    }
    schedule
}

/// Runs one load level and reports. The target should be freshly started
/// so the embedded stats snapshot covers exactly this run.
pub fn run_load<T: LoadTarget + Sync + ?Sized>(
    target: &T,
    corpus: &[Arc<Waveform>],
    spec: &LoadSpec,
) -> LoadReport {
    let schedule = request_schedule(spec, corpus.len());
    let started = Instant::now();
    let (tally, shed, streamed) = match spec.mode {
        LoadMode::Closed { concurrency } => {
            let (tally, shed) = run_closed(target, corpus, &schedule, concurrency);
            (tally, shed, StreamTally::default())
        }
        LoadMode::Open { rate_hz, waiters } => {
            let (tally, shed) = run_open(target, corpus, &schedule, spec.seed, rate_hz, waiters);
            (tally, shed, StreamTally::default())
        }
        LoadMode::Streaming { concurrency, chunk_ms } => {
            let (tally, streamed) = run_streaming(target, corpus, &schedule, concurrency, chunk_ms);
            (tally, 0, streamed)
        }
    };
    let wall = started.elapsed();
    LoadReport {
        name: spec.name.clone(),
        offered: spec.requests,
        shed,
        wall,
        throughput_rps: tally.total() as f64 / wall.as_secs_f64().max(1e-9),
        tally,
        early_exits: streamed.early_exits,
        mean_verdict_audio_frac: if streamed.streams == 0 {
            0.0
        } else {
            streamed.frac_sum / streamed.streams as f64
        },
        mean_time_to_verdict_us: if streamed.streams == 0 {
            0.0
        } else {
            streamed.ttv_us_sum as f64 / streamed.streams as f64
        },
        stats: target.load_stats(),
    }
}

fn run_closed<T: LoadTarget + Sync + ?Sized>(
    target: &T,
    corpus: &[Arc<Waveform>],
    schedule: &[usize],
    concurrency: usize,
) -> (VerdictTally, u64) {
    let concurrency = concurrency.max(1);
    let mut tally = VerdictTally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                scope.spawn(move || {
                    let mut local = VerdictTally::default();
                    // Striped assignment keeps the per-worker sequence
                    // deterministic regardless of thread interleaving.
                    for &corpus_idx in schedule.iter().skip(worker).step_by(concurrency) {
                        loop {
                            match target.submit_wave(Arc::clone(&corpus[corpus_idx])) {
                                Ok(pending) => {
                                    local.absorb(&pending.wait());
                                    break;
                                }
                                // Closed-loop back-off: with concurrency
                                // bounded, shedding only happens when the
                                // queue is tiny; retry until accepted.
                                Err(SubmitError::Overloaded) => {
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(SubmitError::Closed) => return local,
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            tally.merge(handle.join().expect("closed-loop worker panicked"));
        }
    });
    (tally, 0)
}

fn run_open<T: LoadTarget + Sync + ?Sized>(
    target: &T,
    corpus: &[Arc<Waveform>],
    schedule: &[usize],
    seed: u64,
    rate_hz: f64,
    waiters: usize,
) -> (VerdictTally, u64) {
    assert!(rate_hz > 0.0, "open-loop rate must be positive");
    // Pre-computed Poisson arrival offsets, independent of the request
    // sequence RNG so changing one never perturbs the other.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut offsets = Vec::with_capacity(schedule.len());
    let mut t = 0.0f64;
    for _ in 0..schedule.len() {
        let u: f64 = rng.gen();
        // Exponential inter-arrival: -ln(1-u)/rate, tail-clamped so a
        // single unlucky draw cannot stall the schedule.
        t += (-(1.0 - u).max(1e-12).ln()).min(20.0) / rate_hz;
        offsets.push(t);
    }

    // Bounded at the schedule length: at most one pending ticket per
    // offered request ever sits in the channel, so the dispatcher can
    // never block on it (channel-discipline).
    let (pending_tx, pending_rx) = channel::bounded::<PendingVerdict>(schedule.len().max(1));
    let mut tally = VerdictTally::default();
    let mut shed = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..waiters.max(1))
            .map(|_| {
                let rx = pending_rx.clone();
                scope.spawn(move || {
                    let mut local = VerdictTally::default();
                    for pending in rx.iter() {
                        local.absorb(&pending.wait());
                    }
                    local
                })
            })
            .collect();
        drop(pending_rx);

        let start = Instant::now();
        for (&corpus_idx, &offset) in schedule.iter().zip(&offsets) {
            let due = start + Duration::from_secs_f64(offset);
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            match target.submit_wave(Arc::clone(&corpus[corpus_idx])) {
                Ok(pending) => {
                    let _ = pending_tx.send(pending);
                }
                Err(SubmitError::Overloaded) => shed += 1,
                Err(SubmitError::Closed) => break,
            }
        }
        drop(pending_tx);
        for handle in handles {
            tally.merge(handle.join().expect("open-loop waiter panicked"));
        }
    });
    (tally, shed)
}

fn run_streaming<T: LoadTarget + Sync + ?Sized>(
    target: &T,
    corpus: &[Arc<Waveform>],
    schedule: &[usize],
    concurrency: usize,
    chunk_ms: u64,
) -> (VerdictTally, StreamTally) {
    let concurrency = concurrency.max(1);
    let chunk_ms = chunk_ms.max(1);
    let mut tally = VerdictTally::default();
    let mut streamed = StreamTally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                scope.spawn(move || {
                    let mut local = VerdictTally::default();
                    let mut local_stream = StreamTally::default();
                    for &corpus_idx in schedule.iter().skip(worker).step_by(concurrency) {
                        let wave = &corpus[corpus_idx];
                        let chunk =
                            ((u64::from(wave.sample_rate()) * chunk_ms / 1000).max(1)) as usize;
                        let mut handle = match target.open_stream() {
                            Ok(handle) => handle,
                            Err(_) => return (local, local_stream),
                        };
                        let samples = wave.samples();
                        let n_chunks = samples.chunks(chunk).len();
                        let chunk_dur = Duration::from_millis(chunk_ms);
                        let opened = Instant::now();
                        let mut consumed = 0usize;
                        let mut early = false;
                        for (ci, c) in samples.chunks(chunk).enumerate() {
                            if handle.push(c).is_err() {
                                break;
                            }
                            consumed += c.len();
                            if ci + 1 == n_chunks {
                                break;
                            }
                            // Pace to real time: the next chunk only
                            // exists after its audio has elapsed. Poll
                            // for an early verdict while waiting.
                            let due = opened + chunk_dur * (ci as u32 + 1);
                            loop {
                                if handle.try_verdict().is_some() {
                                    // The verdict is settled: stop paying
                                    // for audio the detector no longer
                                    // needs.
                                    early = true;
                                    break;
                                }
                                let now = Instant::now();
                                if now >= due {
                                    break;
                                }
                                std::thread::sleep((due - now).min(Duration::from_millis(2)));
                            }
                            if early {
                                break;
                            }
                        }
                        let verdict = match handle.finish() {
                            Ok(verdict) => verdict,
                            Err(_) => return (local, local_stream),
                        };
                        local.absorb(&verdict);
                        local_stream.streams += 1;
                        if verdict.early_exit {
                            local_stream.early_exits += 1;
                        }
                        local_stream.frac_sum +=
                            if early { consumed as f64 / samples.len().max(1) as f64 } else { 1.0 };
                        local_stream.ttv_us_sum +=
                            verdict.latency.as_micros().min(u128::from(u64::MAX)) as u64;
                    }
                    (local, local_stream)
                })
            })
            .collect();
        for handle in handles {
            let (local, local_stream) = handle.join().expect("streaming worker panicked");
            tally.merge(local);
            streamed.merge(local_stream);
        }
    });
    (tally, streamed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(requests: usize, dup: f64, seed: u64) -> LoadSpec {
        LoadSpec {
            name: "t".into(),
            requests,
            mode: LoadMode::Closed { concurrency: 1 },
            duplicate_frac: dup,
            seed,
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = request_schedule(&spec(64, 0.5, 42), 10);
        let b = request_schedule(&spec(64, 0.5, 42), 10);
        assert_eq!(a, b);
        let c = request_schedule(&spec(64, 0.5, 43), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn schedule_without_duplicates_walks_corpus() {
        let s = request_schedule(&spec(7, 0.0, 1), 3);
        assert_eq!(s, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn duplicates_replay_earlier_indices() {
        let s = request_schedule(&spec(200, 0.9, 7), 1000);
        // With 90% duplication over a large corpus, far fewer than 200
        // distinct waveforms appear.
        let distinct: std::collections::HashSet<_> = s.iter().collect();
        assert!(distinct.len() < 80, "distinct {}", distinct.len());
    }

    #[test]
    fn streaming_report_fields_default_to_zero_for_request_modes() {
        let report = LoadReport {
            name: "x".into(),
            offered: 0,
            shed: 0,
            wall: Duration::ZERO,
            throughput_rps: 0.0,
            tally: VerdictTally::default(),
            early_exits: 0,
            mean_verdict_audio_frac: 0.0,
            mean_time_to_verdict_us: 0.0,
            stats: StatsSnapshot::default(),
        };
        let json = report.to_json();
        assert!(json.contains("\"early_exits\":0"));
        assert!(json.contains("\"mean_verdict_audio_frac\":0.0000"));
        assert!(json.contains("\"mean_time_to_verdict_us\":0.0"));
    }
}
