//! Deterministic load generation against a [`DetectionEngine`].
//!
//! Two disciplines:
//!
//! - **closed loop**: K submitter threads, each waiting for its verdict
//!   before submitting again — measures capacity at fixed concurrency;
//! - **open loop**: requests dispatched on a seeded pre-computed arrival
//!   schedule regardless of completion — measures behaviour (shedding,
//!   latency tails) at a fixed offered rate.
//!
//! Which waveform each request carries is fully determined by the spec's
//! seed: a fraction of requests (`duplicate_frac`) replay an earlier
//! waveform to exercise the transcription cache, the rest walk the
//! corpus in order. Timing-derived metrics (latency, wall time) vary run
//! to run, but the request sequence and — in closed loop — every verdict
//! are reproducible.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_audio::Waveform;

use crate::engine::{DetectionEngine, PendingVerdict, SubmitError, Verdict, VerdictKind};
use crate::stats::StatsSnapshot;

/// The load discipline for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `concurrency` submitters, each one request in flight.
    Closed {
        /// Number of submitter threads.
        concurrency: usize,
    },
    /// Seeded Poisson arrivals at `rate_hz`, `waiters` threads draining
    /// verdicts.
    Open {
        /// Offered request rate (arrivals per second).
        rate_hz: f64,
        /// Verdict-draining thread count.
        waiters: usize,
    },
}

/// One load level to run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Level name, used in reports.
    pub name: String,
    /// Total requests to offer.
    pub requests: usize,
    /// Closed or open loop.
    pub mode: LoadMode,
    /// Fraction of requests replaying an earlier waveform (cache food).
    pub duplicate_frac: f64,
    /// Seed for the request sequence and arrival schedule.
    pub seed: u64,
}

/// Client-side verdict tally for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictTally {
    /// Full verdicts computed by the recognisers.
    pub full: u64,
    /// Full verdicts answered from the transcription cache.
    pub cached: u64,
    /// Degraded verdicts (any fallback tier).
    pub degraded: u64,
    /// Failed requests (target deadline missed).
    pub failed: u64,
    /// Verdicts that flagged the audio adversarial.
    pub flagged_adversarial: u64,
}

impl VerdictTally {
    fn absorb(&mut self, verdict: &Verdict) {
        match verdict.kind {
            VerdictKind::Full if verdict.from_cache => self.cached += 1,
            VerdictKind::Full => self.full += 1,
            VerdictKind::Degraded(_) => self.degraded += 1,
            VerdictKind::Failed => self.failed += 1,
        }
        if verdict.is_adversarial == Some(true) {
            self.flagged_adversarial += 1;
        }
    }

    fn merge(&mut self, other: VerdictTally) {
        self.full += other.full;
        self.cached += other.cached;
        self.degraded += other.degraded;
        self.failed += other.failed;
        self.flagged_adversarial += other.flagged_adversarial;
    }

    /// Total verdicts received.
    pub fn total(&self) -> u64 {
        self.full + self.cached + self.degraded + self.failed
    }
}

/// The outcome of one load level.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The spec's name.
    pub name: String,
    /// Requests offered.
    pub offered: usize,
    /// Requests shed at ingress.
    pub shed: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Client-side verdict tally.
    pub tally: VerdictTally,
    /// Engine metrics snapshot at the end of the run.
    pub stats: StatsSnapshot,
}

impl LoadReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{:?},\"offered\":{},\"shed\":{},\"wall_secs\":{:.3},",
                "\"throughput_rps\":{:.2},\"verdicts\":{{\"full\":{},\"cached\":{},",
                "\"degraded\":{},\"failed\":{},\"flagged_adversarial\":{}}},",
                "\"stats\":{}}}"
            ),
            self.name,
            self.offered,
            self.shed,
            self.wall.as_secs_f64(),
            self.throughput_rps,
            self.tally.full,
            self.tally.cached,
            self.tally.degraded,
            self.tally.failed,
            self.tally.flagged_adversarial,
            self.stats.to_json(),
        )
    }
}

/// The seeded corpus index for each of the `requests` submissions.
fn request_schedule(spec: &LoadSpec, corpus_len: usize) -> Vec<usize> {
    assert!(corpus_len > 0, "empty load corpus");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut schedule = Vec::with_capacity(spec.requests);
    let mut fresh = 0usize;
    for k in 0..spec.requests {
        if k > 0 && rng.gen_bool(spec.duplicate_frac.clamp(0.0, 1.0)) {
            let replay = rng.gen_range(0..k);
            schedule.push(schedule[replay]);
        } else {
            schedule.push(fresh % corpus_len);
            fresh += 1;
        }
    }
    schedule
}

/// Runs one load level and reports. The engine should be freshly started
/// so the embedded stats snapshot covers exactly this run.
pub fn run_load(engine: &DetectionEngine, corpus: &[Arc<Waveform>], spec: &LoadSpec) -> LoadReport {
    let schedule = request_schedule(spec, corpus.len());
    let started = Instant::now();
    let (tally, shed) = match spec.mode {
        LoadMode::Closed { concurrency } => run_closed(engine, corpus, &schedule, concurrency),
        LoadMode::Open { rate_hz, waiters } => {
            run_open(engine, corpus, &schedule, spec.seed, rate_hz, waiters)
        }
    };
    let wall = started.elapsed();
    LoadReport {
        name: spec.name.clone(),
        offered: spec.requests,
        shed,
        wall,
        throughput_rps: tally.total() as f64 / wall.as_secs_f64().max(1e-9),
        tally,
        stats: engine.stats(),
    }
}

fn run_closed(
    engine: &DetectionEngine,
    corpus: &[Arc<Waveform>],
    schedule: &[usize],
    concurrency: usize,
) -> (VerdictTally, u64) {
    let concurrency = concurrency.max(1);
    let mut tally = VerdictTally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                scope.spawn(move || {
                    let mut local = VerdictTally::default();
                    // Striped assignment keeps the per-worker sequence
                    // deterministic regardless of thread interleaving.
                    for &corpus_idx in schedule.iter().skip(worker).step_by(concurrency) {
                        loop {
                            match engine.submit(Arc::clone(&corpus[corpus_idx])) {
                                Ok(pending) => {
                                    local.absorb(&pending.wait());
                                    break;
                                }
                                // Closed-loop back-off: with concurrency
                                // bounded, shedding only happens when the
                                // queue is tiny; retry until accepted.
                                Err(SubmitError::Overloaded) => {
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(SubmitError::Closed) => return local,
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            tally.merge(handle.join().expect("closed-loop worker panicked"));
        }
    });
    (tally, 0)
}

fn run_open(
    engine: &DetectionEngine,
    corpus: &[Arc<Waveform>],
    schedule: &[usize],
    seed: u64,
    rate_hz: f64,
    waiters: usize,
) -> (VerdictTally, u64) {
    assert!(rate_hz > 0.0, "open-loop rate must be positive");
    // Pre-computed Poisson arrival offsets, independent of the request
    // sequence RNG so changing one never perturbs the other.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut offsets = Vec::with_capacity(schedule.len());
    let mut t = 0.0f64;
    for _ in 0..schedule.len() {
        let u: f64 = rng.gen();
        // Exponential inter-arrival: -ln(1-u)/rate, tail-clamped so a
        // single unlucky draw cannot stall the schedule.
        t += (-(1.0 - u).max(1e-12).ln()).min(20.0) / rate_hz;
        offsets.push(t);
    }

    let (pending_tx, pending_rx) = channel::unbounded::<PendingVerdict>();
    let mut tally = VerdictTally::default();
    let mut shed = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..waiters.max(1))
            .map(|_| {
                let rx = pending_rx.clone();
                scope.spawn(move || {
                    let mut local = VerdictTally::default();
                    for pending in rx.iter() {
                        local.absorb(&pending.wait());
                    }
                    local
                })
            })
            .collect();
        drop(pending_rx);

        let start = Instant::now();
        for (&corpus_idx, &offset) in schedule.iter().zip(&offsets) {
            let due = start + Duration::from_secs_f64(offset);
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            match engine.submit(Arc::clone(&corpus[corpus_idx])) {
                Ok(pending) => {
                    let _ = pending_tx.send(pending);
                }
                Err(SubmitError::Overloaded) => shed += 1,
                Err(SubmitError::Closed) => break,
            }
        }
        drop(pending_tx);
        for handle in handles {
            tally.merge(handle.join().expect("open-loop waiter panicked"));
        }
    });
    (tally, shed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(requests: usize, dup: f64, seed: u64) -> LoadSpec {
        LoadSpec {
            name: "t".into(),
            requests,
            mode: LoadMode::Closed { concurrency: 1 },
            duplicate_frac: dup,
            seed,
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = request_schedule(&spec(64, 0.5, 42), 10);
        let b = request_schedule(&spec(64, 0.5, 42), 10);
        assert_eq!(a, b);
        let c = request_schedule(&spec(64, 0.5, 43), 10);
        assert_ne!(a, c);
    }

    #[test]
    fn schedule_without_duplicates_walks_corpus() {
        let s = request_schedule(&spec(7, 0.0, 1), 3);
        assert_eq!(s, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn duplicates_replay_earlier_indices() {
        let s = request_schedule(&spec(200, 0.9, 7), 1000);
        // With 90% duplication over a large corpus, far fewer than 200
        // distinct waveforms appear.
        let distinct: std::collections::HashSet<_> = s.iter().collect();
        assert!(distinct.len() < 80, "distinct {}", distinct.len());
    }
}
