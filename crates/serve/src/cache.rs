//! Content-addressed LRU transcription cache.
//!
//! Serving traffic is heavily duplicated — wake-word clips, replayed
//! probes, retries — so the engine keys each waveform by a hash of its
//! exact sample content and caches the *per-recogniser transcription
//! vector*. A hit skips every ASR entirely; only complete (non-degraded)
//! vectors are inserted, so a hit always equals what the recognisers
//! would produce.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use mvp_audio::Waveform;

/// A fixed-capacity least-recently-used map.
///
/// O(1) amortised get/insert via a `HashMap` into an intrusive
/// doubly-linked recency list over a slab of entries.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    /// Most recently used entry, or `NIL`.
    head: usize,
    /// Least recently used entry, or `NIL`.
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use an `Option<LruCache>` to model a
    /// disabled cache).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries (`<= capacity`).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.slab[idx].as_ref().map(|e| &e.value)
    }

    /// Looks up `key` *without* touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).and_then(|&idx| self.slab[idx].as_ref()).map(|e| &e.value)
    }

    /// Inserts (or replaces) `key`, marking it most recently used and
    /// evicting the least recently used entry if over capacity. Returns
    /// the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.occupied_mut(idx).value = value;
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            let entry = self.take_entry(lru);
            self.map.remove(&entry.key);
            self.free.push(lru);
            Some((entry.key, entry.value))
        } else {
            None
        };
        let entry = Entry { key: key.clone(), value, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(entry);
                slot
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Keys from most to least recently used (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            let entry = self.occupied(idx);
            out.push(entry.key.clone());
            idx = entry.next;
        }
        out
    }

    /// The entry in a slab slot that the map or recency list points at.
    /// The map, slab and links are mutated together behind the engine's
    /// single cache mutex, so a vacant slot here is an internal coherence
    /// bug — there is no degraded way to serve from a corrupt index.
    fn occupied(&self, idx: usize) -> &Entry<K, V> {
        // mvp-lint: allow(panic-path) -- slab/list coherence is a module-internal invariant, never request input; a vacant linked slot is unrecoverable corruption
        self.slab[idx].as_ref().expect("linked slot occupied")
    }

    /// Mutable counterpart of [`occupied`](Self::occupied).
    fn occupied_mut(&mut self, idx: usize) -> &mut Entry<K, V> {
        // mvp-lint: allow(panic-path) -- slab/list coherence is a module-internal invariant, never request input; a vacant linked slot is unrecoverable corruption
        self.slab[idx].as_mut().expect("linked slot occupied")
    }

    /// Removes and returns the entry of an occupied slot.
    fn take_entry(&mut self, idx: usize) -> Entry<K, V> {
        // mvp-lint: allow(panic-path) -- slab/list coherence is a module-internal invariant, never request input; a vacant linked slot is unrecoverable corruption
        self.slab[idx].take().expect("linked slot occupied")
    }

    fn links(&self, idx: usize) -> (usize, usize) {
        let entry = self.occupied(idx);
        (entry.prev, entry.next)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = self.links(idx);
        match prev {
            NIL => {
                if self.head == idx {
                    self.head = next;
                }
            }
            p => self.occupied_mut(p).next = next,
        }
        match next {
            NIL => {
                if self.tail == idx {
                    self.tail = prev;
                }
            }
            n => self.occupied_mut(n).prev = prev,
        }
        let entry = self.occupied_mut(idx);
        entry.prev = NIL;
        entry.next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        {
            let head = self.head;
            let entry = self.occupied_mut(idx);
            entry.prev = NIL;
            entry.next = head;
        }
        if self.head != NIL {
            self.occupied_mut(self.head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Hashes a waveform's exact content (sample bits and rate), FNV-1a.
///
/// Two waveforms collide only if they are bit-identical audio (or in the
/// astronomically unlikely 64-bit hash collision, which would serve a
/// stale transcription — acceptable for this engine's accuracy budget).
pub fn waveform_key(wave: &Waveform) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(u64::from(wave.sample_rate()));
    mix(wave.len() as u64);
    for &s in wave.samples() {
        mix(u64::from(s.to_bits()));
    }
    h
}

/// The transcription vectors the engine caches: one entry per
/// recogniser, target first.
pub type TranscriptVec = Arc<Vec<String>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c: LruCache<u64, String> = LruCache::new(4);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).map(String::as_str), Some("one"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1), Some(&10));
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn replacing_refreshes_recency_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.len(), 2);
        // 2 is now LRU.
        assert_eq!(c.insert(3, 30), Some((2, 20)));
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn recency_order_reported_mru_first() {
        let mut c: LruCache<u32, ()> = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&1);
        assert_eq!(c.keys_by_recency(), vec![1, 3, 2]);
    }

    #[test]
    fn capacity_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.peek(&1), Some(&10));
        // 1 is still LRU despite the peek.
        assert_eq!(c.insert(3, 30), Some((1, 10)));
    }

    #[test]
    fn waveform_key_is_content_addressed() {
        let a = Waveform::from_samples(vec![0.1, -0.2, 0.3], 16_000);
        let b = Waveform::from_samples(vec![0.1, -0.2, 0.3], 16_000);
        let c = Waveform::from_samples(vec![0.1, -0.2, 0.30001], 16_000);
        let d = Waveform::from_samples(vec![0.1, -0.2, 0.3], 8_000);
        assert_eq!(waveform_key(&a), waveform_key(&b));
        assert_ne!(waveform_key(&a), waveform_key(&c));
        assert_ne!(waveform_key(&a), waveform_key(&d));
    }
}
