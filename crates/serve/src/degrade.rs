//! Graceful degradation: classifying with a *partial* score vector.
//!
//! When an auxiliary ASR misses its deadline (or is administratively
//! disabled with a zero deadline), the engine still owes the caller a
//! verdict. The policy tries, in order:
//!
//! 1. a classifier trained on exactly the surviving auxiliary subset,
//! 2. a benign-fitted [`ThresholdDetector`] over the mean available score
//!    (the paper's §V-G unseen-attack detector, which needs no AE data),
//! 3. a fixed neutral verdict (not adversarial) as the last resort.
//!
//! Which tier answered is reported in the verdict so callers can weigh
//! degraded answers accordingly.

use std::collections::HashMap;

use mvp_ears::{fit_classifier, ThresholdDetector};
use mvp_ml::{Classifier, ClassifierKind, Dataset, Mat};

/// Which fallback tier produced a degraded verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackTier {
    /// A classifier trained on the exact surviving auxiliary subset.
    SubsetClassifier,
    /// Benign-threshold test on the mean of the available scores.
    MeanThreshold,
    /// A fused-capable engine fell back to the plain similarity
    /// classifier because a modality missed its per-request budget.
    /// Produced by the engine, not by [`DegradePolicy::classify`] (all
    /// auxiliaries answered; only modality evidence is missing).
    SimilarityOnly,
    /// No trained fallback applied; the neutral default verdict.
    Default,
}

impl FallbackTier {
    /// Stable lowercase name, used in audit records and bench output.
    pub fn name(self) -> &'static str {
        match self {
            FallbackTier::SubsetClassifier => "subset_classifier",
            FallbackTier::MeanThreshold => "mean_threshold",
            FallbackTier::SimilarityOnly => "similarity_only",
            FallbackTier::Default => "default",
        }
    }
}

/// Subset-classifier training is exhaustive (every non-empty proper
/// subset) up to this many auxiliaries; beyond it only leave-one-out
/// subsets are trained, since 2^n blows up and deadline misses rarely
/// drop more than one recogniser at a time.
const EXHAUSTIVE_SUBSET_LIMIT: usize = 6;

/// The degraded-mode decision policy for one detection system.
pub struct DegradePolicy {
    n_aux: usize,
    subsets: HashMap<u64, Box<dyn Classifier + Send + Sync>>,
    threshold: Option<ThresholdDetector>,
}

impl std::fmt::Debug for DegradePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegradePolicy")
            .field("n_aux", &self.n_aux)
            .field("subset_classifiers", &self.subsets.len())
            .field("has_threshold", &self.threshold.is_some())
            .finish()
    }
}

impl DegradePolicy {
    /// A policy with no trained fallbacks: every degraded request gets
    /// the [`FallbackTier::Default`] verdict.
    pub fn untrained(n_aux: usize) -> DegradePolicy {
        DegradePolicy { n_aux, subsets: HashMap::new(), threshold: None }
    }

    /// Trains the fallback ladder from full-dimension score vectors (the
    /// same data used to train the primary classifier).
    ///
    /// Subset classifiers are fitted by projecting the training vectors
    /// onto each auxiliary subset; the threshold detector is fitted on
    /// the mean benign score with the given FPR budget.
    ///
    /// # Panics
    ///
    /// Panics if either class is empty, any vector's dimension differs
    /// from `n_aux`, or `max_fpr` is outside `(0, 1)`.
    pub fn trained(
        n_aux: usize,
        benign_scores: &[Vec<f64>],
        ae_scores: &[Vec<f64>],
        kind: ClassifierKind,
        max_fpr: f64,
    ) -> DegradePolicy {
        assert!(n_aux > 0, "need at least one auxiliary");
        assert!(!benign_scores.is_empty() && !ae_scores.is_empty(), "empty training class");
        assert!(
            benign_scores.iter().chain(ae_scores).all(|v| v.len() == n_aux),
            "score vectors must have one entry per auxiliary ({n_aux})"
        );

        let mut subsets = HashMap::new();
        for mask in Self::fallback_masks(n_aux) {
            let kept: Vec<usize> = (0..n_aux).filter(|i| mask & (1 << i) != 0).collect();
            let project = |vectors: &[Vec<f64>]| -> Mat {
                let mut m = Mat::zeros(vectors.len(), kept.len());
                for (r, v) in vectors.iter().enumerate() {
                    for (c, &i) in kept.iter().enumerate() {
                        m.row_mut(r)[c] = v[i];
                    }
                }
                m
            };
            let data = Dataset::from_classes(project(benign_scores), project(ae_scores));
            subsets.insert(mask, fit_classifier(kind, &data));
        }

        let benign_means: Vec<f64> =
            benign_scores.iter().map(|v| v.iter().sum::<f64>() / v.len() as f64).collect();
        let threshold = ThresholdDetector::fit_benign(&benign_means, max_fpr);

        DegradePolicy { n_aux, subsets, threshold: Some(threshold) }
    }

    /// The auxiliary count this policy was built for.
    pub fn n_aux(&self) -> usize {
        self.n_aux
    }

    /// Number of subset classifiers held.
    pub fn n_subset_classifiers(&self) -> usize {
        self.subsets.len()
    }

    /// The benign-fitted mean-score threshold, when trained. Audit
    /// records carry it so [`FallbackTier::MeanThreshold`] verdicts are
    /// reconstructible offline.
    pub fn mean_threshold(&self) -> Option<f64> {
        self.threshold.as_ref().map(ThresholdDetector::threshold)
    }

    /// Classifies from the surviving auxiliaries: `available` pairs each
    /// auxiliary index (0-based) with its similarity score. Returns the
    /// verdict and the tier that produced it.
    ///
    /// An empty `available` slice (every auxiliary missed) always falls
    /// through to [`FallbackTier::Default`].
    pub fn classify(&self, available: &[(usize, f64)]) -> (bool, FallbackTier) {
        if !available.is_empty() {
            let mask = available.iter().fold(0u64, |m, &(i, _)| m | (1 << i));
            if let Some(clf) = self.subsets.get(&mask) {
                // Feature order must match training order: ascending index.
                let mut sorted: Vec<(usize, f64)> = available.to_vec();
                sorted.sort_by_key(|&(i, _)| i);
                let features: Vec<f64> = sorted.iter().map(|&(_, s)| s).collect();
                return (clf.predict(&features) == 1, FallbackTier::SubsetClassifier);
            }
            if let Some(thr) = &self.threshold {
                let mean = available.iter().map(|&(_, s)| s).sum::<f64>() / available.len() as f64;
                return (thr.is_adversarial(mean), FallbackTier::MeanThreshold);
            }
        }
        (false, FallbackTier::Default)
    }

    /// The auxiliary-subset masks to train: every non-empty proper subset
    /// for small systems, leave-one-out subsets otherwise.
    fn fallback_masks(n_aux: usize) -> Vec<u64> {
        let full: u64 = (1 << n_aux) - 1;
        if n_aux <= EXHAUSTIVE_SUBSET_LIMIT {
            (1..full).collect()
        } else {
            (0..n_aux).map(|drop| full & !(1 << drop)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Well-separated synthetic scores: benign similarities high,
    /// adversarial low — matching the paper's score geometry.
    fn training_scores(n_aux: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let benign: Vec<Vec<f64>> = (0..20)
            .map(|i| (0..n_aux).map(|j| 0.85 + 0.01 * ((i + j) % 10) as f64).collect())
            .collect();
        let aes: Vec<Vec<f64>> = (0..20)
            .map(|i| (0..n_aux).map(|j| 0.05 + 0.01 * ((i * 3 + j) % 10) as f64).collect())
            .collect();
        (benign, aes)
    }

    #[test]
    fn subset_classifier_separates_trained_geometry() {
        let (benign, aes) = training_scores(3);
        let policy = DegradePolicy::trained(3, &benign, &aes, ClassifierKind::Knn, 0.05);
        // All non-empty proper subsets of 3 auxiliaries: 2^3 - 2 = 6.
        assert_eq!(policy.n_subset_classifiers(), 6);
        // Aux 1 missing: subset {0, 2}.
        let (benign_verdict, tier) = policy.classify(&[(0, 0.9), (2, 0.88)]);
        assert_eq!(tier, FallbackTier::SubsetClassifier);
        assert!(!benign_verdict);
        let (ae_verdict, _) = policy.classify(&[(0, 0.07), (2, 0.1)]);
        assert!(ae_verdict);
    }

    #[test]
    fn unknown_mask_falls_back_to_threshold() {
        let (benign, aes) = training_scores(8);
        let policy = DegradePolicy::trained(8, &benign, &aes, ClassifierKind::Knn, 0.05);
        // Only leave-one-out masks trained for 8 auxiliaries.
        assert_eq!(policy.n_subset_classifiers(), 8);
        // Two auxiliaries missing: no subset classifier for that mask.
        let available: Vec<(usize, f64)> = (0..6).map(|i| (i, 0.9)).collect();
        let (verdict, tier) = policy.classify(&available);
        assert_eq!(tier, FallbackTier::MeanThreshold);
        assert!(!verdict);
        let low: Vec<(usize, f64)> = (0..6).map(|i| (i, 0.02)).collect();
        let (verdict, tier) = policy.classify(&low);
        assert_eq!(tier, FallbackTier::MeanThreshold);
        assert!(verdict);
    }

    #[test]
    fn untrained_policy_defaults_benign() {
        let policy = DegradePolicy::untrained(3);
        let (verdict, tier) = policy.classify(&[(0, 0.01)]);
        assert_eq!(tier, FallbackTier::Default);
        assert!(!verdict);
    }

    #[test]
    fn empty_availability_defaults() {
        let (benign, aes) = training_scores(2);
        let policy = DegradePolicy::trained(2, &benign, &aes, ClassifierKind::Knn, 0.05);
        let (verdict, tier) = policy.classify(&[]);
        assert_eq!(tier, FallbackTier::Default);
        assert!(!verdict);
    }

    #[test]
    fn classify_is_order_insensitive() {
        let (benign, aes) = training_scores(3);
        let policy = DegradePolicy::trained(3, &benign, &aes, ClassifierKind::Knn, 0.05);
        let a = policy.classify(&[(0, 0.9), (2, 0.1)]);
        let b = policy.classify(&[(2, 0.1), (0, 0.9)]);
        assert_eq!(a, b);
    }
}
