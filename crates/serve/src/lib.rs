//! mvp-serve: a high-throughput serving engine for MVP-EARS detection.
//!
//! [`DetectionSystem::detect`](mvp_ears::DetectionSystem::detect) is a
//! one-shot API: every call spawns a thread per recogniser and extracts
//! features from scratch. This crate wraps a trained system in a
//! long-lived [`DetectionEngine`] built for sustained traffic:
//!
//! - a **bounded ingress queue** — overload sheds requests at the door
//!   ([`SubmitError::Overloaded`]) instead of collapsing latency;
//! - **persistent workers**, one pinned to each recogniser, fed whole
//!   micro-batches over channels (no per-call thread spawn);
//! - **micro-batching** — requests are grouped until `max_batch` or
//!   `max_delay_ms`, amortising per-call overhead and deduplicating
//!   identical waveforms within a batch;
//! - a **content-addressed LRU cache** of transcription vectors — an
//!   exact waveform replay skips every ASR;
//! - **per-request deadlines with graceful degradation** — an auxiliary
//!   that misses its deadline is dropped from the score vector and a
//!   [`DegradePolicy`] fallback ladder still answers;
//! - [`ServeStats`] — throughput counters, queue-depth gauge, latency
//!   percentiles and cache hit rate, snapshot at any time, all backed by
//!   an `mvp_obs` metrics registry with Prometheus-style exposition
//!   ([`DetectionEngine::metrics_text`]);
//! - **observability** — `serve.*` spans on every stage (enable with
//!   `mvp_obs::trace::enable`) and an optional JSONL verdict audit log
//!   ([`EngineConfig::audit`]) from which each decision can be
//!   reconstructed offline.
//!
//! - **chunked ingress** — [`DetectionEngine::submit_stream`] feeds the
//!   same workers one chunk at a time through a [`StreamHandle`]; with an
//!   [`EngineConfig::early_exit`] rule the collector can answer
//!   `Adversarial` before end-of-stream, and with it off the chunked
//!   verdict is byte-identical to the one-shot one;
//! - a **shard router** — [`ShardRouter`] runs N engines behind a
//!   content-hash router (cache affinity per shard) with work-stealing
//!   when a shard's queue backs up, per-shard metrics, and steal
//!   counters.
//!
//! The [`loadgen`] module drives an engine or router (anything
//! implementing [`LoadTarget`]) with deterministic closed-loop,
//! open-loop, or streaming load for benchmarking.
//!
//! ```no_run
//! use std::sync::Arc;
//! use mvp_serve::{DegradePolicy, DetectionEngine, EngineConfig};
//! # fn trained_system() -> mvp_ears::DetectionSystem { unimplemented!() }
//! # fn some_waveform() -> mvp_audio::Waveform { unimplemented!() }
//!
//! let system = Arc::new(trained_system());
//! let policy = DegradePolicy::untrained(system.n_auxiliaries());
//! let engine = DetectionEngine::start(system, policy, EngineConfig::default());
//! let verdict = engine.submit(some_waveform()).unwrap().wait();
//! println!("adversarial: {:?}", verdict.is_adversarial);
//! ```

pub mod cache;
pub mod degrade;
pub mod engine;
pub mod loadgen;
pub mod router;
pub mod stats;

pub use cache::{waveform_key, LruCache, TranscriptVec};
pub use degrade::{DegradePolicy, FallbackTier};
pub use engine::{
    DetectionEngine, EngineConfig, ModalityReport, PendingVerdict, StreamHandle, SubmitError,
    Verdict, VerdictKind,
};
pub use loadgen::{run_load, LoadMode, LoadReport, LoadSpec, LoadTarget, VerdictTally};
pub use router::{RouterConfig, ShardRouter};
pub use stats::{LatencyHistogram, ServeStats, StatsSnapshot};
