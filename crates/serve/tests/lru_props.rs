//! Property tests for the serving-layer LRU transcription cache:
//! capacity discipline, exact agreement with a naive reference model,
//! and hit fidelity against the real recognisers.

use proptest::collection::vec;
use proptest::prelude::*;

use mvp_asr::{Asr, AsrProfile};
use mvp_audio::Waveform;
use mvp_serve::{waveform_key, LruCache};

/// The reference model: recency-ordered `Vec` (front = most recent),
/// trivially correct and O(n) per op.
struct NaiveLru {
    entries: Vec<(u8, u32)>,
    capacity: usize,
}

impl NaiveLru {
    fn new(capacity: usize) -> NaiveLru {
        NaiveLru { entries: Vec::new(), capacity }
    }

    fn get(&mut self, key: u8) -> Option<u32> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(entry.1)
    }

    fn insert(&mut self, key: u8, value: u32) -> Option<(u8, u32)> {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
            self.entries.insert(0, (key, value));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity { self.entries.pop() } else { None };
        self.entries.insert(0, (key, value));
        evicted
    }

    fn keys(&self) -> Vec<u8> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }
}

/// One random cache operation: `(key, value, is_insert)`.
fn apply(cache: &mut LruCache<u8, u32>, model: &mut NaiveLru, op: &(u8, u32, bool)) {
    let &(key, value, is_insert) = op;
    if is_insert {
        assert_eq!(cache.insert(key, value), model.insert(key, value));
    } else {
        assert_eq!(cache.get(&key).copied(), model.get(key));
    }
}

proptest! {
    #[test]
    fn capacity_is_never_exceeded(
        capacity in 1usize..9,
        ops in vec((0u8..32, 0u32..1000, 0u8..2), 0..200),
    ) {
        let mut cache: LruCache<u8, u32> = LruCache::new(capacity);
        for (key, value, kind) in ops {
            if kind == 1 {
                cache.insert(key, value);
            } else {
                cache.get(&key);
            }
            prop_assert!(cache.len() <= capacity);
        }
    }

    #[test]
    fn agrees_with_naive_model(
        capacity in 1usize..9,
        raw_ops in vec((0u8..16, 0u32..1000, 0u8..2), 0..300),
    ) {
        let mut cache: LruCache<u8, u32> = LruCache::new(capacity);
        let mut model = NaiveLru::new(capacity);
        for (key, value, kind) in &raw_ops {
            apply(&mut cache, &mut model, &(*key, *value, *kind == 1));
            prop_assert_eq!(cache.keys_by_recency(), model.keys());
            prop_assert_eq!(cache.len(), model.entries.len());
        }
    }

    #[test]
    fn eviction_is_strictly_lru(
        capacity in 1usize..6,
        keys in vec(0u8..64, 1..64),
    ) {
        // Insert distinct-by-position keys; whenever an eviction happens it
        // must be exactly the key least recently inserted-or-touched.
        let mut cache: LruCache<u8, u32> = LruCache::new(capacity);
        let mut model = NaiveLru::new(capacity);
        for (i, key) in keys.iter().enumerate() {
            let expected = model.insert(*key, i as u32);
            let evicted = cache.insert(*key, i as u32);
            prop_assert_eq!(evicted, expected);
        }
    }
}

/// Hit fidelity: a cached transcription vector equals what the
/// recognisers would produce for that exact waveform. Uses genuinely
/// random audio (not speech) — the property must hold for arbitrary
/// sample content.
proptest! {
    #[test]
    fn hit_returns_what_the_asr_would_produce(
        samples in vec(-0.5f32..0.5, 160..800),
    ) {
        let wave = Waveform::from_samples(samples, 16_000);
        let asrs = [AsrProfile::Ds0.trained(), AsrProfile::Ds1.trained()];
        let mut cache: LruCache<u64, Vec<String>> = LruCache::new(8);

        // Engine-style fill: transcribe once, cache under the content key.
        let texts: Vec<String> = asrs.iter().map(|a| a.transcribe(&wave)).collect();
        cache.insert(waveform_key(&wave), texts);

        // A replayed waveform (fresh allocation, same content) must hit
        // and return exactly a fresh transcription.
        let replay = Waveform::from_samples(wave.samples().to_vec(), wave.sample_rate());
        let hit = cache.get(&waveform_key(&replay)).cloned();
        let fresh: Vec<String> = asrs.iter().map(|a| a.transcribe(&replay)).collect();
        prop_assert_eq!(hit, Some(fresh));
    }
}
