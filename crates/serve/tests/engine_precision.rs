//! End-to-end tests for the engine's per-auxiliary precision mix
//! (`EngineConfig::aux_int8`): a marked auxiliary's worker runs the
//! profile's int8 quantized variant, and the verdict matches in-process
//! detection with that variant as an ensemble member.

use std::sync::Arc;

use mvp_asr::{AsrProfile, PrecisionVariant};
use mvp_audio::synth::{SpeakerProfile, Synthesizer};
use mvp_ears::DetectionSystem;
use mvp_ml::ClassifierKind;
use mvp_phonetics::Lexicon;
use mvp_serve::{DegradePolicy, DetectionEngine, EngineConfig, VerdictKind};

fn train(system: &mut DetectionSystem) {
    let benign: Vec<Vec<f64>> = (0..30).map(|i| vec![0.85 + (i % 10) as f64 * 0.01]).collect();
    let aes: Vec<Vec<f64>> = (0..30).map(|i| vec![0.2 + (i % 10) as f64 * 0.01]).collect();
    system.train_on_scores(&benign, &aes, ClassifierKind::Svm);
}

fn speech() -> mvp_audio::Waveform {
    let synth = Synthesizer::new(16_000);
    synth.synthesize(&Lexicon::builtin(), "turn on the light", &SpeakerProfile::default()).0
}

#[test]
fn aux_int8_swaps_the_worker_to_the_quantized_variant() {
    // Reference: in-process detection with DS1@int8 as the auxiliary.
    let mut reference = DetectionSystem::builder(AsrProfile::Ds0)
        .auxiliary_variant(PrecisionVariant::int8(AsrProfile::Ds1))
        .build();
    train(&mut reference);
    let wave = speech();
    let expected = reference.detect(&wave);

    // Engine: the *full-precision* system, with the mix requesting int8
    // for auxiliary 0. Quantization is deterministic, so the served
    // verdict must match the in-process one bit for bit.
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    train(&mut system);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig { aux_int8: vec![true], cache_cap: 0, ..EngineConfig::default() };
    let engine = DetectionEngine::start(Arc::new(system), policy, config);
    let verdict = engine.detect_blocking(wave).unwrap();
    engine.shutdown();

    assert_eq!(verdict.kind, VerdictKind::Full);
    assert_eq!(verdict.is_adversarial, Some(expected.is_adversarial));
    let scores: Vec<Option<f64>> = expected.scores.iter().map(|&s| Some(s)).collect();
    assert_eq!(verdict.scores, scores);
    assert_eq!(
        verdict.target_transcription.as_deref(),
        Some(expected.target_transcription.as_str())
    );
}

#[test]
fn empty_precision_mix_serves_full_precision() {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    train(&mut system);
    let wave = speech();
    let expected = system.detect(&wave);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let engine = DetectionEngine::start(
        Arc::new(system),
        policy,
        EngineConfig { cache_cap: 0, ..EngineConfig::default() },
    );
    let verdict = engine.detect_blocking(wave).unwrap();
    engine.shutdown();
    let scores: Vec<Option<f64>> = expected.scores.iter().map(|&s| Some(s)).collect();
    assert_eq!(verdict.scores, scores);
}

#[test]
#[should_panic(expected = "aux_int8")]
fn oversized_precision_mix_is_rejected() {
    let mut system = DetectionSystem::builder(AsrProfile::Ds0).auxiliary(AsrProfile::Ds1).build();
    train(&mut system);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig { aux_int8: vec![true, true], ..EngineConfig::default() };
    let _ = DetectionEngine::start(Arc::new(system), policy, config);
}
