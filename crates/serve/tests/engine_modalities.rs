//! End-to-end engine tests for the per-request modality plan: fused
//! verdicts when every modality scores, `SimilarityOnly` degradation on
//! budget misses, and evidence-only reports on partial mixes.

use std::sync::Arc;

use mvp_audio::synth::{SpeakerProfile, Synthesizer};
use mvp_ears::DetectionSystem;
use mvp_ml::{ClassifierKind, Mat};
use mvp_modality::ModalityKind;
use mvp_phonetics::Lexicon;
use mvp_serve::{DegradePolicy, DetectionEngine, EngineConfig, FallbackTier, VerdictKind};

/// A system with every modality registered, a trained similarity
/// classifier, and a fused classifier fitted on well-separated
/// synthetic raw rows (high = benign, matching feature orientation).
fn fused_system(kinds: &[ModalityKind]) -> Arc<DetectionSystem> {
    let mut system = DetectionSystem::builder(mvp_asr::AsrProfile::Ds0)
        .auxiliary(mvp_asr::AsrProfile::Ds1)
        .modality_kinds(kinds)
        .build();
    let benign: Vec<Vec<f64>> = (0..30).map(|i| vec![0.85 + (i % 10) as f64 * 0.01]).collect();
    let aes: Vec<Vec<f64>> = (0..30).map(|i| vec![0.2 + (i % 10) as f64 * 0.01]).collect();
    system.train_on_scores(&benign, &aes, ClassifierKind::Svm);
    let dim = system.fusion_layout().unwrap().raw_dim();
    let rows = |base: f64| {
        Mat::from_rows((0..24).map(|i| vec![base + (i % 6) as f64 * 0.01; dim]).collect(), dim)
    };
    system.train_fused_on_mats(rows(0.85), rows(0.15), ClassifierKind::Svm);
    Arc::new(system)
}

fn speech() -> mvp_audio::Waveform {
    let synth = Synthesizer::new(16_000);
    let (wave, _) =
        synth.synthesize(&Lexicon::builtin(), "open the door", &SpeakerProfile::default());
    wave
}

#[test]
fn full_modality_mix_produces_fused_verdicts() {
    let system = fused_system(&ModalityKind::ALL);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        modalities: ModalityKind::ALL.to_vec(),
        cache_cap: 8,
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let verdict = engine.submit(speech()).unwrap().wait();
    assert_eq!(verdict.kind, VerdictKind::Full);
    assert!(verdict.fused, "all modalities scored on a fused-capable engine");
    assert!(verdict.is_adversarial.is_some());
    assert_eq!(verdict.modalities.len(), ModalityKind::ALL.len());
    for (report, kind) in verdict.modalities.iter().zip(ModalityKind::ALL) {
        assert_eq!(report.kind, kind);
        assert!(report.scored);
        assert_eq!(report.features.len(), kind.feature_dim());
        assert!(report.features.iter().all(|f| f.is_finite()));
    }

    // A cache-hit replay also resolves through the modality plan.
    let replay = engine.submit(speech()).unwrap().wait();
    assert!(replay.from_cache);
    assert!(replay.fused);
    assert_eq!(replay.modalities.len(), ModalityKind::ALL.len());

    let snap = engine.stats();
    assert_eq!(snap.fused_verdicts, 2);
    assert_eq!(snap.modality_scored, 2 * ModalityKind::ALL.len() as u64);
    assert_eq!(snap.modality_budget_missed, 0);
    engine.shutdown();
}

#[test]
fn zero_budget_modality_degrades_to_similarity_only() {
    let system = fused_system(&ModalityKind::ALL);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        modalities: ModalityKind::ALL.to_vec(),
        // Instability never fits a zero budget: fused requests degrade.
        modality_budget_ms: vec![None, None, Some(0)],
        cache_cap: 0,
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let verdict = engine.submit(speech()).unwrap().wait();
    assert_eq!(verdict.kind, VerdictKind::Degraded(FallbackTier::SimilarityOnly));
    assert!(!verdict.fused);
    assert_eq!(verdict.modalities.len(), 3);
    assert!(verdict.modalities[0].scored && verdict.modalities[1].scored);
    assert!(!verdict.modalities[2].scored);
    assert!(verdict.modalities[2].features.is_empty());
    // The similarity classifier still answered.
    assert!(verdict.is_adversarial.is_some());

    let snap = engine.stats();
    assert_eq!(snap.fused_verdicts, 0);
    assert_eq!(snap.modality_budget_missed, 1);
    assert_eq!(snap.degraded, 1);
    engine.shutdown();
}

#[test]
fn partial_mix_reports_evidence_without_fusing() {
    // The system's registry (and fused layout) covers all three kinds,
    // but the engine only scores one: evidence rides the verdict, the
    // fused classifier stays out of the loop.
    let system = fused_system(&ModalityKind::ALL);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config = EngineConfig {
        modalities: vec![ModalityKind::Transform],
        cache_cap: 0,
        ..EngineConfig::default()
    };
    let engine = DetectionEngine::start(Arc::clone(&system), policy, config);

    let verdict = engine.submit(speech()).unwrap().wait();
    assert_eq!(verdict.kind, VerdictKind::Full);
    assert!(!verdict.fused, "partial mix cannot feed the fused layout");
    assert_eq!(verdict.modalities.len(), 1);
    assert_eq!(verdict.modalities[0].kind, ModalityKind::Transform);
    assert!(verdict.modalities[0].scored);
    engine.shutdown();
}

#[test]
fn similarity_only_engine_is_unchanged() {
    let system = fused_system(&ModalityKind::ALL);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let engine = DetectionEngine::start(Arc::clone(&system), policy, EngineConfig::default());
    let verdict = engine.submit(speech()).unwrap().wait();
    assert_eq!(verdict.kind, VerdictKind::Full);
    assert!(!verdict.fused);
    assert!(verdict.modalities.is_empty());
    assert_eq!(engine.stats().modality_scored, 0);
    engine.shutdown();
}

#[test]
#[should_panic(expected = "not registered")]
fn unregistered_modality_in_config_is_rejected() {
    let mut system = DetectionSystem::builder(mvp_asr::AsrProfile::Ds0)
        .auxiliary(mvp_asr::AsrProfile::Ds1)
        .build();
    let benign: Vec<Vec<f64>> = (0..20).map(|_| vec![0.9]).collect();
    let aes: Vec<Vec<f64>> = (0..20).map(|_| vec![0.1]).collect();
    system.train_on_scores(&benign, &aes, ClassifierKind::Svm);
    let policy = DegradePolicy::untrained(system.n_auxiliaries());
    let config =
        EngineConfig { modalities: vec![ModalityKind::Transform], ..EngineConfig::default() };
    let _ = DetectionEngine::start(Arc::new(system), policy, config);
}
