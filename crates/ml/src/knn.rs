//! K-nearest-neighbours classifier (Euclidean distance, majority vote).

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
use mvp_dsp::Mat;

use crate::dataset::Dataset;
use crate::Classifier;

/// KNN with `k` voting neighbours (the paper uses `k = 10`).
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    x: Mat,
    y: Vec<usize>,
}

impl Knn {
    /// An untrained KNN classifier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Knn {
        assert!(k > 0, "k must be positive");
        Knn { k, x: Mat::default(), y: Vec::new() }
    }
}

impl Persist for Knn {
    const KIND: ArtifactKind = ArtifactKind::KNN;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.k);
        enc.put_mat(&self.x);
        enc.put_usizes(&self.y);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let k = dec.usize()?;
        let x = dec.mat()?;
        let y = dec.usizes()?;
        if k == 0 || y.len() != x.n_rows() || y.iter().any(|&l| l > 1) {
            return Err(ArtifactError::SchemaMismatch(format!(
                "KNN with k {k}, {} rows, {} labels",
                x.n_rows(),
                y.len()
            )));
        }
        Ok(Knn { k, x, y })
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        self.x = data.features().clone();
        self.y = data.labels().to_vec();
    }

    fn predict(&self, x: &[f64]) -> usize {
        assert!(!self.x.is_empty(), "KNN not fitted");
        assert_eq!(x.len(), self.x.n_cols(), "dimension mismatch");
        let mut dists: Vec<(f64, usize)> =
            self.x.rows().zip(&self.y).map(|(xi, &yi)| (dist_sq(xi, x), yi)).collect();
        let k = self.k.min(dists.len());
        // total_cmp: a NaN distance (degenerate feature) sorts last and
        // never panics, so one bad dimension cannot abort a serve worker.
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let votes: usize = dists[..k].iter().map(|&(_, y)| y).sum();
        usize::from(votes * 2 > k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> Dataset {
        Dataset::from_classes(
            Mat::from_rows((0..20).map(|i| vec![(i % 5) as f64 * 0.1, 0.0]).collect(), 2),
            Mat::from_rows((0..20).map(|i| vec![5.0 + (i % 5) as f64 * 0.1, 5.0]).collect(), 2),
        )
    }

    #[test]
    fn classifies_clusters() {
        let mut knn = Knn::new(10);
        knn.fit(&clusters());
        assert_eq!(knn.predict(&[0.2, 0.1]), 0);
        assert_eq!(knn.predict(&[5.1, 4.9]), 1);
    }

    #[test]
    fn k_larger_than_data_still_works() {
        let mut knn = Knn::new(100);
        knn.fit(&clusters());
        // Falls back to voting over everything: balanced classes, ties -> 0.
        let p = knn.predict(&[2.5, 2.5]);
        assert!(p <= 1);
    }

    #[test]
    fn majority_vote_beats_single_outlier() {
        // One positive outlier near the negative cluster must be outvoted.
        let mut x: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 * 0.01]).collect();
        let mut y = vec![0; 9];
        x.push(vec![0.0]);
        y.push(1);
        let mut knn = Knn::new(5);
        knn.fit(&Dataset::from_rows(x, y));
        assert_eq!(knn.predict(&[0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        Knn::new(3).predict(&[0.0]);
    }

    #[test]
    fn nan_query_votes_over_finite_neighbours() {
        // A NaN coordinate makes every distance NaN-free rows' distances
        // finite and NaN rows sort last under total_cmp — the vote
        // proceeds instead of panicking.
        let mut knn = Knn::new(10);
        knn.fit(&clusters());
        let p = knn.predict(&[f64::NAN, 0.0]);
        assert!(p <= 1);
    }
}
