//! L2-regularised logistic regression.
//!
//! Carlini et al.'s hidden-voice-command defense (the paper's ref. [60])
//! uses a logistic-regression classifier; it is provided here both for that
//! comparison and as a calibrated-probability alternative to the SVM.

use crate::dataset::Dataset;
use crate::Classifier;
use mvp_dsp::kernel;

/// Binary logistic regression trained with batch gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    learning_rate: f64,
    l2: f64,
    epochs: usize,
    trained: bool,
}

impl LogisticRegression {
    /// An untrained model with sensible defaults (lr 0.5, l2 1e-4,
    /// 300 epochs — the feature spaces here are tiny).
    pub fn new() -> LogisticRegression {
        LogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.5,
            l2: 1e-4,
            epochs: 300,
            trained: false,
        }
    }

    /// Probability that `x` is class 1.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or `x` has the wrong dimension.
    pub fn probability(&self, x: &[f64]) -> f64 {
        assert!(self.trained, "logistic regression not fitted");
        assert_eq!(x.len(), self.weights.len(), "dimension mismatch");
        let z = self.bias + kernel::dot(&self.weights, x);
        1.0 / (1.0 + (-z).exp())
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression::new()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        let n = data.len() as f64;
        let d = data.dim();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        for _ in 0..self.epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (x, &y) in data.features().rows().zip(data.labels()) {
                let z = self.bias + kernel::dot(&self.weights, x);
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y as f64;
                gb += err;
                kernel::axpy(&mut gw, err, x);
            }
            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= self.learning_rate * (g / n + self.l2 * *w);
            }
            self.bias -= self.learning_rate * gb / n;
        }
        self.trained = true;
    }

    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.probability(x) > 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_dsp::Mat;

    fn separable() -> Dataset {
        Dataset::from_classes(
            Mat::from_rows((0..30).map(|i| vec![0.85 + (i % 10) as f64 * 0.01]).collect(), 1),
            Mat::from_rows((0..30).map(|i| vec![0.2 + (i % 10) as f64 * 0.01]).collect(), 1),
        )
    }

    #[test]
    fn separates_score_clusters() {
        let mut lr = LogisticRegression::new();
        lr.fit(&separable());
        assert_eq!(lr.predict(&[0.9]), 0);
        assert_eq!(lr.predict(&[0.15]), 1);
    }

    #[test]
    fn probabilities_are_monotone_in_score() {
        let mut lr = LogisticRegression::new();
        lr.fit(&separable());
        // Lower similarity -> higher AE probability.
        assert!(lr.probability(&[0.1]) > lr.probability(&[0.5]));
        assert!(lr.probability(&[0.5]) > lr.probability(&[0.95]));
        let p = lr.probability(&[0.5]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn multidimensional_fit() {
        let data = Dataset::from_classes(
            Mat::from_rows((0..20).map(|i| vec![0.9, 0.9 - (i % 4) as f64 * 0.01]).collect(), 2),
            Mat::from_rows((0..20).map(|i| vec![0.3, 0.2 + (i % 4) as f64 * 0.01]).collect(), 2),
        );
        let mut lr = LogisticRegression::new();
        lr.fit(&data);
        assert_eq!(lr.predict(&[0.92, 0.88]), 0);
        assert_eq!(lr.predict(&[0.25, 0.3]), 1);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        LogisticRegression::new().probability(&[0.5]);
    }
}
