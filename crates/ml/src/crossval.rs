//! Stratified k-fold cross-validation (paper §V-E uses k = 5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::metrics::{mean_std, BinaryMetrics};
use crate::ClassifierKind;

/// Per-fold metrics plus mean/std summaries, as the paper's Tables IV–V
/// report them.
#[derive(Debug, Clone)]
pub struct CrossValSummary {
    /// Metrics of each fold.
    pub folds: Vec<BinaryMetrics>,
}

impl CrossValSummary {
    /// `(mean, std)` of fold accuracies.
    pub fn accuracy(&self) -> (f64, f64) {
        mean_std(&self.folds.iter().map(BinaryMetrics::accuracy).collect::<Vec<_>>())
    }

    /// `(mean, std)` of fold FPRs.
    pub fn fpr(&self) -> (f64, f64) {
        mean_std(&self.folds.iter().map(BinaryMetrics::fpr).collect::<Vec<_>>())
    }

    /// `(mean, std)` of fold FNRs.
    pub fn fnr(&self) -> (f64, f64) {
        mean_std(&self.folds.iter().map(BinaryMetrics::fnr).collect::<Vec<_>>())
    }
}

/// Stratified fold assignment: each class is distributed round-robin over
/// `k` folds after a seeded shuffle. Returns `(train, test)` index pairs.
///
/// # Panics
///
/// Panics if `k < 2` or `k > data.len()`.
pub fn stratified_k_folds(data: &Dataset, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= data.len(), "more folds than examples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; data.len()];
    for class in [0usize, 1] {
        let mut idx: Vec<usize> = (0..data.len()).filter(|&i| data.labels()[i] == class).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        for (pos, &i) in idx.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    (0..k)
        .map(|f| {
            let test: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] == f).collect();
            let train: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] != f).collect();
            (train, test)
        })
        .collect()
}

/// Runs k-fold cross-validation of `kind` on `data`.
///
/// # Panics
///
/// Panics if any training fold ends up single-class (pathologically small
/// datasets), or as in [`stratified_k_folds`].
pub fn cross_validate(
    kind: ClassifierKind,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> CrossValSummary {
    let folds = stratified_k_folds(data, k, seed)
        .into_iter()
        .map(|(train_idx, test_idx)| {
            let train = data.subset(&train_idx);
            let test = data.subset(&test_idx);
            let mut model = kind.build();
            model.fit(&train);
            let preds = model.predict_batch(test.features());
            BinaryMetrics::from_predictions(&preds, test.labels())
        })
        .collect();
    CrossValSummary { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_dsp::Mat;

    fn separable(n: usize) -> Dataset {
        Dataset::from_classes(
            Mat::from_rows((0..n).map(|i| vec![0.8 + (i % 7) as f64 * 0.02]).collect(), 1),
            Mat::from_rows((0..n).map(|i| vec![0.1 + (i % 7) as f64 * 0.02]).collect(), 1),
        )
    }

    #[test]
    fn folds_partition_and_stratify() {
        let d = separable(25);
        let folds = stratified_k_folds(&d, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; d.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            for &t in test {
                seen[t] += 1;
            }
            // Each test fold keeps the class balance (10 of each class).
            let pos = test.iter().filter(|&&i| d.labels()[i] == 1).count();
            assert_eq!(pos, test.len() - pos);
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn cross_validation_on_separable_data_is_perfect() {
        let d = separable(30);
        for kind in ClassifierKind::ALL {
            let s = cross_validate(kind, &d, 5, 1);
            let (acc, std) = s.accuracy();
            assert!(acc > 0.99, "{kind}: {acc}");
            assert!(std < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn too_many_folds_panics() {
        stratified_k_folds(&separable(2), 10, 0);
    }
}
