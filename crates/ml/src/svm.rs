//! Soft-margin SVM trained with simplified SMO (Platt, 1998).

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
use mvp_dsp::kernel;
use mvp_dsp::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::Classifier;

/// Kernel functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `⟨x, z⟩`.
    Linear,
    /// `(⟨x, z⟩ + coef0)^degree` — the paper uses degree 3.
    Polynomial {
        /// Polynomial degree.
        degree: u32,
        /// Additive constant inside the power.
        coef0: f64,
    },
    /// `exp(−γ ‖x − z‖²)`.
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => kernel::dot(a, b),
            Kernel::Polynomial { degree, coef0 } => (kernel::dot(a, b) + coef0).powi(degree as i32),
            Kernel::Rbf { gamma } => (-gamma * kernel::sq_dist(a, b)).exp(),
        }
    }
}

/// A binary SVM classifier.
#[derive(Debug, Clone)]
pub struct Svm {
    kernel: Kernel,
    c: f64,
    tol: f64,
    max_passes: usize,
    // Learned state.
    support_x: Mat,
    support_y: Vec<f64>, // ±1
    alpha: Vec<f64>,
    b: f64,
    trained: bool,
}

impl Svm {
    /// An untrained SVM with regularisation parameter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn new(kernel: Kernel, c: f64) -> Svm {
        assert!(c > 0.0, "C must be positive");
        Svm {
            kernel,
            c,
            tol: 1e-3,
            max_passes: 5,
            support_x: Mat::default(),
            support_y: Vec::new(),
            alpha: Vec::new(),
            b: 0.0,
            trained: false,
        }
    }

    /// Decision value `f(x)` (positive ⇒ class 1).
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert!(self.trained, "SVM not fitted");
        self.support_x
            .rows()
            .zip(&self.support_y)
            .zip(&self.alpha)
            .filter(|(_, &a)| a > 0.0)
            .map(|((sx, &sy), &a)| a * sy * self.kernel.eval(sx, x))
            .sum::<f64>()
            + self.b
    }
}

impl Persist for Svm {
    const KIND: ArtifactKind = ArtifactKind::SVM;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        match self.kernel {
            Kernel::Linear => enc.put_u8(0),
            Kernel::Polynomial { degree, coef0 } => {
                enc.put_u8(1);
                enc.put_u32(degree);
                enc.put_f64(coef0);
            }
            Kernel::Rbf { gamma } => {
                enc.put_u8(2);
                enc.put_f64(gamma);
            }
        }
        enc.put_f64(self.c);
        enc.put_f64(self.tol);
        enc.put_usize(self.max_passes);
        enc.put_bool(self.trained);
        enc.put_mat(&self.support_x);
        enc.put_f64s(&self.support_y);
        enc.put_f64s(&self.alpha);
        enc.put_f64(self.b);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let kernel = match dec.u8()? {
            0 => Kernel::Linear,
            1 => Kernel::Polynomial { degree: dec.u32()?, coef0: dec.f64()? },
            2 => Kernel::Rbf { gamma: dec.f64()? },
            other => return Err(ArtifactError::SchemaMismatch(format!("kernel tag {other}"))),
        };
        let c = dec.f64()?;
        if !(c > 0.0) {
            return Err(ArtifactError::SchemaMismatch(format!("SVM C = {c}")));
        }
        let tol = dec.f64()?;
        let max_passes = dec.usize()?;
        let trained = dec.bool()?;
        let support_x = dec.mat()?;
        let support_y = dec.f64s()?;
        let alpha = dec.f64s()?;
        let b = dec.f64()?;
        if support_y.len() != support_x.n_rows() || alpha.len() != support_x.n_rows() {
            return Err(ArtifactError::SchemaMismatch(format!(
                "{} support vectors with {} labels and {} multipliers",
                support_x.n_rows(),
                support_y.len(),
                alpha.len()
            )));
        }
        Ok(Svm { kernel, c, tol, max_passes, support_x, support_y, alpha, b, trained })
    }
}

impl Classifier for Svm {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        let n = data.len();
        let x = data.features();
        let y: Vec<f64> = data.labels().iter().map(|&l| if l == 1 { 1.0 } else { -1.0 }).collect();
        assert!(
            y.iter().any(|&v| v > 0.0) && y.iter().any(|&v| v < 0.0),
            "training set must contain both classes"
        );
        // Precompute the kernel matrix (feature dims here are tiny) in one
        // contiguous cache.
        let mut k = Mat::zeros(n, n);
        for i in 0..n {
            let row = k.row_mut(i);
            for j in 0..n {
                row[j] = self.kernel.eval(x.row(i), x.row(j));
            }
        }
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(12_345);
        let f = |alpha: &[f64], b: f64, i: usize, k: &Mat, y: &[f64]| -> f64 {
            let ki = k.row(i);
            (0..n).map(|j| alpha[j] * y[j] * ki[j]).sum::<f64>() + b
        };
        let mut passes = 0;
        while passes < self.max_passes {
            let mut changed = 0;
            for i in 0..n {
                let ei = f(&alpha, b, i, &k, &y) - y[i];
                if (y[i] * ei < -self.tol && alpha[i] < self.c)
                    || (y[i] * ei > self.tol && alpha[i] > 0.0)
                {
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let ej = f(&alpha, b, j, &k, &y) - y[j];
                    let (ai_old, aj_old) = (alpha[i], alpha[j]);
                    let (lo, hi) = if (y[i] - y[j]).abs() > 1e-12 {
                        ((aj_old - ai_old).max(0.0), (self.c + aj_old - ai_old).min(self.c))
                    } else {
                        ((ai_old + aj_old - self.c).max(0.0), (ai_old + aj_old).min(self.c))
                    };
                    if (hi - lo).abs() < 1e-12 {
                        continue;
                    }
                    let eta = 2.0 * k.row(i)[j] - k.row(i)[i] - k.row(j)[j];
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut aj = aj_old - y[j] * (ei - ej) / eta;
                    aj = aj.clamp(lo, hi);
                    if (aj - aj_old).abs() < 1e-6 {
                        continue;
                    }
                    let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                    alpha[i] = ai;
                    alpha[j] = aj;
                    let b1 = b
                        - ei
                        - y[i] * (ai - ai_old) * k.row(i)[i]
                        - y[j] * (aj - aj_old) * k.row(i)[j];
                    let b2 = b
                        - ej
                        - y[i] * (ai - ai_old) * k.row(i)[j]
                        - y[j] * (aj - aj_old) * k.row(j)[j];
                    b = if ai > 0.0 && ai < self.c {
                        b1
                    } else if aj > 0.0 && aj < self.c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                }
            }
            passes = if changed == 0 { passes + 1 } else { 0 };
        }
        // Retain support vectors only.
        self.support_x = Mat::zeros(0, data.dim());
        self.support_y = Vec::new();
        self.alpha = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                self.support_x.push_row(x.row(i));
                self.support_y.push(y[i]);
                self.alpha.push(alpha[i]);
            }
        }
        self.b = b;
        self.trained = true;
    }

    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.decision(x) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> Dataset {
        Dataset::from_classes(
            Mat::from_rows(
                (0..30)
                    .map(|i| vec![-(1.0 + (i % 7) as f64 * 0.1), (i % 5) as f64 * 0.1])
                    .collect(),
                2,
            ),
            Mat::from_rows(
                (0..30).map(|i| vec![1.0 + (i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1]).collect(),
                2,
            ),
        )
    }

    #[test]
    fn linear_kernel_separates() {
        let mut svm = Svm::new(Kernel::Linear, 1.0);
        svm.fit(&linear_data());
        assert_eq!(svm.predict(&[-2.0, 0.0]), 0);
        assert_eq!(svm.predict(&[2.0, 0.0]), 1);
    }

    #[test]
    fn decision_margin_sign() {
        let mut svm = Svm::new(Kernel::Polynomial { degree: 3, coef0: 1.0 }, 1.0);
        svm.fit(&linear_data());
        assert!(svm.decision(&[2.5, 0.2]) > 0.0);
        assert!(svm.decision(&[-2.5, 0.2]) < 0.0);
    }

    #[test]
    fn rbf_solves_xor() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            for (a, b, label) in [(0.0, 0.0, 0), (1.0, 1.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1)] {
                x.push(vec![a + jitter, b - jitter]);
                y.push(label);
            }
        }
        let mut svm = Svm::new(Kernel::Rbf { gamma: 2.0 }, 10.0);
        svm.fit(&Dataset::from_rows(x, y));
        assert_eq!(svm.predict(&[0.02, 0.02]), 0);
        assert_eq!(svm.predict(&[0.98, 0.02]), 1);
        assert_eq!(svm.predict(&[0.02, 0.98]), 1);
        assert_eq!(svm.predict(&[0.98, 0.98]), 0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let mut svm = Svm::new(Kernel::Linear, 1.0);
        svm.fit(&Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![0, 0]));
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        Svm::new(Kernel::Linear, 1.0).decision(&[0.0]);
    }
}
