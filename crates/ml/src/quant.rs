//! Post-training symmetric int8 quantization — the numeric substrate of
//! the precision-variant ensemble members (PVP, PAPERS.md).
//!
//! Symmetric quantization maps a real tensor onto i8 codes through a
//! single positive scale per row, with the zero point pinned at `0`:
//! `x ≈ scale · q` with `q ∈ [-127, 127]`. Pinning the zero point is
//! what lets the i8 GEMM accumulate raw products in i32 with no
//! cross-terms — dequantization is one multiply per output, so the
//! quantized path stays a drop-in replacement for the f64 kernels.
//!
//! Three pieces:
//!
//! - [`QuantizedMatrix`]: an i8 weight tensor with per-row scales,
//!   chosen per row as `max|w| / 127` so every row uses the full code
//!   range regardless of how unbalanced the layer is.
//! - [`Calibration`] → [`InputQuantizer`]: a max-abs pass over a benign
//!   activation sample fixes one *per-layer* scale for runtime inputs
//!   (weights are known at quantization time; activations are not).
//!   Non-finite observations are skipped and counted, never propagated.
//! - [`saturate_i8`] / [`saturate_i32`]: the only sanctioned f64→int
//!   conversions in this module. Round-to-nearest, clamp to the target
//!   range, NaN to zero — narrowing can saturate but never wrap. The
//!   `numeric-truncation` lint keeps bare `as` narrowing out of the
//!   quantization plane.

use mvp_artifact::{ArtifactError, Decoder, Encoder};

/// Largest magnitude an i8 code may take. Symmetric range `±127`: the
/// code `-128` is never produced, so negating a quantized tensor stays
/// inside the representation.
pub const Q_MAX: f64 = 127.0;

/// Clamp-checked `f64 → i8`: round to nearest, saturate to `±127`,
/// `NaN → 0`. Never wraps.
pub fn saturate_i8(x: f64) -> i8 {
    if x.is_nan() {
        return 0;
    }
    // The i64 intermediate is exact for the clamped range; `try_from`
    // (rather than a bare `as i8`) keeps the no-wrap guarantee checked.
    let clamped = x.round().clamp(-Q_MAX, Q_MAX);
    i8::try_from(clamped as i64).expect("clamped to i8 range")
}

/// Clamp-checked `f64 → i32`: round to nearest, saturate to the i32
/// range, `NaN → 0`. Never wraps.
pub fn saturate_i32(x: f64) -> i32 {
    if x.is_nan() {
        return 0;
    }
    let clamped = x.round().clamp(f64::from(i32::MIN), f64::from(i32::MAX));
    i32::try_from(clamped as i64).expect("clamped to i32 range")
}

/// A row-major i8 matrix with one symmetric dequantization scale per
/// row: element `(r, c)` of the real matrix is approximately
/// `scales[r] · data[r·n_cols + c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Vec<i8>,
    n_cols: usize,
    scales: Vec<f64>,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `n_rows × n_cols` f64 buffer, one max-abs
    /// scale per row. An all-zero (or all-NaN) row gets scale `1.0` and
    /// all-zero codes.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != n_rows * n_cols`.
    pub fn quantize(rows: &[f64], n_rows: usize, n_cols: usize) -> QuantizedMatrix {
        assert_eq!(rows.len(), n_rows * n_cols, "quantize: shape mismatch");
        let mut data = Vec::with_capacity(rows.len());
        let mut scales = Vec::with_capacity(n_rows);
        for row in rows.chunks_exact(n_cols.max(1)) {
            let max_abs =
                row.iter().filter(|v| v.is_finite()).fold(0.0f64, |acc, &v| acc.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / Q_MAX } else { 1.0 };
            scales.push(scale);
            data.extend(row.iter().map(|&v| saturate_i8(v / scale)));
        }
        QuantizedMatrix { data, n_cols, scales }
    }

    /// Number of rows (one scale each).
    pub fn n_rows(&self) -> usize {
        self.scales.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The row-major i8 codes.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Reconstructs the approximate f64 matrix (row-major).
    pub fn dequantize(&self) -> Vec<f64> {
        let cols = self.n_cols.max(1);
        self.data
            .chunks_exact(cols)
            .zip(&self.scales)
            .flat_map(|(row, &s)| row.iter().map(move |&q| f64::from(q) * s))
            .collect()
    }

    /// Appends the matrix to an artifact payload.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.n_cols);
        enc.put_f64s(&self.scales);
        enc.put_i8s(&self.data);
    }

    /// Reads a matrix written by [`encode`](Self::encode), refusing
    /// inconsistent shapes and non-positive or non-finite scales.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<QuantizedMatrix, ArtifactError> {
        let n_cols = dec.usize()?;
        let scales = dec.f64s()?;
        let data = dec.i8s()?;
        if scales.len().checked_mul(n_cols) != Some(data.len()) {
            return Err(ArtifactError::SchemaMismatch(format!(
                "quantized matrix {} scales x {n_cols} cols vs {} codes",
                scales.len(),
                data.len()
            )));
        }
        if let Some(bad) = scales.iter().find(|s| !s.is_finite() || **s <= 0.0) {
            return Err(ArtifactError::SchemaMismatch(format!(
                "quantized matrix scale {bad} not positive finite"
            )));
        }
        Ok(QuantizedMatrix { data, n_cols, scales })
    }
}

/// A max-abs calibration pass over a benign activation sample.
///
/// Feed every activation vector the f32 model produces on calibration
/// audio through [`observe`](Self::observe); the resulting
/// [`InputQuantizer`] maps the observed dynamic range onto the full i8
/// code range. Values outside the calibrated range at inference time
/// saturate — they do not wrap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Calibration {
    max_abs: f64,
    n_observed: usize,
    n_skipped: usize,
}

impl Calibration {
    /// An empty calibration.
    pub fn new() -> Calibration {
        Calibration::default()
    }

    /// Accumulates one activation vector. Non-finite entries are skipped
    /// and counted instead of poisoning the range.
    pub fn observe(&mut self, xs: &[f64]) {
        for &x in xs {
            if x.is_finite() {
                self.max_abs = self.max_abs.max(x.abs());
                self.n_observed += 1;
            } else {
                self.n_skipped += 1;
            }
        }
    }

    /// Finite values observed so far.
    pub fn n_observed(&self) -> usize {
        self.n_observed
    }

    /// Non-finite values skipped so far (a health signal: a large count
    /// means the calibration sample itself is degenerate).
    pub fn n_skipped(&self) -> usize {
        self.n_skipped
    }

    /// Largest finite magnitude observed.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Fixes the per-layer input scale from the observed range.
    ///
    /// # Panics
    ///
    /// Panics if nothing finite was observed — an input quantizer fitted
    /// on no data would silently zero every activation.
    pub fn input_quantizer(&self) -> InputQuantizer {
        assert!(self.n_observed > 0, "calibration saw no finite activations");
        let scale = if self.max_abs > 0.0 { self.max_abs / Q_MAX } else { 1.0 };
        InputQuantizer { scale }
    }
}

/// Per-layer symmetric activation quantizer: `q = saturate(x / scale)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputQuantizer {
    scale: f64,
}

impl InputQuantizer {
    /// A quantizer with an explicit scale (tests, hand-built layers).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn with_scale(scale: f64) -> InputQuantizer {
        assert!(scale.is_finite() && scale > 0.0, "input scale {scale} not positive finite");
        InputQuantizer { scale }
    }

    /// The dequantization scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantizes a vector into a caller-owned buffer (resized to fit).
    ///
    /// Hot path of the int8 acoustic model: delegates to the vectorized
    /// [`mvp_dsp::kernel::quantize_i8`], which is bit-exact against
    /// per-element [`saturate_i8`] on every input (its scalar oracle is
    /// the same checked arithmetic).
    pub fn quantize_into(&self, xs: &[f64], out: &mut Vec<i8>) {
        out.clear();
        out.resize(xs.len(), 0);
        mvp_dsp::kernel::quantize_i8(xs, self.scale, out);
    }

    /// Appends the quantizer to an artifact payload.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.scale);
    }

    /// Reads a quantizer written by [`encode`](Self::encode), refusing
    /// non-positive or non-finite scales.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<InputQuantizer, ArtifactError> {
        let scale = dec.f64()?;
        if !scale.is_finite() || scale <= 0.0 {
            return Err(ArtifactError::SchemaMismatch(format!(
                "input scale {scale} not positive finite"
            )));
        }
        Ok(InputQuantizer { scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturate_i8_rounds_clamps_and_absorbs_nan() {
        assert_eq!(saturate_i8(0.49), 0);
        assert_eq!(saturate_i8(0.51), 1);
        assert_eq!(saturate_i8(-0.51), -1);
        assert_eq!(saturate_i8(126.6), 127);
        assert_eq!(saturate_i8(300.0), 127);
        assert_eq!(saturate_i8(-300.0), -127);
        assert_eq!(saturate_i8(f64::INFINITY), 127);
        assert_eq!(saturate_i8(f64::NEG_INFINITY), -127);
        assert_eq!(saturate_i8(f64::NAN), 0);
    }

    #[test]
    fn saturate_i32_clamps_at_the_type_range() {
        assert_eq!(saturate_i32(1e18), i32::MAX);
        assert_eq!(saturate_i32(-1e18), i32::MIN);
        assert_eq!(saturate_i32(12_345.4), 12_345);
        assert_eq!(saturate_i32(f64::NAN), 0);
    }

    #[test]
    fn quantize_dequantize_error_is_bounded_by_half_a_step() {
        let rows: Vec<f64> = (0..60).map(|i| (i as f64 * 0.7).sin() * (1.0 + i as f64)).collect();
        let q = QuantizedMatrix::quantize(&rows, 6, 10);
        let back = q.dequantize();
        for (r, chunk) in rows.chunks(10).enumerate() {
            let step = q.scales()[r];
            for (c, &orig) in chunk.iter().enumerate() {
                let err = (back[r * 10 + c] - orig).abs();
                assert!(err <= step / 2.0 + 1e-12, "({r},{c}): err {err} vs step {step}");
            }
        }
    }

    #[test]
    fn full_code_range_is_used_per_row() {
        // Rows with wildly different magnitudes each hit ±127.
        let rows = [vec![1e-3, -1e-3, 5e-4], vec![1e3, -1e3, 500.0]];
        let flat: Vec<f64> = rows.concat();
        let q = QuantizedMatrix::quantize(&flat, 2, 3);
        assert_eq!(q.data()[0], 127);
        assert_eq!(q.data()[3], 127);
        assert_eq!(q.data()[4], -127);
    }

    #[test]
    fn zero_row_quantizes_to_zero_codes() {
        let q = QuantizedMatrix::quantize(&[0.0; 8], 2, 4);
        assert!(q.data().iter().all(|&v| v == 0));
        assert!(q.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn calibration_skips_and_counts_non_finite() {
        let mut cal = Calibration::new();
        cal.observe(&[0.5, f64::NAN, -2.0, f64::INFINITY]);
        assert_eq!(cal.n_observed(), 2);
        assert_eq!(cal.n_skipped(), 2);
        assert_eq!(cal.max_abs(), 2.0);
        let iq = cal.input_quantizer();
        assert!((iq.scale() - 2.0 / Q_MAX).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "no finite activations")]
    fn calibration_on_nothing_is_refused() {
        let mut cal = Calibration::new();
        cal.observe(&[f64::NAN]);
        cal.input_quantizer();
    }

    #[test]
    fn input_quantizer_saturates_out_of_range() {
        let iq = InputQuantizer::with_scale(0.1);
        let mut out = Vec::new();
        iq.quantize_into(&[0.1, -0.1, 100.0, -100.0, f64::NAN], &mut out);
        assert_eq!(out, vec![1, -1, 127, -127, 0]);
    }

    #[test]
    fn matrix_codec_round_trips_and_refuses_bad_payloads() {
        let rows: Vec<f64> = (0..12).map(|i| i as f64 - 6.0).collect();
        let q = QuantizedMatrix::quantize(&rows, 3, 4);
        let mut enc = Encoder::new();
        q.encode(&mut enc);
        let mut dec = Decoder::new(enc.as_bytes());
        assert_eq!(QuantizedMatrix::decode(&mut dec).unwrap(), q);
        dec.finish().unwrap();

        // Shape lie: 3 scales x 5 cols vs 12 codes.
        let mut enc = Encoder::new();
        enc.put_usize(5);
        enc.put_f64s(q.scales());
        enc.put_i8s(q.data());
        assert!(matches!(
            QuantizedMatrix::decode(&mut Decoder::new(enc.as_bytes())),
            Err(ArtifactError::SchemaMismatch(_))
        ));

        // Poisoned scale.
        let mut enc = Encoder::new();
        enc.put_usize(4);
        enc.put_f64s(&[q.scales()[0], -1.0, q.scales()[2]]);
        enc.put_i8s(q.data());
        assert!(matches!(
            QuantizedMatrix::decode(&mut Decoder::new(enc.as_bytes())),
            Err(ArtifactError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn input_quantizer_codec_refuses_bad_scale() {
        let iq = InputQuantizer::with_scale(0.25);
        let mut enc = Encoder::new();
        iq.encode(&mut enc);
        assert_eq!(InputQuantizer::decode(&mut Decoder::new(enc.as_bytes())).unwrap(), iq);

        let mut enc = Encoder::new();
        enc.put_f64(0.0);
        assert!(matches!(
            InputQuantizer::decode(&mut Decoder::new(enc.as_bytes())),
            Err(ArtifactError::SchemaMismatch(_))
        ));
    }
}
