//! Binary classification metrics matching the paper's reporting.
//!
//! Positive = adversarial example. FPR is the fraction of benign samples
//! flagged as AEs; FNR is the fraction of AEs that slip through — exactly
//! the quantities of Tables III–VI.

/// Confusion-matrix derived metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BinaryMetrics {
    /// True positives (AEs detected).
    pub tp: usize,
    /// True negatives (benign passed).
    pub tn: usize,
    /// False positives (benign flagged).
    pub fp: usize,
    /// False negatives (AEs missed).
    pub fn_: usize,
}

impl BinaryMetrics {
    /// Computes the confusion matrix of `predictions` against `truth`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or labels exceed 1.
    pub fn from_predictions(predictions: &[usize], truth: &[usize]) -> BinaryMetrics {
        assert_eq!(predictions.len(), truth.len(), "length mismatch");
        let mut m = BinaryMetrics::default();
        for (&p, &t) in predictions.iter().zip(truth) {
            assert!(p <= 1 && t <= 1, "labels must be binary");
            match (t, p) {
                (1, 1) => m.tp += 1,
                (0, 0) => m.tn += 1,
                (0, 1) => m.fp += 1,
                (1, 0) => m.fn_ += 1,
                _ => unreachable!(),
            }
        }
        m
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// False-positive rate: benign flagged as AE (0 when no benign).
    pub fn fpr(&self) -> f64 {
        let neg = self.tn + self.fp;
        if neg == 0 {
            0.0
        } else {
            self.fp as f64 / neg as f64
        }
    }

    /// False-negative rate: AEs missed (0 when no AEs).
    pub fn fnr(&self) -> f64 {
        let pos = self.tp + self.fn_;
        if pos == 0 {
            0.0
        } else {
            self.fn_ as f64 / pos as f64
        }
    }

    /// The paper's defense rate: fraction of AEs detected.
    pub fn defense_rate(&self) -> f64 {
        1.0 - self.fnr()
    }

    /// Precision over the positive class (1 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        let flagged = self.tp + self.fp;
        if flagged == 0 {
            1.0
        } else {
            self.tp as f64 / flagged as f64
        }
    }

    /// Recall over the positive class (alias of defense rate).
    pub fn recall(&self) -> f64 {
        self.defense_rate()
    }
}

impl std::fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc {:.2}% FPR {:.2}% FNR {:.2}%",
            self.accuracy() * 100.0,
            self.fpr() * 100.0,
            self.fnr() * 100.0
        )
    }
}

/// Mean and (population) standard deviation of a series.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let m = BinaryMetrics::from_predictions(&[1, 0, 1, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!((m.tp, m.tn, m.fp, m.fn_), (2, 1, 1, 1));
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.fpr() - 0.5).abs() < 1e-12);
        assert!((m.fnr() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.defense_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions() {
        let m = BinaryMetrics::from_predictions(&[0, 1], &[0, 1]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.fpr(), 0.0);
        assert_eq!(m.fnr(), 0.0);
        assert_eq!(m.precision(), 1.0);
    }

    #[test]
    fn degenerate_classes() {
        // All benign: FNR defined as 0.
        let m = BinaryMetrics::from_predictions(&[0, 0], &[0, 0]);
        assert_eq!(m.fnr(), 0.0);
        assert_eq!(m.fpr(), 0.0);
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn length_mismatch_panics() {
        BinaryMetrics::from_predictions(&[0], &[0, 1]);
    }
}
