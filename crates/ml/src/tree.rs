//! CART decision tree (gini impurity) — the unit the random forest bags.

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
use mvp_dsp::Mat;

use crate::dataset::Dataset;

/// A binary decision-tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Terminal node voting for a class.
    Leaf {
        /// The predicted class.
        class: usize,
    },
    /// Internal split: `x[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `x[feature] <= threshold`.
        left: Box<Node>,
        /// Subtree for `x[feature] > threshold`.
        right: Box<Node>,
    },
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 10, min_samples_split: 4 }
    }
}

/// A trained CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    dim: usize,
}

fn gini(counts: [usize; 2]) -> f64 {
    let n = (counts[0] + counts[1]) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let p0 = counts[0] as f64 / n;
    let p1 = counts[1] as f64 / n;
    1.0 - p0 * p0 - p1 * p1
}

fn majority(labels: &[usize], idx: &[usize]) -> usize {
    let pos = idx.iter().filter(|&&i| labels[i] == 1).count();
    usize::from(pos * 2 > idx.len())
}

fn grow(
    x: &Mat,
    y: &[usize],
    idx: &[usize],
    depth: usize,
    cfg: &TreeConfig,
    features: &[usize],
) -> Node {
    let pos = idx.iter().filter(|&&i| y[i] == 1).count();
    if pos == 0 || pos == idx.len() || depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
        return Node::Leaf { class: majority(y, idx) };
    }
    // Best split over the permitted features.
    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
    for &f in features {
        let mut values: Vec<f64> = idx.iter().map(|&i| x.row(i)[f]).collect();
        // total_cmp: NaN features sort last and split like any other
        // value instead of panicking mid-fit.
        values.sort_by(f64::total_cmp);
        values.dedup();
        for w in values.windows(2) {
            let thr = (w[0] + w[1]) / 2.0;
            let mut left = [0usize; 2];
            let mut right = [0usize; 2];
            for &i in idx {
                if x.row(i)[f] <= thr {
                    left[y[i]] += 1;
                } else {
                    right[y[i]] += 1;
                }
            }
            let nl = (left[0] + left[1]) as f64;
            let nr = (right[0] + right[1]) as f64;
            let imp = (nl * gini(left) + nr * gini(right)) / (nl + nr);
            if best.is_none_or(|(b, _, _)| imp < b) {
                best = Some((imp, f, thr));
            }
        }
    }
    let Some((_, feature, threshold)) = best else {
        return Node::Leaf { class: majority(y, idx) };
    };
    let (li, ri): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| x.row(i)[feature] <= threshold);
    if li.is_empty() || ri.is_empty() {
        return Node::Leaf { class: majority(y, idx) };
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(grow(x, y, &li, depth + 1, cfg, features)),
        right: Box::new(grow(x, y, &ri, depth + 1, cfg, features)),
    }
}

impl DecisionTree {
    /// Fits a tree on the rows of `data` selected by `idx`, splitting only
    /// on `features` (all features when empty slice is not given).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty.
    pub fn fit_subset(
        data: &Dataset,
        idx: &[usize],
        cfg: &TreeConfig,
        features: &[usize],
    ) -> DecisionTree {
        assert!(!idx.is_empty(), "empty training subset");
        let root = grow(data.features(), data.labels(), idx, 0, cfg, features);
        DecisionTree { root, dim: data.dim() }
    }

    /// Fits on an entire dataset with all features available.
    pub fn fit(data: &Dataset, cfg: &TreeConfig) -> DecisionTree {
        let idx: Vec<usize> = (0..data.len()).collect();
        let features: Vec<usize> = (0..data.dim()).collect();
        DecisionTree::fit_subset(data, &idx, cfg, &features)
    }

    /// Predicts the class of one example.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Depth of the tree (a leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

/// Deepest tree a persisted artifact may encode — far above anything
/// [`TreeConfig`] grows, low enough that a malformed artifact cannot
/// recurse the decoder off the stack.
const MAX_PERSISTED_DEPTH: usize = 512;

fn encode_node(node: &Node, enc: &mut Encoder) {
    match node {
        Node::Leaf { class } => {
            enc.put_u8(0);
            enc.put_usize(*class);
        }
        Node::Split { feature, threshold, left, right } => {
            enc.put_u8(1);
            enc.put_usize(*feature);
            enc.put_f64(*threshold);
            encode_node(left, enc);
            encode_node(right, enc);
        }
    }
}

fn decode_node(dec: &mut Decoder<'_>, dim: usize, depth: usize) -> Result<Node, ArtifactError> {
    if depth > MAX_PERSISTED_DEPTH {
        return Err(ArtifactError::SchemaMismatch("tree deeper than the persisted limit".into()));
    }
    match dec.u8()? {
        0 => {
            let class = dec.usize()?;
            if class > 1 {
                return Err(ArtifactError::SchemaMismatch(format!("leaf class {class}")));
            }
            Ok(Node::Leaf { class })
        }
        1 => {
            let feature = dec.usize()?;
            if feature >= dim {
                return Err(ArtifactError::SchemaMismatch(format!(
                    "split on feature {feature} of a {dim}-dim tree"
                )));
            }
            let threshold = dec.f64()?;
            let left = Box::new(decode_node(dec, dim, depth + 1)?);
            let right = Box::new(decode_node(dec, dim, depth + 1)?);
            Ok(Node::Split { feature, threshold, left, right })
        }
        other => Err(ArtifactError::SchemaMismatch(format!("tree node tag {other}"))),
    }
}

impl Persist for DecisionTree {
    const KIND: ArtifactKind = ArtifactKind::DECISION_TREE;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.dim);
        encode_node(&self.root, enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let dim = dec.usize()?;
        if dim == 0 {
            return Err(ArtifactError::SchemaMismatch("zero-dimensional tree".into()));
        }
        let root = decode_node(dec, dim, 0)?;
        Ok(DecisionTree { root, dim })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps() -> Dataset {
        // Class depends on x[0] with a step at 0.5.
        Dataset::from_classes(
            Mat::from_rows((0..20).map(|i| vec![i as f64 / 50.0, (i % 3) as f64]).collect(), 2),
            Mat::from_rows(
                (0..20).map(|i| vec![0.6 + i as f64 / 50.0, (i % 3) as f64]).collect(),
                2,
            ),
        )
    }

    #[test]
    fn perfect_on_separable_data() {
        let d = steps();
        let tree = DecisionTree::fit(&d, &TreeConfig::default());
        for (x, &y) in d.features().rows().zip(d.labels()) {
            assert_eq!(tree.predict(x), y);
        }
        // One split suffices.
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn depth_limit_respected() {
        let d = steps();
        let tree = DecisionTree::fit(&d, &TreeConfig { max_depth: 0, min_samples_split: 2 });
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn nan_feature_fits_and_predicts_without_panic() {
        // A NaN cell sorts last under total_cmp during split search; the
        // fit completes and prediction routes NaN right (`<=` is false).
        let mut x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0, 0.0]).collect();
        x[3][0] = f64::NAN;
        let y: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let tree = DecisionTree::fit(&Dataset::from_rows(x, y), &TreeConfig::default());
        assert!(tree.predict(&[f64::NAN, 0.0]) <= 1);
    }

    #[test]
    fn feature_restriction() {
        let d = steps();
        // Splitting only on the useless feature 1 yields poor fits.
        let idx: Vec<usize> = (0..d.len()).collect();
        let tree = DecisionTree::fit_subset(&d, &idx, &TreeConfig::default(), &[1]);
        let acc = d.features().rows().zip(d.labels()).filter(|(x, &y)| tree.predict(x) == y).count()
            as f64
            / d.len() as f64;
        assert!(acc < 0.8, "acc {acc} suspiciously high for a useless feature");
    }
}
