//! Random forest: bagged CART trees with feature subsampling.

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;

/// A random forest (the paper seeds its forest with 200).
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    seed: u64,
    tree_cfg: TreeConfig,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// An untrained forest of `n_trees` trees with RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0`.
    pub fn new(n_trees: usize, seed: u64) -> RandomForest {
        assert!(n_trees > 0, "need at least one tree");
        RandomForest { n_trees, seed, tree_cfg: TreeConfig::default(), trees: Vec::new() }
    }

    /// Number of trained trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is untrained.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Persist for RandomForest {
    const KIND: ArtifactKind = ArtifactKind::RANDOM_FOREST;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.n_trees);
        enc.put_u64(self.seed);
        enc.put_usize(self.tree_cfg.max_depth);
        enc.put_usize(self.tree_cfg.min_samples_split);
        enc.put_usize(self.trees.len());
        for tree in &self.trees {
            tree.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let n_trees = dec.usize()?;
        let seed = dec.u64()?;
        let tree_cfg = TreeConfig { max_depth: dec.usize()?, min_samples_split: dec.usize()? };
        let stored = dec.usize()?;
        if n_trees == 0 || (stored != 0 && stored != n_trees) {
            return Err(ArtifactError::SchemaMismatch(format!(
                "forest of {n_trees} trees with {stored} stored"
            )));
        }
        let trees =
            (0..stored).map(|_| DecisionTree::decode(dec)).collect::<Result<Vec<_>, _>>()?;
        Ok(RandomForest { n_trees, seed, tree_cfg, trees })
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty training set");
        let n = data.len();
        let dim = data.dim();
        let n_feats = ((dim as f64).sqrt().ceil() as usize).clamp(1, dim);
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.n_trees)
            .map(|_| {
                // Bootstrap sample.
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                // Feature subsample.
                let mut feats: Vec<usize> = (0..dim).collect();
                for i in (1..feats.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    feats.swap(i, j);
                }
                feats.truncate(n_feats);
                DecisionTree::fit_subset(data, &idx, &self.tree_cfg, &feats)
            })
            .collect();
    }

    fn predict(&self, x: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "forest not fitted");
        let votes: usize = self.trees.iter().map(|t| t.predict(x)).sum();
        usize::from(votes * 2 > self.trees.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_steps() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = i as f64 / 60.0;
            let noise = ((i * 37) % 11) as f64 / 110.0;
            x.push(vec![v * 0.4 + noise * 0.1, noise]);
            y.push(0);
            x.push(vec![0.6 + v * 0.4 - noise * 0.1, noise]);
            y.push(1);
        }
        Dataset::from_rows(x, y)
    }

    #[test]
    fn forest_fits_and_votes() {
        let d = noisy_steps();
        let mut f = RandomForest::new(25, 200);
        f.fit(&d);
        assert_eq!(f.len(), 25);
        assert_eq!(f.predict(&[0.1, 0.05]), 0);
        assert_eq!(f.predict(&[0.9, 0.05]), 1);
    }

    #[test]
    fn seed_determinism() {
        let d = noisy_steps();
        let mut a = RandomForest::new(10, 200);
        let mut b = RandomForest::new(10, 200);
        a.fit(&d);
        b.fit(&d);
        for x in d.features().rows() {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        RandomForest::new(5, 1).predict(&[0.0]);
    }
}
