//! Binary-labelled feature datasets.

use mvp_dsp::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense dataset of feature vectors with binary labels (`0` / `1`).
///
/// Features live in one contiguous [`Mat`] (the workspace-wide data-plane
/// carrier), so classifiers walk a single row-major buffer.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    x: Mat,
    y: Vec<usize>,
}

impl Dataset {
    /// Wraps a feature matrix and labels.
    ///
    /// # Panics
    ///
    /// Panics if row and label counts differ or labels are not 0/1.
    pub fn new(x: Mat, y: Vec<usize>) -> Dataset {
        assert_eq!(x.n_rows(), y.len(), "feature/label count mismatch");
        assert!(y.iter().all(|&l| l <= 1), "labels must be 0 or 1");
        Dataset { x, y }
    }

    /// Builds a dataset from per-example feature rows.
    ///
    /// Kept for tests and one-off construction; bulk producers should build
    /// a [`Mat`] directly.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged, counts differ, or labels are not 0/1.
    // mvp-lint: allow(nested-vec-f64) -- bridge constructor mirroring Mat::from_rows; flattens into the contiguous Mat immediately
    pub fn from_rows(x: Vec<Vec<f64>>, y: Vec<usize>) -> Dataset {
        let d = x.first().map_or(0, Vec::len);
        Dataset::new(Mat::from_rows(x, d), y)
    }

    /// Builds a dataset by concatenating negative (label 0) and positive
    /// (label 1) example sets.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices have different widths (both non-empty).
    pub fn from_classes(negatives: Mat, positives: Mat) -> Dataset {
        let y: Vec<usize> = std::iter::repeat_n(0, negatives.n_rows())
            .chain(std::iter::repeat_n(1, positives.n_rows()))
            .collect();
        let mut x = negatives;
        for row in positives.rows() {
            x.push_row(row);
        }
        Dataset::new(x, y)
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.n_rows()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.n_cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Mat {
        &self.x
    }

    /// The `i`-th feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Count of examples with label 1.
    pub fn positives(&self) -> usize {
        self.y.iter().filter(|&&l| l == 1).count()
    }

    /// The subset at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut x = Mat::zeros(0, self.dim());
        for &i in indices {
            x.push_row(self.x.row(i));
        }
        Dataset::new(x, indices.iter().map(|&i| self.y[i]).collect())
    }

    /// Deterministic shuffled train/test split with `train_frac` of each
    /// class in the training set (stratified).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac < 1`.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(train_frac > 0.0 && train_frac < 1.0, "bad train fraction");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in [0usize, 1] {
            let mut idx: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == class).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            let cut = ((idx.len() as f64) * train_frac).round() as usize;
            train_idx.extend_from_slice(&idx[..cut]);
            test_idx.extend_from_slice(&idx[cut..]);
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_classes(
            Mat::from_rows((0..20).map(|i| vec![i as f64]).collect(), 1),
            Mat::from_rows((0..10).map(|i| vec![100.0 + i as f64]).collect(), 1),
        )
    }

    #[test]
    fn from_classes_labels() {
        let d = toy();
        assert_eq!(d.len(), 30);
        assert_eq!(d.positives(), 10);
        assert_eq!(d.labels()[0], 0);
        assert_eq!(d.labels()[29], 1);
    }

    #[test]
    fn stratified_split_preserves_class_ratio() {
        let d = toy();
        let (train, test) = d.split(0.8, 7);
        assert_eq!(train.len(), 24);
        assert_eq!(test.len(), 6);
        assert_eq!(train.positives(), 8);
        assert_eq!(test.positives(), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let (a, _) = d.split(0.5, 3);
        let (b, _) = d.split(0.5, 3);
        assert_eq!(a.features(), b.features());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn bad_label_rejected() {
        Dataset::from_rows(vec![vec![1.0]], vec![2]);
    }
}
