//! ROC curves and AUC (paper Figure 5).
//!
//! The MVP-EARS threshold detector flags an audio as adversarial when its
//! similarity score falls *below* a threshold, so the sweep here treats
//! lower scores as more positive.

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold (scores `<= threshold` are flagged positive).
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
}

/// Sweeps every distinct score as a threshold and returns the ROC curve,
/// flagging positives where `score <= threshold`.
///
/// The curve is sorted by ascending FPR and always contains the trivial
/// `(0, 0)` and `(1, 1)` end points.
///
/// # Panics
///
/// Panics if lengths differ, labels exceed 1, or either class is absent.
pub fn roc_curve(scores: &[f64], labels: &[usize]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(labels.iter().all(|&l| l <= 1), "labels must be binary");
    let pos = labels.iter().filter(|&&l| l == 1).count();
    let neg = labels.len() - pos;
    assert!(pos > 0 && neg > 0, "need both classes for a ROC curve");

    let mut thresholds: Vec<f64> = scores.to_vec();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();

    let mut points = vec![RocPoint { threshold: f64::NEG_INFINITY, fpr: 0.0, tpr: 0.0 }];
    for &t in &thresholds {
        let mut tp = 0;
        let mut fp = 0;
        for (&s, &l) in scores.iter().zip(labels) {
            if s <= t {
                if l == 1 {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        points.push(RocPoint {
            threshold: t,
            fpr: fp as f64 / neg as f64,
            tpr: tp as f64 / pos as f64,
        });
    }
    points.sort_by(|a, b| a.fpr.total_cmp(&b.fpr).then(a.tpr.total_cmp(&b.tpr)));
    points
}

/// Area under a ROC curve by trapezoidal integration.
pub fn auc(curve: &[RocPoint]) -> f64 {
    curve.windows(2).map(|w| (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0).sum()
}

/// Picks the largest threshold whose FPR stays below `max_fpr` (the §V-G
/// procedure: "the threshold is determined by having the FPR less than
/// 5%"), maximising detection subject to the FPR budget.
///
/// Returns the chosen operating point.
///
/// # Panics
///
/// Same as [`roc_curve`].
pub fn threshold_for_fpr(scores: &[f64], labels: &[usize], max_fpr: f64) -> RocPoint {
    let curve = roc_curve(scores, labels);
    curve
        .iter()
        .rev()
        .find(|p| p.fpr < max_fpr && p.threshold.is_finite())
        .copied()
        .unwrap_or(curve[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_auc_one() {
        // AEs score low, benign high — perfectly separated.
        let scores = [0.1, 0.2, 0.15, 0.9, 0.95, 0.85];
        let labels = [1, 1, 1, 0, 0, 0];
        let curve = roc_curve(&scores, &labels);
        assert!((auc(&curve) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_auc_half() {
        // Interleaved scores: AUC ≈ 0.5.
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let curve = roc_curve(&scores, &labels);
        let a = auc(&curve);
        assert!((a - 0.5).abs() < 0.05, "auc {a}");
    }

    #[test]
    fn curve_is_monotone() {
        let scores = [0.3, 0.6, 0.2, 0.8, 0.5, 0.4];
        let labels = [1, 0, 1, 0, 0, 1];
        let curve = roc_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert_eq!(curve.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
    }

    #[test]
    fn threshold_respects_fpr_budget() {
        let scores = [0.1, 0.2, 0.7, 0.8, 0.9, 0.95, 0.85, 0.75];
        let labels = [1, 1, 1, 0, 0, 0, 0, 0];
        let p = threshold_for_fpr(&scores, &labels, 0.05);
        assert!(p.fpr < 0.05);
        // The two clearly-low AEs are caught.
        assert!(p.tpr >= 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        roc_curve(&[0.1, 0.2], &[1, 1]);
    }

    #[test]
    fn nan_score_degrades_instead_of_panicking() {
        // A NaN score sorts past every finite threshold candidate and
        // compares false against all of them; the curve and its area stay
        // finite.
        let scores = [0.1, 0.2, f64::NAN, 0.9, 0.95, 0.85];
        let labels = [1, 1, 1, 0, 0, 0];
        let curve = roc_curve(&scores, &labels);
        assert!(auc(&curve).is_finite());
        assert!(curve.iter().all(|p| p.fpr.is_finite() && p.tpr.is_finite()));
    }
}
