//! Benign-only one-class scoring.
//!
//! The variant-instability modality (and the paper's §V-G unseen-attack
//! setting generally) needs an anomaly score that can be fitted without
//! any adversarial data. [`OneClassScorer`] models the benign feature
//! block as an axis-aligned Gaussian: the anomaly score of a vector is
//! its mean squared z-score, and the decision threshold is set at a
//! quantile of the training scores, so the training false-positive rate
//! is `1 − quantile` by construction.

use mvp_artifact::{ArtifactError, ArtifactKind, Decoder, Encoder, Persist};
use mvp_dsp::kernel;
use mvp_dsp::Mat;

/// Variance floor: features that are constant on the benign training
/// set still get a finite z-score instead of an infinite one.
const MIN_STD: f64 = 1e-9;

/// An axis-aligned Gaussian one-class scorer fitted on benign rows.
#[derive(Debug, Clone, PartialEq)]
pub struct OneClassScorer {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
    threshold: f64,
}

impl OneClassScorer {
    /// Fits on benign feature rows; the anomaly threshold is the
    /// `quantile` point of the training scores.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, has zero width, contains non-finite
    /// values, or `quantile` is outside `(0, 1]`.
    pub fn fit_benign(rows: &Mat, quantile: f64) -> OneClassScorer {
        assert!(!rows.is_empty(), "empty benign training set");
        assert!(rows.n_cols() > 0, "zero-width benign training set");
        assert!(rows.as_slice().iter().all(|v| v.is_finite()), "non-finite training feature");
        assert!(quantile > 0.0 && quantile <= 1.0, "quantile must be in (0, 1]");

        let (n, d) = (rows.n_rows() as f64, rows.n_cols());
        let mut mean = vec![0.0; d];
        for row in rows.rows() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in rows.rows() {
            for ((s, &m), &v) in var.iter_mut().zip(&mean).zip(row) {
                *s += (v - m) * (v - m);
            }
        }
        let inv_std: Vec<f64> = var.iter().map(|&s| 1.0 / (s / n).sqrt().max(MIN_STD)).collect();

        let mut scorer = OneClassScorer { mean, inv_std, threshold: 0.0 };
        let mut train_scores: Vec<f64> = rows.rows().map(|r| scorer.score(r)).collect();
        train_scores.sort_by(f64::total_cmp);
        let idx = ((train_scores.len() - 1) as f64 * quantile).ceil() as usize;
        scorer.threshold = train_scores[idx.min(train_scores.len() - 1)];
        scorer
    }

    /// Feature dimension the scorer was fitted for.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The anomaly score of `x`: mean squared z-score against the
    /// benign fit. `0` at the benign mean, growing quadratically with
    /// distance; always finite for finite input.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn score(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        kernel::sq_zscore_sum(x, &self.mean, &self.inv_std) / self.dim() as f64
    }

    /// Whether `x` scores beyond the fitted threshold.
    pub fn is_anomalous(&self, x: &[f64]) -> bool {
        self.score(x) > self.threshold
    }

    /// The fitted decision threshold (training-score quantile).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Persist for OneClassScorer {
    const KIND: ArtifactKind = ArtifactKind::ONE_CLASS_SCORER;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64s(&self.mean);
        enc.put_f64s(&self.inv_std);
        enc.put_f64(self.threshold);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let mean = dec.f64s()?;
        let inv_std = dec.f64s()?;
        let threshold = dec.f64()?;
        if mean.is_empty() || mean.len() != inv_std.len() {
            return Err(ArtifactError::SchemaMismatch(format!(
                "one-class scorer with {} means and {} scales",
                mean.len(),
                inv_std.len()
            )));
        }
        if !threshold.is_finite() || mean.iter().chain(&inv_std).any(|v| !v.is_finite()) {
            return Err(ArtifactError::SchemaMismatch("non-finite one-class parameter".into()));
        }
        Ok(OneClassScorer { mean, inv_std, threshold })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_rows() -> Mat {
        // Tight benign cluster around (0.9, 0.85, 1.0).
        Mat::from_rows(
            (0..40)
                .map(|i| {
                    let j = (i % 8) as f64 * 0.01;
                    vec![0.88 + j, 0.82 + j, 1.0 - j * 0.5]
                })
                .collect(),
            3,
        )
    }

    #[test]
    fn benign_scores_below_anomalies() {
        let scorer = OneClassScorer::fit_benign(&benign_rows(), 0.95);
        assert_eq!(scorer.dim(), 3);
        let benign = scorer.score(&[0.9, 0.85, 0.98]);
        let anomalous = scorer.score(&[0.2, 0.1, 0.0]);
        assert!(benign < anomalous, "{benign} vs {anomalous}");
        assert!(!scorer.is_anomalous(&[0.9, 0.85, 0.98]));
        assert!(scorer.is_anomalous(&[0.2, 0.1, 0.0]));
    }

    #[test]
    fn training_fpr_respects_quantile() {
        let rows = benign_rows();
        let scorer = OneClassScorer::fit_benign(&rows, 0.9);
        let flagged = rows.rows().filter(|r| scorer.is_anomalous(r)).count();
        // At most ~10% of training rows may exceed the 0.9 quantile.
        assert!(flagged * 10 <= rows.n_rows() + 9, "{flagged}/{} flagged", rows.n_rows());
    }

    #[test]
    fn constant_feature_stays_finite() {
        let rows = Mat::from_rows((0..10).map(|_| vec![0.5, 1.0]).collect(), 2);
        let scorer = OneClassScorer::fit_benign(&rows, 0.95);
        let s = scorer.score(&[0.5, 0.2]);
        assert!(s.is_finite());
        assert!(scorer.is_anomalous(&[0.5, 0.2]));
    }

    #[test]
    #[should_panic(expected = "non-finite training feature")]
    fn nan_training_row_is_refused_at_the_boundary() {
        // Corrupt activations are rejected with a clear message before
        // they can poison the fit statistics — not deep inside a sort.
        let mut rows: Vec<Vec<f64>> = benign_rows().rows().map(<[f64]>::to_vec).collect();
        rows.push(vec![f64::NAN, 0.8, 1.0]);
        OneClassScorer::fit_benign(&Mat::from_rows(rows, 3), 0.9);
    }

    #[test]
    fn nan_query_score_degrades_without_panic() {
        let scorer = OneClassScorer::fit_benign(&benign_rows(), 0.9);
        let _ = scorer.is_anomalous(&[f64::NAN, 0.85, 1.0]);
    }

    #[test]
    fn round_trips_through_persist() {
        let scorer = OneClassScorer::fit_benign(&benign_rows(), 0.95);
        let mut bytes = Vec::new();
        scorer.write_to(&mut bytes).unwrap();
        let restored = OneClassScorer::read_from(&bytes[..]).unwrap();
        assert_eq!(restored, scorer);
        let x = [0.3, 0.9, 0.5];
        assert_eq!(restored.score(&x), scorer.score(&x));
    }

    #[test]
    fn corrupted_artifact_is_refused() {
        let scorer = OneClassScorer::fit_benign(&benign_rows(), 0.95);
        let mut bytes = Vec::new();
        scorer.write_to(&mut bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        assert!(OneClassScorer::read_from(&bytes[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "empty benign")]
    fn empty_training_rejected() {
        OneClassScorer::fit_benign(&Mat::zeros(0, 3), 0.95);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_rejected() {
        OneClassScorer::fit_benign(&benign_rows(), 1.5);
    }
}
