#![warn(missing_docs)]

//! From-scratch machine learning used by the MVP-EARS binary classifier.
//!
//! The paper evaluates three classifiers on similarity-score vectors — an
//! SVM with a 3-degree polynomial kernel, KNN with 10 voting neighbours and
//! a random forest seeded with 200 (§V-E). This crate implements all three
//! plus the supporting machinery: binary datasets, accuracy/FPR/FNR
//! metrics, ROC/AUC curves and stratified k-fold cross-validation.
//!
//! # Examples
//!
//! ```
//! use mvp_ml::{Classifier, ClassifierKind, Dataset, Mat};
//!
//! // Benign samples score high, AEs low — a caricature of Figure 4.
//! let mut x = Mat::zeros(0, 1);
//! let mut y = Vec::new();
//! for i in 0..40 {
//!     let v = i as f64 / 40.0 * 0.2;
//!     x.push_row(&[0.9 - v]); y.push(0); // benign
//!     x.push_row(&[0.1 + v]); y.push(1); // AE
//! }
//! let data = Dataset::new(x, y);
//! let mut svm = ClassifierKind::Svm.build();
//! svm.fit(&data);
//! assert_eq!(svm.predict(&[0.95]), 0);
//! assert_eq!(svm.predict(&[0.05]), 1);
//! ```

pub mod crossval;
pub mod dataset;
pub mod forest;
pub mod knn;
pub mod logistic;
pub mod metrics;
pub mod oneclass;
pub mod quant;
pub mod roc;
pub mod svm;
pub mod tree;

pub use crossval::{cross_validate, stratified_k_folds, CrossValSummary};
pub use dataset::Dataset;
pub use forest::RandomForest;
pub use knn::Knn;
pub use logistic::LogisticRegression;
pub use metrics::mean_std;
pub use metrics::BinaryMetrics;
pub use mvp_dsp::Mat;
pub use oneclass::OneClassScorer;
pub use quant::{Calibration, InputQuantizer, QuantizedMatrix};
pub use roc::{auc, roc_curve, threshold_for_fpr, RocPoint};
pub use svm::{Kernel, Svm};

/// A trainable binary classifier over dense feature vectors.
///
/// Labels are `0` (negative; benign in MVP-EARS) and `1` (positive; AE).
pub trait Classifier {
    /// Fits the model to `data`.
    ///
    /// # Panics
    ///
    /// Implementations panic on empty or single-class datasets.
    fn fit(&mut self, data: &Dataset);

    /// Predicts the label of one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if called before [`fit`](Classifier::fit) or with the wrong
    /// dimensionality.
    fn predict(&self, x: &[f64]) -> usize;

    /// Predicts one label per row of `xs`.
    fn predict_batch(&self, xs: &Mat) -> Vec<usize> {
        xs.rows().map(|x| self.predict(x)).collect()
    }
}

/// The classifier families of the paper's §V-E, with its hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// SVM with a 3-degree polynomial kernel.
    Svm,
    /// K-nearest-neighbours with 10 voting neighbours.
    Knn,
    /// Random forest with seed 200.
    RandomForest,
}

impl ClassifierKind {
    /// All kinds, in the paper's table order.
    pub const ALL: [ClassifierKind; 3] =
        [ClassifierKind::Svm, ClassifierKind::Knn, ClassifierKind::RandomForest];

    /// Builds an untrained classifier with the paper's configuration.
    pub fn build(self) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::Svm => {
                Box::new(Svm::new(Kernel::Polynomial { degree: 3, coef0: 1.0 }, 1.0))
            }
            ClassifierKind::Knn => Box::new(Knn::new(10)),
            ClassifierKind::RandomForest => Box::new(RandomForest::new(40, 200)),
        }
    }

    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::Svm => "SVM",
            ClassifierKind::Knn => "KNN",
            ClassifierKind::RandomForest => "Random Forest",
        }
    }
}

impl std::fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A trained classifier of a known paper family.
///
/// Unlike `Box<dyn Classifier>`, the fitted state is a concrete,
/// introspectable value — which is what lets a whole detection system
/// persist through the artifact plane and warm-start without retraining.
#[derive(Debug, Clone)]
pub enum FittedClassifier {
    /// A fitted SVM.
    Svm(Svm),
    /// A fitted KNN reference set.
    Knn(Knn),
    /// A fitted random forest.
    RandomForest(RandomForest),
}

impl FittedClassifier {
    /// Fits `kind` (with the paper's hyper-parameters) on `data`.
    pub fn fit(kind: ClassifierKind, data: &Dataset) -> FittedClassifier {
        match kind {
            ClassifierKind::Svm => {
                let mut svm = Svm::new(Kernel::Polynomial { degree: 3, coef0: 1.0 }, 1.0);
                svm.fit(data);
                FittedClassifier::Svm(svm)
            }
            ClassifierKind::Knn => {
                let mut knn = Knn::new(10);
                knn.fit(data);
                FittedClassifier::Knn(knn)
            }
            ClassifierKind::RandomForest => {
                let mut forest = RandomForest::new(40, 200);
                forest.fit(data);
                FittedClassifier::RandomForest(forest)
            }
        }
    }

    /// The family this classifier belongs to.
    pub fn kind(&self) -> ClassifierKind {
        match self {
            FittedClassifier::Svm(_) => ClassifierKind::Svm,
            FittedClassifier::Knn(_) => ClassifierKind::Knn,
            FittedClassifier::RandomForest(_) => ClassifierKind::RandomForest,
        }
    }
}

impl Classifier for FittedClassifier {
    fn fit(&mut self, data: &Dataset) {
        match self {
            FittedClassifier::Svm(c) => c.fit(data),
            FittedClassifier::Knn(c) => c.fit(data),
            FittedClassifier::RandomForest(c) => c.fit(data),
        }
    }

    fn predict(&self, x: &[f64]) -> usize {
        match self {
            FittedClassifier::Svm(c) => c.predict(x),
            FittedClassifier::Knn(c) => c.predict(x),
            FittedClassifier::RandomForest(c) => c.predict(x),
        }
    }
}

impl mvp_artifact::Persist for FittedClassifier {
    const KIND: mvp_artifact::ArtifactKind = mvp_artifact::ArtifactKind::FITTED_CLASSIFIER;
    const SCHEMA_VERSION: u16 = 1;

    fn encode(&self, enc: &mut mvp_artifact::Encoder) {
        match self {
            FittedClassifier::Svm(c) => {
                enc.put_u8(0);
                c.encode(enc);
            }
            FittedClassifier::Knn(c) => {
                enc.put_u8(1);
                c.encode(enc);
            }
            FittedClassifier::RandomForest(c) => {
                enc.put_u8(2);
                c.encode(enc);
            }
        }
    }

    fn decode(dec: &mut mvp_artifact::Decoder<'_>) -> Result<Self, mvp_artifact::ArtifactError> {
        match dec.u8()? {
            0 => Ok(FittedClassifier::Svm(Svm::decode(dec)?)),
            1 => Ok(FittedClassifier::Knn(Knn::decode(dec)?)),
            2 => Ok(FittedClassifier::RandomForest(RandomForest::decode(dec)?)),
            other => Err(mvp_artifact::ArtifactError::SchemaMismatch(format!(
                "classifier family tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data() -> Dataset {
        // Non-linearly separable: class 1 inside a ring of class 0.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let a = i as f64 * 0.21;
            x.push(vec![a.cos() * 2.0, a.sin() * 2.0]);
            y.push(0);
            x.push(vec![a.cos() * 0.3, a.sin() * 0.3]);
            y.push(1);
        }
        Dataset::from_rows(x, y)
    }

    #[test]
    fn every_kind_solves_the_ring() {
        let data = ring_data();
        for kind in ClassifierKind::ALL {
            let mut c = kind.build();
            c.fit(&data);
            let preds = c.predict_batch(data.features());
            let acc = preds.iter().zip(data.labels()).filter(|(p, l)| p == l).count() as f64
                / data.len() as f64;
            assert!(acc > 0.9, "{kind}: accuracy {acc}");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            ClassifierKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
