//! Property tests for classifier persistence: a round-tripped classifier
//! must agree with the original on every probe point, for every family and
//! across randomly generated training sets.

use proptest::collection::vec;
use proptest::prelude::*;

use mvp_artifact::{ArtifactError, Persist};
use mvp_ml::{Classifier, ClassifierKind, Dataset, FittedClassifier};

/// Two noisy 2-d clusters around (0,0) and (sep,sep).
fn cluster_data(n_per_class: usize, sep: f64, jitter: &[f64]) -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..n_per_class {
        let jx = jitter[i % jitter.len()];
        let jy = jitter[(i * 7 + 3) % jitter.len()];
        x.push(vec![jx, jy]);
        y.push(0);
        x.push(vec![sep + jy, sep + jx]);
        y.push(1);
    }
    Dataset::from_rows(x, y)
}

fn probe_grid() -> Vec<Vec<f64>> {
    let mut probes = Vec::new();
    for i in 0..7 {
        for j in 0..7 {
            probes.push(vec![i as f64 - 1.0, j as f64 - 1.0]);
        }
    }
    probes
}

proptest! {
    #[test]
    fn every_family_round_trips_with_identical_predictions(
        n in 8usize..24,
        sep in 2.0f64..5.0,
        jitter in vec(-0.6f64..0.6, 8..16),
    ) {
        let data = cluster_data(n, sep, &jitter);
        for kind in ClassifierKind::ALL {
            let fitted = FittedClassifier::fit(kind, &data);
            let mut bytes = Vec::new();
            fitted.write_to(&mut bytes).unwrap();
            let loaded = FittedClassifier::read_from(&bytes[..]).unwrap();
            prop_assert_eq!(loaded.kind(), kind);
            for probe in probe_grid() {
                prop_assert_eq!(
                    loaded.predict(&probe),
                    fitted.predict(&probe),
                    "{kind} disagrees at {probe:?}"
                );
            }
        }
    }

    #[test]
    fn corrupted_classifier_artifacts_are_refused(
        jitter in vec(-0.5f64..0.5, 8..12),
        byte_pick in 0usize..100_000,
    ) {
        let data = cluster_data(10, 3.0, &jitter);
        for kind in ClassifierKind::ALL {
            let fitted = FittedClassifier::fit(kind, &data);
            let mut bytes = Vec::new();
            fitted.write_to(&mut bytes).unwrap();
            let pos = byte_pick % bytes.len();
            bytes[pos] ^= 0x20;
            match FittedClassifier::read_from(&bytes[..]) {
                Err(_) => {}
                Ok(_) => prop_assert!(false, "{kind}: flip at {pos} accepted"),
            }
        }
    }
}

#[test]
fn family_tag_is_validated() {
    let jitter = [0.1, -0.2, 0.3];
    let data = cluster_data(8, 3.0, &jitter);
    let fitted = FittedClassifier::fit(ClassifierKind::Knn, &data);
    let mut enc = mvp_artifact::Encoder::new();
    fitted.encode(&mut enc);
    let mut payload = enc.as_bytes().to_vec();
    payload[0] = 9; // unknown family
    let mut bytes = Vec::new();
    mvp_artifact::write_artifact(
        &mut bytes,
        FittedClassifier::KIND,
        FittedClassifier::SCHEMA_VERSION,
        &payload,
    )
    .unwrap();
    assert!(matches!(
        FittedClassifier::read_from(&bytes[..]),
        Err(ArtifactError::SchemaMismatch(_))
    ));
}
