#![warn(missing_docs)]

//! Audio substrate: waveform container, WAV I/O, formant speech synthesis
//! and calibrated noise generation.
//!
//! The paper evaluates on LibriSpeech / CommonVoice recordings; this crate
//! provides the offline substitute — a deterministic formant synthesizer
//! driven by the ARPAbet phoneme inventory of `mvp-phonetics` (see
//! DESIGN.md §2 for why this preserves the behaviour the detector depends
//! on). The synthesizer also returns sample-exact phoneme alignments, which
//! is what lets the simulated acoustic models be trained with frame-level
//! supervision.
//!
//! # Examples
//!
//! ```
//! use mvp_audio::synth::{SpeakerProfile, Synthesizer};
//! use mvp_phonetics::Lexicon;
//!
//! let synth = Synthesizer::new(16_000);
//! let lex = Lexicon::builtin();
//! let (wave, alignment) = synth.synthesize(&lex, "open the door", &SpeakerProfile::default());
//! assert!(wave.duration_secs() > 0.5);
//! assert_eq!(alignment.first().unwrap().phoneme, mvp_phonetics::Phoneme::SIL);
//! ```

pub mod metrics;
pub mod noise;
pub mod resample;
pub mod synth;
pub mod wav;
pub mod waveform;

pub use metrics::{perturbation_linf, perturbation_similarity, perturbation_snr_db};
pub use noise::NoiseKind;
pub use resample::resample;
pub use synth::{AlignedPhoneme, SpeakerProfile, Synthesizer};
pub use waveform::Waveform;
