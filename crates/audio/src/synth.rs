//! Deterministic formant speech synthesizer.
//!
//! Renders ARPAbet phoneme sequences as waveforms whose spectra carry the
//! per-phoneme formant / noise-band signatures declared in
//! [`mvp_phonetics::Phoneme::acoustics`]. Homophones therefore synthesize to
//! *identical* audio, which is what exercises the paper's phonetic-encoding
//! rationale, and the returned sample-exact alignment provides frame-level
//! supervision for acoustic-model training.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mvp_phonetics::{Lexicon, Phoneme};

use crate::waveform::Waveform;

/// Per-speaker rendering parameters.
///
/// Corpus speakers vary pitch, vocal-tract length (formant scale), speaking
/// rate and breathiness — enough speaker diversity that the ASR profiles do
/// not trivially memorise one voice.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeakerProfile {
    /// Glottal fundamental in Hz.
    pub pitch_hz: f32,
    /// Multiplier applied to every formant frequency (vocal-tract length).
    pub formant_scale: f32,
    /// Speaking-rate multiplier (`> 1` is faster).
    pub rate: f32,
    /// Overall output amplitude.
    pub amplitude: f32,
    /// Level of broadband aspiration noise.
    pub breathiness: f32,
    /// Seed controlling phases and duration jitter.
    pub seed: u64,
}

impl Default for SpeakerProfile {
    fn default() -> Self {
        SpeakerProfile {
            pitch_hz: 120.0,
            formant_scale: 1.0,
            rate: 1.0,
            amplitude: 0.3,
            breathiness: 0.015,
            seed: 7,
        }
    }
}

/// One phoneme occurrence with its sample span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignedPhoneme {
    /// The rendered phoneme.
    pub phoneme: Phoneme,
    /// First sample index of the segment.
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
}

/// The formant synthesizer.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    sample_rate: u32,
}

impl Synthesizer {
    /// A synthesizer emitting audio at `sample_rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`.
    pub fn new(sample_rate: u32) -> Synthesizer {
        assert!(sample_rate > 0, "sample rate must be positive");
        Synthesizer { sample_rate }
    }

    /// Output sample rate in Hz.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Renders `text` using pronunciations from `lexicon`.
    pub fn synthesize(
        &self,
        lexicon: &Lexicon,
        text: &str,
        speaker: &SpeakerProfile,
    ) -> (Waveform, Vec<AlignedPhoneme>) {
        self.synthesize_phonemes(&lexicon.pronounce_sentence(text), speaker)
    }

    /// Renders an explicit phoneme sequence.
    pub fn synthesize_phonemes(
        &self,
        phonemes: &[Phoneme],
        speaker: &SpeakerProfile,
    ) -> (Waveform, Vec<AlignedPhoneme>) {
        let sr = self.sample_rate as f32;
        let mut samples: Vec<f32> = Vec::new();
        // mvp-lint: allow(unbounded-with-capacity) -- sized by the caller's in-memory phoneme slice, not a byte-read length field
        let mut alignment = Vec::with_capacity(phonemes.len());
        for (idx, &ph) in phonemes.iter().enumerate() {
            let mut rng = segment_rng(speaker.seed, idx, ph);
            let ac = ph.acoustics();
            let jitter = 1.0 + rng.gen_range(-0.1..0.1);
            let dur_ms = ac.duration_ms * jitter / speaker.rate;
            let n = ((dur_ms / 1000.0) * sr).round().max(1.0) as usize;
            let start = samples.len();
            let segment = self.render_segment(ph, n, start, speaker, &mut rng);
            samples.extend(segment);
            alignment.push(AlignedPhoneme { phoneme: ph, start, end: samples.len() });
        }
        (Waveform::from_samples(samples, self.sample_rate), alignment)
    }

    fn render_segment(
        &self,
        ph: Phoneme,
        n: usize,
        global_start: usize,
        speaker: &SpeakerProfile,
        rng: &mut SmallRng,
    ) -> Vec<f32> {
        let sr = self.sample_rate as f32;
        let ac = ph.acoustics();
        if ph == Phoneme::SIL {
            // Near-silence with a trace of room tone.
            return (0..n)
                .map(|_| rng.gen_range(-1.0f32..1.0) * speaker.breathiness * 0.2)
                .collect();
        }
        // Phase offsets fixed per segment for determinism.
        let formant_phases: Vec<f32> =
            (0..3).map(|_| rng.gen_range(0.0..std::f32::consts::TAU)).collect();
        // Band noise approximated by a bank of random sinusoids.
        const NOISE_PARTIALS: usize = 12;
        let noise_partials: Vec<(f32, f32)> = (0..NOISE_PARTIALS)
            .map(|_| {
                let (center, bw, _) = ac.noise_band;
                let f =
                    rng.gen_range((center - bw / 2.0).max(100.0)..(center + bw / 2.0).max(200.0));
                (f, rng.gen_range(0.0..std::f32::consts::TAU))
            })
            .collect();
        let ramp = (n / 4).min((0.008 * sr) as usize).max(1);
        // mvp-lint: allow(unbounded-with-capacity) -- `n` comes from per-phoneme duration constants jittered at most 10%, far below a second of audio
        let mut out = Vec::with_capacity(n);
        for t in 0..n {
            let time = t as f32 / sr;
            let global_time = (global_start + t) as f32 / sr;
            let mut v = 0.0f32;
            for (fi, &(freq, amp)) in ac.formants.iter().enumerate() {
                if freq > 0.0 && amp > 0.0 {
                    let f = freq * speaker.formant_scale;
                    v += amp * (std::f32::consts::TAU * f * time + formant_phases[fi]).sin();
                }
            }
            if ac.voiced {
                // Glottal amplitude modulation adds pitch harmonics; global
                // time keeps the pitch phase continuous across segments.
                let glottal = (1.0
                    + 0.6 * (std::f32::consts::TAU * speaker.pitch_hz * global_time).sin())
                    / 1.6;
                v *= glottal;
                v += 0.12 * (std::f32::consts::TAU * speaker.pitch_hz * global_time).sin();
            }
            let (_, _, namp) = ac.noise_band;
            if namp > 0.0 {
                let mut nv = 0.0f32;
                for &(f, phase) in &noise_partials {
                    nv += (std::f32::consts::TAU * f * time + phase).sin();
                }
                v += namp * nv / NOISE_PARTIALS as f32 * 2.0;
            }
            v += rng.gen_range(-1.0f32..1.0) * speaker.breathiness;
            // Attack / release envelope avoids clicks at segment joins.
            let env_in = ((t + 1) as f32 / ramp as f32).min(1.0);
            let env_out = ((n - t) as f32 / ramp as f32).min(1.0);
            out.push(v * env_in * env_out * speaker.amplitude);
        }
        out
    }
}

fn segment_rng(seed: u64, idx: usize, ph: Phoneme) -> SmallRng {
    let mixed = seed
        ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (ph.index() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    SmallRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth() -> (Synthesizer, Lexicon) {
        (Synthesizer::new(16_000), Lexicon::builtin())
    }

    #[test]
    fn produces_contiguous_alignment() {
        let (s, lex) = synth();
        let (wave, align) = s.synthesize(&lex, "open the front door", &SpeakerProfile::default());
        assert_eq!(align.first().unwrap().start, 0);
        assert_eq!(align.last().unwrap().end, wave.len());
        for pair in align.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn deterministic_given_profile() {
        let (s, lex) = synth();
        let p = SpeakerProfile::default();
        let (a, _) = s.synthesize(&lex, "turn on the light", &p);
        let (b, _) = s.synthesize(&lex, "turn on the light", &p);
        assert_eq!(a, b);
    }

    #[test]
    fn homophones_render_identically() {
        let (s, lex) = synth();
        let p = SpeakerProfile::default();
        let (a, _) = s.synthesize(&lex, "see", &p);
        let (b, _) = s.synthesize(&lex, "sea", &p);
        assert_eq!(a, b);
    }

    #[test]
    fn different_speakers_render_differently() {
        let (s, lex) = synth();
        let p1 = SpeakerProfile::default();
        let p2 = SpeakerProfile { pitch_hz: 210.0, formant_scale: 1.15, seed: 99, ..p1.clone() };
        let (a, _) = s.synthesize(&lex, "hello", &p1);
        let (b, _) = s.synthesize(&lex, "hello", &p2);
        assert_ne!(a, b);
    }

    #[test]
    fn speech_louder_than_silence() {
        let (s, lex) = synth();
        let (wave, align) = s.synthesize(&lex, "door", &SpeakerProfile::default());
        let seg_rms = |a: &AlignedPhoneme| {
            let s = &wave.samples()[a.start..a.end];
            (s.iter().map(|x| x * x).sum::<f32>() / s.len() as f32).sqrt()
        };
        let sil = align.iter().find(|a| a.phoneme == Phoneme::SIL).unwrap();
        let vowel = align.iter().find(|a| a.phoneme.is_vowel()).unwrap();
        assert!(seg_rms(vowel) > 10.0 * seg_rms(sil));
    }

    #[test]
    fn faster_rate_shortens_audio() {
        let (s, lex) = synth();
        let slow = SpeakerProfile { rate: 0.8, ..SpeakerProfile::default() };
        let fast = SpeakerProfile { rate: 1.3, ..SpeakerProfile::default() };
        let (a, _) = s.synthesize(&lex, "good morning", &slow);
        let (b, _) = s.synthesize(&lex, "good morning", &fast);
        assert!(a.len() > b.len());
    }

    #[test]
    fn samples_bounded() {
        let (s, lex) = synth();
        let (wave, _) = s.synthesize(&lex, "she sells sea shells", &SpeakerProfile::default());
        assert!(wave.peak() <= 1.0, "peak {}", wave.peak());
        assert!(wave.rms() > 0.01);
    }
}
