//! Minimal RIFF/WAVE PCM-16 mono reader and writer.
//!
//! The experiment binaries persist generated AEs as standard WAV files so
//! they can be inspected with ordinary audio tools. Only the subset needed
//! for that (16-bit PCM, mono) is implemented.

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use crate::waveform::Waveform;

/// Error decoding a WAV stream.
#[derive(Debug)]
pub enum ReadWavError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid or unsupported WAV data.
    Format(String),
}

impl fmt::Display for ReadWavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadWavError::Io(e) => write!(f, "i/o error reading wav: {e}"),
            ReadWavError::Format(m) => write!(f, "unsupported or invalid wav: {m}"),
        }
    }
}

impl Error for ReadWavError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadWavError::Io(e) => Some(e),
            ReadWavError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for ReadWavError {
    fn from(e: std::io::Error) -> Self {
        ReadWavError::Io(e)
    }
}

/// Writes `wave` as 16-bit PCM mono WAV.
///
/// Samples are clamped to `[-1, 1]` before quantisation. A `&mut` reference
/// can be passed for `writer`.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_wav<W: Write>(mut writer: W, wave: &Waveform) -> std::io::Result<()> {
    let data_len = u32::try_from(wave.len())
        .ok()
        .and_then(|n| n.checked_mul(2))
        .filter(|&d| d <= u32::MAX - 36)
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "waveform too long for a RIFF length field",
            )
        })?;
    let sample_rate = wave.sample_rate();
    let byte_rate = sample_rate * 2;
    writer.write_all(b"RIFF")?;
    writer.write_all(&(36 + data_len).to_le_bytes())?;
    writer.write_all(b"WAVE")?;
    writer.write_all(b"fmt ")?;
    writer.write_all(&16u32.to_le_bytes())?;
    writer.write_all(&1u16.to_le_bytes())?; // PCM
    writer.write_all(&1u16.to_le_bytes())?; // mono
    writer.write_all(&sample_rate.to_le_bytes())?;
    writer.write_all(&byte_rate.to_le_bytes())?;
    writer.write_all(&2u16.to_le_bytes())?; // block align
    writer.write_all(&16u16.to_le_bytes())?; // bits per sample
    writer.write_all(b"data")?;
    writer.write_all(&data_len.to_le_bytes())?;
    for &s in wave.samples() {
        // mvp-lint: allow(numeric-truncation) -- quantising a clamped [-1, 1] f32; the product is within i16 range by construction
        let q = (s.clamp(-1.0, 1.0) * i16::MAX as f32).round() as i16;
        writer.write_all(&q.to_le_bytes())?;
    }
    Ok(())
}

fn read_exact<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), ReadWavError> {
    reader.read_exact(buf).map_err(ReadWavError::from)
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, ReadWavError> {
    let mut b = [0u8; 4];
    read_exact(reader, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u16<R: Read>(reader: &mut R) -> Result<u16, ReadWavError> {
    let mut b = [0u8; 2];
    read_exact(reader, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Converts a header-declared byte count to `usize`, surfacing a format
/// error on targets whose address space cannot hold it (instead of the
/// silent wrap an `as` cast would produce).
fn to_usize(n: u32) -> Result<usize, ReadWavError> {
    usize::try_from(n)
        .map_err(|_| ReadWavError::Format(format!("chunk length {n} exceeds address space")))
}

/// Default cap on decoded samples for [`read_wav`]: 2²⁴ samples is about
/// 17 minutes of 16 kHz audio (32 MiB of PCM), far beyond any utterance
/// this workspace processes.
pub const DEFAULT_MAX_SAMPLES: usize = 1 << 24;

/// Reads a 16-bit PCM mono WAV stream. A `&mut` reference can be passed for
/// `reader`.
///
/// Decoding is capped at [`DEFAULT_MAX_SAMPLES`] samples; use
/// [`read_wav_with_limit`] to choose a different bound.
///
/// # Errors
///
/// Returns [`ReadWavError::Format`] for non-PCM, non-mono or structurally
/// invalid input and [`ReadWavError::Io`] for underlying read failures.
pub fn read_wav<R: Read>(reader: R) -> Result<Waveform, ReadWavError> {
    read_wav_with_limit(reader, DEFAULT_MAX_SAMPLES)
}

/// [`read_wav`] with an explicit cap on the number of decoded samples.
///
/// The declared `data` chunk length is untrusted input: it is checked
/// against `max_samples` *before* any allocation, and the chunk is
/// consumed through a fixed-size buffer, so a hostile header cannot make
/// the reader allocate gigabytes up front.
///
/// # Errors
///
/// Returns [`ReadWavError::Format`] when the data chunk declares more
/// than `max_samples` samples, plus everything [`read_wav`] returns.
pub fn read_wav_with_limit<R: Read>(
    mut reader: R,
    max_samples: usize,
) -> Result<Waveform, ReadWavError> {
    let mut tag = [0u8; 4];
    read_exact(&mut reader, &mut tag)?;
    if &tag != b"RIFF" {
        return Err(ReadWavError::Format("missing RIFF header".into()));
    }
    let _riff_len = read_u32(&mut reader)?;
    read_exact(&mut reader, &mut tag)?;
    if &tag != b"WAVE" {
        return Err(ReadWavError::Format("missing WAVE tag".into()));
    }
    let mut sample_rate = 0u32;
    let mut bits = 0u16;
    let mut channels = 0u16;
    loop {
        read_exact(&mut reader, &mut tag)?;
        let chunk_len = read_u32(&mut reader)?;
        match &tag {
            b"fmt " => {
                let fmt = read_u16(&mut reader)?;
                if fmt != 1 {
                    return Err(ReadWavError::Format(format!("unsupported format {fmt}")));
                }
                channels = read_u16(&mut reader)?;
                sample_rate = read_u32(&mut reader)?;
                let _byte_rate = read_u32(&mut reader)?;
                let _align = read_u16(&mut reader)?;
                bits = read_u16(&mut reader)?;
                // Skip any fmt extension bytes, plus the alignment pad:
                // RIFF chunks are word-aligned, so an odd chunk_len is
                // followed by a pad byte not counted in the length.
                let consumed = 16;
                if chunk_len > consumed {
                    skip(&mut reader, to_usize(chunk_len - consumed)?)?;
                }
                skip(&mut reader, usize::from(chunk_len % 2 == 1))?;
            }
            b"data" => {
                if channels != 1 {
                    return Err(ReadWavError::Format(format!("{channels} channels, want mono")));
                }
                if bits != 16 {
                    return Err(ReadWavError::Format(format!("{bits} bits, want 16")));
                }
                if sample_rate == 0 {
                    return Err(ReadWavError::Format("data chunk before fmt".into()));
                }
                let declared = to_usize(chunk_len / 2)?;
                if declared > max_samples {
                    return Err(ReadWavError::Format(format!(
                        "data chunk declares {declared} samples, limit is {max_samples}"
                    )));
                }
                // Stream through a fixed buffer: the declared length is
                // attacker-controlled and must not size an allocation.
                let mut samples = Vec::with_capacity(declared);
                let mut remaining = to_usize(chunk_len)?;
                let mut buf = [0u8; 4096];
                while remaining > 1 {
                    let take = remaining.min(buf.len()) & !1;
                    read_exact(&mut reader, &mut buf[..take])?;
                    samples.extend(
                        buf[..take]
                            .chunks_exact(2)
                            .map(|b| i16::from_le_bytes([b[0], b[1]]) as f32 / i16::MAX as f32),
                    );
                    remaining -= take;
                }
                return Ok(Waveform::from_samples(samples, sample_rate));
            }
            _ => skip(&mut reader, to_usize(chunk_len)? + usize::from(chunk_len % 2 == 1))?,
        }
    }
}

fn skip<R: Read>(reader: &mut R, n: usize) -> Result<(), ReadWavError> {
    let mut remaining = n;
    let mut buf = [0u8; 256];
    while remaining > 0 {
        let take = remaining.min(buf.len());
        read_exact(reader, &mut buf[..take])?;
        remaining -= take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_samples() {
        let wave = Waveform::from_samples(
            (0..1000).map(|i| ((i as f32) * 0.01).sin() * 0.8).collect(),
            16_000,
        );
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        let back = read_wav(buf.as_slice()).unwrap();
        assert_eq!(back.sample_rate(), 16_000);
        assert_eq!(back.len(), wave.len());
        for (a, b) in back.samples().iter().zip(wave.samples()) {
            assert!((a - b).abs() < 1.0 / i16::MAX as f32 * 2.0);
        }
    }

    #[test]
    fn header_is_valid_riff() {
        let wave = Waveform::from_samples(vec![0.0; 4], 8_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        assert_eq!(&buf[..4], b"RIFF");
        assert_eq!(&buf[8..12], b"WAVE");
        assert_eq!(buf.len(), 44 + 8);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_wav(&b"not a wav"[..]),
            Err(ReadWavError::Format(_)) | Err(ReadWavError::Io(_))
        ));
    }

    #[test]
    fn rejects_stereo() {
        let wave = Waveform::from_samples(vec![0.0; 4], 8_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        buf[22] = 2; // channel count
        match read_wav(buf.as_slice()) {
            Err(ReadWavError::Format(m)) => assert!(m.contains("mono")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn skips_unknown_chunks() {
        // Insert a junk chunk between fmt and data; the reader must skip it.
        let wave = Waveform::from_samples(vec![0.25; 8], 8_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        let mut patched = buf[..36].to_vec();
        patched.extend_from_slice(b"LIST");
        patched.extend_from_slice(&6u32.to_le_bytes());
        patched.extend_from_slice(b"junk..");
        patched.extend_from_slice(&buf[36..]);
        // Fix the RIFF length.
        let riff_len = (patched.len() - 8) as u32;
        patched[4..8].copy_from_slice(&riff_len.to_le_bytes());
        let back = read_wav(patched.as_slice()).unwrap();
        assert_eq!(back.len(), 8);
    }

    #[test]
    fn skips_odd_length_chunks_with_pad() {
        // An odd-length chunk is followed by a pad byte not counted in
        // chunk_len; a reader that forgets it desynchronises and reads
        // the pad as the first byte of the next chunk tag.
        let wave = Waveform::from_samples(vec![0.25; 8], 8_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        let mut patched = buf[..36].to_vec();
        patched.extend_from_slice(b"LIST");
        patched.extend_from_slice(&5u32.to_le_bytes());
        patched.extend_from_slice(b"junk.");
        patched.push(0); // alignment pad
        patched.extend_from_slice(&buf[36..]);
        let riff_len = (patched.len() - 8) as u32;
        patched[4..8].copy_from_slice(&riff_len.to_le_bytes());
        let back = read_wav(patched.as_slice()).unwrap();
        assert_eq!(back.len(), 8);
    }

    #[test]
    fn skips_odd_fmt_extension_with_pad() {
        // fmt chunk of length 17: the 16 standard bytes plus one
        // extension byte, then an alignment pad before the data chunk.
        let wave = Waveform::from_samples(vec![-0.5; 4], 16_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        let mut patched = buf[..16].to_vec();
        patched.extend_from_slice(&17u32.to_le_bytes()); // fmt length
        patched.extend_from_slice(&buf[20..36]); // standard fmt body
        patched.push(0xAB); // extension byte
        patched.push(0); // alignment pad
        patched.extend_from_slice(&buf[36..]);
        let riff_len = (patched.len() - 8) as u32;
        patched[4..8].copy_from_slice(&riff_len.to_le_bytes());
        let back = read_wav(patched.as_slice()).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.sample_rate(), 16_000);
    }

    #[test]
    fn rejects_oversized_data_declaration() {
        // A hostile header declaring a 4 GiB data chunk must be rejected
        // up front, not answered with a 4 GiB allocation.
        let wave = Waveform::from_samples(vec![0.0; 2], 8_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        buf[40..44].copy_from_slice(&u32::MAX.to_le_bytes()); // data length
        match read_wav(buf.as_slice()) {
            Err(ReadWavError::Format(m)) => assert!(m.contains("limit"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn sample_limit_is_exact() {
        let wave = Waveform::from_samples(vec![0.1; 8], 8_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        assert_eq!(read_wav_with_limit(buf.as_slice(), 8).unwrap().len(), 8);
        assert!(matches!(read_wav_with_limit(buf.as_slice(), 7), Err(ReadWavError::Format(_))));
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_any_signal(
            samples in proptest::collection::vec(-1.0f32..1.0, 0..256),
            rate in proptest::sample::select(vec![8_000u32, 16_000, 44_100]),
        ) {
            let wave = Waveform::from_samples(samples, rate);
            let mut buf = Vec::new();
            write_wav(&mut buf, &wave).unwrap();
            let back = read_wav(buf.as_slice()).unwrap();
            proptest::prop_assert_eq!(back.sample_rate(), rate);
            proptest::prop_assert_eq!(back.len(), wave.len());
            for (a, b) in back.samples().iter().zip(wave.samples()) {
                proptest::prop_assert!((a - b).abs() < 2.0 / i16::MAX as f32);
            }
        }
    }

    #[test]
    fn clipping_is_clamped() {
        let wave = Waveform::from_samples(vec![2.0, -2.0], 8_000);
        let mut buf = Vec::new();
        write_wav(&mut buf, &wave).unwrap();
        let back = read_wav(buf.as_slice()).unwrap();
        assert!((back.samples()[0] - 1.0).abs() < 1e-3);
        assert!((back.samples()[1] + 1.0).abs() < 1e-3);
    }
}
