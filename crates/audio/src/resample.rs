//! Sample-rate conversion (linear interpolation).
//!
//! Real deployments feed ASRs audio captured at many rates; the cloud ASRs
//! the paper uses resample internally. This module provides the conversion
//! so recordings at other rates can enter the 16 kHz pipeline.

use crate::waveform::Waveform;

/// Resamples `wave` to `target_rate` Hz by linear interpolation.
///
/// Linear interpolation is adequate for speech at the rates used here
/// (8–48 kHz); it attenuates the top octave slightly but preserves formant
/// structure. Returns the input unchanged when the rates already match.
///
/// # Panics
///
/// Panics if `target_rate == 0`.
pub fn resample(wave: &Waveform, target_rate: u32) -> Waveform {
    assert!(target_rate > 0, "target rate must be positive");
    if wave.sample_rate() == target_rate || wave.is_empty() {
        return Waveform::from_samples(wave.samples().to_vec(), target_rate.max(1));
    }
    let src = wave.samples();
    let ratio = wave.sample_rate() as f64 / target_rate as f64;
    let out_len = ((src.len() as f64) / ratio).round() as usize;
    let samples: Vec<f32> = (0..out_len)
        .map(|i| {
            let pos = i as f64 * ratio;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(src.len() - 1);
            let frac = (pos - lo as f64) as f32;
            src[lo.min(src.len() - 1)] * (1.0 - frac) + src[hi] * frac
        })
        .collect();
    Waveform::from_samples(samples, target_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(hz: f32, rate: u32, secs: f32) -> Waveform {
        let n = (rate as f32 * secs) as usize;
        Waveform::from_samples(
            (0..n)
                .map(|i| (std::f32::consts::TAU * hz * i as f32 / rate as f32).sin() * 0.5)
                .collect(),
            rate,
        )
    }

    #[test]
    fn identity_when_rates_match() {
        let w = tone(440.0, 16_000, 0.1);
        let r = resample(&w, 16_000);
        assert_eq!(r, w);
    }

    #[test]
    fn length_scales_with_ratio() {
        let w = tone(440.0, 16_000, 0.5);
        let up = resample(&w, 32_000);
        let down = resample(&w, 8_000);
        assert!((up.len() as f64 - 2.0 * w.len() as f64).abs() <= 2.0);
        assert!((down.len() as f64 - 0.5 * w.len() as f64).abs() <= 2.0);
        assert_eq!(up.sample_rate(), 32_000);
        assert!((up.duration_secs() - w.duration_secs()).abs() < 1e-3);
    }

    #[test]
    fn tone_frequency_preserved() {
        // Zero-crossing count approximates frequency; it must survive the
        // round trip within a few percent.
        let crossings = |w: &Waveform| {
            w.samples().windows(2).filter(|p| p[0].signum() != p[1].signum()).count()
        };
        let w = tone(440.0, 48_000, 0.5);
        let down = resample(&w, 16_000);
        let expected = crossings(&w) as f64;
        let got = crossings(&down) as f64;
        assert!((got - expected).abs() / expected < 0.03, "{got} vs {expected}");
    }

    #[test]
    fn roundtrip_rms_close() {
        let w = tone(300.0, 16_000, 0.25);
        let back = resample(&resample(&w, 8_000), 16_000);
        assert!((back.rms() - w.rms()).abs() < 0.02);
    }

    #[test]
    fn empty_input() {
        let w = Waveform::new(16_000);
        assert!(resample(&w, 8_000).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        resample(&tone(440.0, 16_000, 0.01), 0);
    }
}
