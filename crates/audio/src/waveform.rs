//! The [`Waveform`] container: mono float samples plus sample rate.

/// A mono audio buffer with samples nominally in `[-1, 1]`.
///
/// ```
/// use mvp_audio::Waveform;
/// let w = Waveform::from_samples(vec![0.0, 0.5, -0.5], 16_000);
/// assert_eq!(w.len(), 3);
/// assert!((w.rms() - (1.0f32/6.0).sqrt()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    samples: Vec<f32>,
    sample_rate: u32,
}

impl Waveform {
    /// An empty waveform at `sample_rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`.
    pub fn new(sample_rate: u32) -> Waveform {
        Waveform::from_samples(Vec::new(), sample_rate)
    }

    /// Wraps existing samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`.
    pub fn from_samples(samples: Vec<f32>, sample_rate: u32) -> Waveform {
        assert!(sample_rate > 0, "sample rate must be positive");
        Waveform { samples, sample_rate }
    }

    /// Builds a waveform from `f64` samples (e.g. an attack perturbation).
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`.
    pub fn from_f64(samples: &[f64], sample_rate: u32) -> Waveform {
        Waveform::from_samples(samples.iter().map(|&s| s as f32).collect(), sample_rate)
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate as f64
    }

    /// Immutable sample view.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Mutable sample view.
    pub fn samples_mut(&mut self) -> &mut [f32] {
        &mut self.samples
    }

    /// Samples widened to `f64` (the precision the DSP pipeline uses).
    pub fn to_f64(&self) -> Vec<f64> {
        self.samples.iter().map(|&s| s as f64).collect()
    }

    /// Widens the samples into a caller-owned buffer, reusing its
    /// allocation — the batch transcription path calls this once per
    /// waveform with a single scratch buffer.
    pub fn copy_to_f64(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend(self.samples.iter().map(|&s| s as f64));
    }

    /// Root-mean-square amplitude (0 for an empty buffer).
    pub fn rms(&self) -> f32 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&s| (s as f64) * (s as f64)).sum();
        (sum / self.samples.len() as f64).sqrt() as f32
    }

    /// Largest absolute sample value.
    pub fn peak(&self) -> f32 {
        self.samples.iter().fold(0.0f32, |m, &s| m.max(s.abs()))
    }

    /// Multiplies every sample by `gain`.
    pub fn scale(&mut self, gain: f32) {
        for s in &mut self.samples {
            *s *= gain;
        }
    }

    /// Clamps every sample into `[-1, 1]`.
    pub fn clamp(&mut self) {
        for s in &mut self.samples {
            *s = s.clamp(-1.0, 1.0);
        }
    }

    /// Adds `other` element-wise (shorter operand is zero-extended).
    ///
    /// # Panics
    ///
    /// Panics if sample rates differ.
    pub fn add(&mut self, other: &Waveform) {
        assert_eq!(self.sample_rate, other.sample_rate, "sample-rate mismatch");
        if other.len() > self.len() {
            self.samples.resize(other.len(), 0.0);
        }
        for (a, &b) in self.samples.iter_mut().zip(&other.samples) {
            *a += b;
        }
    }

    /// Appends the samples of `other`.
    ///
    /// # Panics
    ///
    /// Panics if sample rates differ.
    pub fn append(&mut self, other: &Waveform) {
        assert_eq!(self.sample_rate, other.sample_rate, "sample-rate mismatch");
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duration_and_len() {
        let w = Waveform::from_samples(vec![0.0; 8000], 16_000);
        assert!((w.duration_secs() - 0.5).abs() < 1e-12);
        assert!(!w.is_empty());
    }

    #[test]
    fn add_zero_extends() {
        let mut a = Waveform::from_samples(vec![1.0, 1.0], 8_000);
        let b = Waveform::from_samples(vec![0.5, 0.5, 0.5], 8_000);
        a.add(&b);
        assert_eq!(a.samples(), &[1.5, 1.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "sample-rate mismatch")]
    fn add_rate_mismatch_panics() {
        let mut a = Waveform::new(8_000);
        a.add(&Waveform::new(16_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        Waveform::new(0);
    }

    #[test]
    fn clamp_bounds_samples() {
        let mut w = Waveform::from_samples(vec![2.0, -3.0, 0.25], 8_000);
        w.clamp();
        assert_eq!(w.samples(), &[1.0, -1.0, 0.25]);
    }

    proptest! {
        #[test]
        fn rms_le_peak(samples in proptest::collection::vec(-1.0f32..1.0, 1..64)) {
            let w = Waveform::from_samples(samples, 16_000);
            prop_assert!(w.rms() <= w.peak() + 1e-6);
        }

        #[test]
        fn scale_scales_rms(samples in proptest::collection::vec(-1.0f32..1.0, 1..64), g in 0.1f32..4.0) {
            let w = Waveform::from_samples(samples, 16_000);
            let before = w.rms();
            let mut scaled = w.clone();
            scaled.scale(g);
            prop_assert!((scaled.rms() - before * g).abs() < 1e-3);
        }
    }
}
