//! Perturbation metrics: SNR, L∞ and the paper's percentage similarity.

use crate::waveform::Waveform;

fn delta(host: &Waveform, adversarial: &Waveform) -> Vec<f64> {
    assert_eq!(host.sample_rate(), adversarial.sample_rate(), "sample-rate mismatch");
    let n = host.len().max(adversarial.len());
    (0..n)
        .map(|i| {
            let a = *adversarial.samples().get(i).unwrap_or(&0.0) as f64;
            let h = *host.samples().get(i).unwrap_or(&0.0) as f64;
            a - h
        })
        .collect()
}

/// Signal-to-perturbation ratio in dB: `20 log10(‖host‖₂ / ‖δ‖₂)`.
///
/// Returns `f64::INFINITY` when the perturbation is zero.
///
/// # Panics
///
/// Panics if sample rates differ or `host` is silent.
pub fn perturbation_snr_db(host: &Waveform, adversarial: &Waveform) -> f64 {
    let host_l2: f64 = host.samples().iter().map(|&s| (s as f64).powi(2)).sum::<f64>().sqrt();
    assert!(host_l2 > 0.0, "host is silent");
    let d_l2: f64 = delta(host, adversarial).iter().map(|d| d * d).sum::<f64>().sqrt();
    if d_l2 == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (host_l2 / d_l2).log10()
    }
}

/// Largest absolute sample difference between `host` and `adversarial`.
///
/// # Panics
///
/// Panics if sample rates differ.
pub fn perturbation_linf(host: &Waveform, adversarial: &Waveform) -> f64 {
    delta(host, adversarial).iter().fold(0.0f64, |m, d| m.max(d.abs()))
}

/// The paper's percentage similarity between an AE and its host:
/// `1 − ‖δ‖₂ / ‖host‖₂`, clamped to `[0, 1]`.
///
/// The paper reports 99.9 % for white-box AEs and 94.6 % for black-box AEs.
///
/// # Panics
///
/// Panics if sample rates differ or `host` is silent.
pub fn perturbation_similarity(host: &Waveform, adversarial: &Waveform) -> f64 {
    let host_l2: f64 = host.samples().iter().map(|&s| (s as f64).powi(2)).sum::<f64>().sqrt();
    assert!(host_l2 > 0.0, "host is silent");
    let d_l2: f64 = delta(host, adversarial).iter().map(|d| d * d).sum::<f64>().sqrt();
    (1.0 - d_l2 / host_l2).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(amp: f32) -> Waveform {
        Waveform::from_samples((0..4000).map(|i| (i as f32 * 0.1).sin() * amp).collect(), 16_000)
    }

    #[test]
    fn identical_signals() {
        let w = tone(0.5);
        assert_eq!(perturbation_snr_db(&w, &w), f64::INFINITY);
        assert_eq!(perturbation_linf(&w, &w), 0.0);
        assert_eq!(perturbation_similarity(&w, &w), 1.0);
    }

    #[test]
    fn known_snr() {
        let host = tone(0.5);
        let mut ae = host.clone();
        // Perturbation = 1% of host amplitude everywhere => SNR = 40 dB.
        for (a, &h) in ae.samples_mut().iter_mut().zip(host.samples()) {
            *a = h * 1.01;
        }
        let snr = perturbation_snr_db(&host, &ae);
        assert!((snr - 40.0).abs() < 0.1, "{snr}");
        let sim = perturbation_similarity(&host, &ae);
        assert!((sim - 0.99).abs() < 1e-6);
    }

    #[test]
    fn linf_picks_max() {
        let host = tone(0.5);
        let mut ae = host.clone();
        ae.samples_mut()[100] += 0.25;
        ae.samples_mut()[200] -= 0.1;
        assert!((perturbation_linf(&host, &ae) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn length_mismatch_zero_extends() {
        let host = tone(0.5);
        let mut longer = host.clone();
        longer.append(&Waveform::from_samples(vec![0.2; 10], 16_000));
        assert!(perturbation_linf(&host, &longer) >= 0.2);
    }

    #[test]
    #[should_panic(expected = "silent")]
    fn silent_host_rejected() {
        let silent = Waveform::from_samples(vec![0.0; 10], 16_000);
        perturbation_similarity(&silent, &silent);
    }
}
