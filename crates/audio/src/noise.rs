//! Noise generators and SNR-calibrated mixing.
//!
//! Section V-J of the paper builds non-targeted AEs by mixing noise into
//! benign samples at −6 dB SNR; this module provides the generators and the
//! calibrated mixer.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::waveform::Waveform;

/// The noise colour / texture to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Flat-spectrum noise.
    White,
    /// `1/f`-ish noise (Voss–McCartney approximation).
    Pink,
    /// Speech-shaped "crowd" noise: random formant-like chirps.
    Babble,
}

impl NoiseKind {
    /// Generates `n` samples of this noise at `sample_rate` Hz with unit
    /// peak normalisation, deterministically from `seed`.
    pub fn generate(self, n: usize, sample_rate: u32, seed: u64) -> Waveform {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let samples = match self {
            NoiseKind::White => (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            NoiseKind::Pink => pink(n, &mut rng),
            NoiseKind::Babble => babble(n, sample_rate, &mut rng),
        };
        let mut w = Waveform::from_samples(samples, sample_rate);
        let peak = w.peak();
        if peak > 0.0 {
            w.scale(1.0 / peak);
        }
        w
    }
}

fn pink(n: usize, rng: &mut SmallRng) -> Vec<f32> {
    // Voss–McCartney: sum of octave-spaced held white sources.
    const ROWS: usize = 12;
    let mut rows = [0.0f32; ROWS];
    for r in rows.iter_mut() {
        *r = rng.gen_range(-1.0..1.0);
    }
    (0..n)
        .map(|i| {
            for (b, r) in rows.iter_mut().enumerate() {
                if i % (1usize << b) == 0 {
                    *r = rng.gen_range(-1.0..1.0);
                }
            }
            rows.iter().sum::<f32>() / ROWS as f32
        })
        .collect()
}

fn babble(n: usize, sample_rate: u32, rng: &mut SmallRng) -> Vec<f32> {
    // Several overlapping "voices": slowly re-tuned formant pairs.
    const VOICES: usize = 6;
    let sr = sample_rate as f32;
    let mut freqs: Vec<(f32, f32)> = (0..VOICES)
        .map(|_| (rng.gen_range(200.0f32..900.0), rng.gen_range(900.0f32..2600.0)))
        .collect();
    let mut phases = [(0.0f32, 0.0f32); VOICES];
    let retune = (0.12 * sr) as usize; // ~120 ms syllable rate
    (0..n)
        .map(|i| {
            if i % retune.max(1) == 0 {
                for f in freqs.iter_mut() {
                    *f = (rng.gen_range(200.0..900.0), rng.gen_range(900.0..2600.0));
                }
            }
            let mut v = 0.0f32;
            for (vi, &(f1, f2)) in freqs.iter().enumerate() {
                let (p1, p2) = &mut phases[vi];
                *p1 += std::f32::consts::TAU * f1 / sr;
                *p2 += std::f32::consts::TAU * f2 / sr;
                v += p1.sin() + 0.6 * p2.sin();
            }
            v / (VOICES as f32 * 1.6)
        })
        .collect()
}

/// Mixes `noise` into `signal` scaled so the result has the requested
/// signal-to-noise ratio in dB, returning the noisy waveform.
///
/// The noise is cycled if shorter than the signal. A negative `snr_db`
/// makes the noise louder than the signal (the paper uses −6 dB).
///
/// # Panics
///
/// Panics if sample rates differ, `signal` is silent, or `noise` is empty.
pub fn mix_at_snr(signal: &Waveform, noise: &Waveform, snr_db: f64) -> Waveform {
    assert_eq!(signal.sample_rate(), noise.sample_rate(), "sample-rate mismatch");
    assert!(!noise.is_empty(), "noise buffer is empty");
    let signal_rms = signal.rms() as f64;
    assert!(signal_rms > 0.0, "cannot set SNR for a silent signal");
    let noise_rms = noise.rms() as f64;
    assert!(noise_rms > 0.0, "noise is silent");
    // SNR = 20 log10(s_rms / n_rms)  =>  n_rms_target = s_rms / 10^(SNR/20)
    let target = signal_rms / 10f64.powf(snr_db / 20.0);
    let gain = (target / noise_rms) as f32;
    let mut out = signal.clone();
    let ns = noise.samples();
    for (i, s) in out.samples_mut().iter_mut().enumerate() {
        *s += ns[i % ns.len()] * gain;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize) -> Waveform {
        Waveform::from_samples((0..n).map(|i| (i as f32 * 0.2).sin() * 0.5).collect(), 16_000)
    }

    #[test]
    fn generators_deterministic() {
        for kind in [NoiseKind::White, NoiseKind::Pink, NoiseKind::Babble] {
            let a = kind.generate(1024, 16_000, 5);
            let b = kind.generate(1024, 16_000, 5);
            assert_eq!(a, b, "{kind:?}");
            let c = kind.generate(1024, 16_000, 6);
            assert_ne!(a, c, "{kind:?} ignores seed");
        }
    }

    #[test]
    fn generators_normalised() {
        for kind in [NoiseKind::White, NoiseKind::Pink, NoiseKind::Babble] {
            let w = kind.generate(4096, 16_000, 1);
            assert!((w.peak() - 1.0).abs() < 1e-6, "{kind:?}");
        }
    }

    #[test]
    fn mix_achieves_requested_snr() {
        let signal = tone(8000);
        let noise = NoiseKind::White.generate(8000, 16_000, 3);
        for snr in [-6.0, 0.0, 10.0, 20.0] {
            let noisy = mix_at_snr(&signal, &noise, snr);
            // Recover the injected noise and measure its level.
            let injected: Vec<f32> =
                noisy.samples().iter().zip(signal.samples()).map(|(a, b)| a - b).collect();
            let injected = Waveform::from_samples(injected, 16_000);
            let measured = 20.0 * (signal.rms() as f64 / injected.rms() as f64).log10();
            assert!((measured - snr).abs() < 0.5, "wanted {snr}, got {measured}");
        }
    }

    #[test]
    fn negative_snr_noise_dominates() {
        let signal = tone(4000);
        let noise = NoiseKind::White.generate(4000, 16_000, 3);
        let noisy = mix_at_snr(&signal, &noise, -6.0);
        assert!(noisy.rms() > signal.rms());
    }

    #[test]
    #[should_panic(expected = "silent")]
    fn silent_signal_rejected() {
        let silent = Waveform::from_samples(vec![0.0; 100], 16_000);
        let noise = NoiseKind::White.generate(100, 16_000, 1);
        mix_at_snr(&silent, &noise, 0.0);
    }

    #[test]
    fn pink_has_more_low_frequency_energy_than_white() {
        // Compare energy below ~300 Hz via a crude running-mean filter.
        let low_energy = |w: &Waveform| {
            let k = 32;
            let s = w.samples();
            let mut acc = 0.0f64;
            for i in k..s.len() {
                let mean: f32 = s[i - k..i].iter().sum::<f32>() / k as f32;
                acc += (mean as f64) * (mean as f64);
            }
            acc / (s.len() - k) as f64
        };
        let rms_norm = |mut w: Waveform| {
            let r = w.rms();
            w.scale(1.0 / r);
            w
        };
        let pink = rms_norm(NoiseKind::Pink.generate(16_384, 16_000, 2));
        let white = rms_norm(NoiseKind::White.generate(16_384, 16_000, 2));
        assert!(low_energy(&pink) > 3.0 * low_energy(&white));
    }
}
