//! Joint (ensemble) white-box attack: craft one waveform that fools
//! *several* ASRs simultaneously.
//!
//! The paper treats multiple-ASR-effective (MAE) AEs as hypothetical and
//! synthesizes them at the feature-vector level (§V-H), citing Liu et
//! al.'s ensemble attacks in the image domain as the likely future route.
//! This module implements that route for the simulated ASRs: gradient
//! descent on the *sum* of per-model CTC losses (each backpropagated
//! through its own acoustic model and feature geometry), producing real
//! transferable audio AEs — which makes it possible to test the proactive
//! detector of §V-H against actual audio instead of synthetic vectors (see
//! the `exp_adaptive` experiment).

use mvp_asr::{Asr, TrainedAsr};
use mvp_audio::Waveform;
use mvp_textsim::wer;

use crate::report::AttackOutcome;
use crate::whitebox::WhiteBoxConfig;

/// Outcome of a joint attack.
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// The crafted waveform and target-model metrics (the first model in
    /// the ensemble is treated as the reporting target).
    pub outcome: AttackOutcome,
    /// Per-model success flags, in ensemble order.
    pub fooled: Vec<bool>,
}

impl JointOutcome {
    /// Whether every model in the ensemble was fooled.
    pub fn fools_all(&self) -> bool {
        self.fooled.iter().all(|&f| f)
    }
}

/// Runs the joint attack: optimise `host + δ` until **every** ASR in
/// `ensemble` transcribes it as `target_text` (or the iteration budget runs
/// out). `cfg.max_iters` applies per escalation attempt, as in the
/// single-model attack.
///
/// # Panics
///
/// Panics if `ensemble` or `host` is empty, or the target text has no
/// pronounceable words.
pub fn joint_attack(
    ensemble: &[&TrainedAsr],
    host: &Waveform,
    target_text: &str,
    cfg: &WhiteBoxConfig,
) -> JointOutcome {
    assert!(!ensemble.is_empty(), "empty ensemble");
    assert!(!host.is_empty(), "host audio is empty");
    let target = TrainedAsr::target_indices(target_text);
    assert!(!target.is_empty(), "target text has no phonemes");

    let n = host.len();
    let host_f64 = host.to_f64();
    let make_wave = |delta: &[f64]| -> Waveform {
        Waveform::from_samples(
            host_f64.iter().zip(delta).map(|(&h, &d)| (h + d) as f32).collect(),
            host.sample_rate(),
        )
    };
    let fooled_mask = |wave: &Waveform| -> Vec<bool> {
        ensemble.iter().map(|asr| wer(target_text, &asr.transcribe(wave)) == 0.0).collect()
    };

    let mut delta = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut last_loss = f64::INFINITY;
    let mut bound = cfg.linf_bound;
    let mut align = cfg.align_weight;
    let mut lr = cfg.learning_rate;

    for attempt in 0..=cfg.escalations {
        if attempt > 0 {
            bound *= 1.6;
            align *= 4.0;
            lr *= 1.5;
        }
        let (mut m, mut v) = (vec![0.0f64; n], vec![0.0f64; n]);
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        // Per-model weights: already-fooled models are kept warm at a low
        // weight while the optimiser concentrates on the stragglers —
        // plain loss summation lets one model dominate and the ensemble
        // oscillates between satisfying one and the other.
        let mut weights = vec![1.0f64; ensemble.len()];
        for it in 0..cfg.max_iters {
            iterations += 1;
            let wave = make_wave(&delta);
            let mut total_loss = 0.0;
            let mut grad = vec![0.0f64; n];
            for (asr, &w) in ensemble.iter().zip(&weights) {
                let (loss, g) = asr.attack_loss_and_input_grad(&wave, &target, align);
                if loss.is_finite() {
                    total_loss += w * loss;
                    for (a, b) in grad.iter_mut().zip(&g) {
                        *a += w * b;
                    }
                }
            }
            last_loss = total_loss;
            if it % cfg.check_every == 0 {
                let mask = fooled_mask(&wave);
                if mask.iter().all(|&f| f) {
                    let text = ensemble[0].transcribe(&wave);
                    return JointOutcome {
                        outcome: AttackOutcome::new(
                            host, wave, true, text, iterations, 0, total_loss,
                        ),
                        fooled: mask,
                    };
                }
                for (w, &f) in weights.iter_mut().zip(&mask) {
                    *w = if f { 0.25 } else { 1.0 };
                }
            }
            let t = (it + 1) as f64;
            for i in 0..n {
                let g = grad[i] + 2.0 * cfg.l2_penalty * delta[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mh = m[i] / (1.0 - b1.powf(t));
                let vh = v[i] / (1.0 - b2.powf(t));
                delta[i] -= lr * mh / (vh.sqrt() + eps);
                delta[i] = delta[i].clamp(-bound, bound);
            }
        }
        let wave = make_wave(&delta);
        if fooled_mask(&wave).iter().all(|&f| f) {
            break;
        }
    }

    let wave = make_wave(&delta);
    let mask = fooled_mask(&wave);
    let success = mask.iter().all(|&f| f);
    let text = ensemble[0].transcribe(&wave);
    JointOutcome {
        outcome: AttackOutcome::new(host, wave, success, text, iterations, 0, last_loss),
        fooled: mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::AsrProfile;
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_phonetics::Lexicon;

    #[test]
    fn joint_attack_on_twin_models_fools_both() {
        let ds0 = AsrProfile::Ds0.trained();
        let ds1 = AsrProfile::Ds1.trained();
        let synth = Synthesizer::new(16_000);
        let (host, _) = synth.synthesize(
            &Lexicon::builtin(),
            "the student found the book",
            &SpeakerProfile::default(),
        );
        let ensemble = [ds0.as_ref(), ds1.as_ref()];
        let out =
            joint_attack(&ensemble, &host, "unlock the garage", &WhiteBoxConfig::for_ensemble());
        assert!(out.fools_all(), "joint attack failed: {:?}", out.fooled);
        assert_eq!(ds0.transcribe(&out.outcome.adversarial), "unlock the garage");
        assert_eq!(ds1.transcribe(&out.outcome.adversarial), "unlock the garage");
    }

    #[test]
    #[should_panic(expected = "empty ensemble")]
    fn empty_ensemble_rejected() {
        let host = Waveform::from_samples(vec![0.1; 100], 16_000);
        joint_attack(&[], &host, "open the door", &WhiteBoxConfig::default());
    }
}
