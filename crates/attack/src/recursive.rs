//! Two-iteration recursive AE generation (paper §III).
//!
//! CommanderSong described generating an AE against one ASR, then using it
//! as the *host* for a second attack against a different ASR, hoping the
//! result fools both. The paper reproduced this and found the second attack
//! destroys the first one's effect; this module reproduces that experiment.

use mvp_asr::{Asr, TrainedAsr};
use mvp_audio::Waveform;
use mvp_textsim::wer;

use crate::report::AttackOutcome;
use crate::whitebox::{whitebox_attack, WhiteBoxConfig};

/// Result of the two-iteration recursive generation.
#[derive(Debug, Clone)]
pub struct RecursiveOutcome {
    /// First-iteration attack (against `asr_a`).
    pub first: AttackOutcome,
    /// Second-iteration attack (against `asr_b`, hosted on the first AE).
    pub second: AttackOutcome,
    /// Whether the final audio fools `asr_a` (the transfer hope).
    pub final_fools_a: bool,
    /// Whether the final audio fools `asr_b`.
    pub final_fools_b: bool,
}

/// Runs the two-iteration recursive generation of command `target_text`:
/// attack `asr_a` on `host`, then attack `asr_b` using the resulting AE as
/// host, and test which of the two models the final audio fools.
pub fn recursive_attack(
    asr_a: &TrainedAsr,
    asr_b: &TrainedAsr,
    host: &Waveform,
    target_text: &str,
    cfg: &WhiteBoxConfig,
) -> RecursiveOutcome {
    let first = whitebox_attack(asr_a, host, target_text, cfg);
    let second = whitebox_attack(asr_b, &first.adversarial, target_text, cfg);
    let final_fools_a = wer(target_text, &asr_a.transcribe(&second.adversarial)) == 0.0;
    let final_fools_b = wer(target_text, &asr_b.transcribe(&second.adversarial)) == 0.0;
    RecursiveOutcome { first, second, final_fools_a, final_fools_b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::AsrProfile;
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_phonetics::Lexicon;

    #[test]
    fn second_iteration_breaks_first_models_result() {
        let ds0 = AsrProfile::Ds0.trained();
        let ds1 = AsrProfile::Ds1.trained();
        let synth = Synthesizer::new(16_000);
        let (host, _) = synth.synthesize(
            &Lexicon::builtin(),
            "the teacher found the answer",
            &SpeakerProfile::default(),
        );
        let out =
            recursive_attack(&ds0, &ds1, &host, "open the front door", &WhiteBoxConfig::default());
        if out.second.success {
            // The final audio must fool the second model by construction.
            assert!(out.final_fools_b);
        }
        // Whether it *also* still fools the first model is the §III
        // transferability question; `exp_transfer` reports the measured
        // rate (the paper found essentially none). Twice-optimised audio is
        // the loudest AE this workspace produces, so no strict assertion
        // here — only consistency of the outcome record.
        assert_eq!(
            out.final_fools_a,
            wer("open the front door", &ds0.transcribe(&out.second.adversarial)) == 0.0
        );
    }
}
