//! White-box targeted attack (Carlini & Wagner style).
//!
//! Phase 1 minimises `CTC(f(x + δ), target) + c·‖δ‖²` over the perturbation
//! `δ` with Adam under an L∞ ball, the gradient flowing through the target
//! ASR's full differentiable pipeline
//! ([`TrainedAsr::ctc_loss_and_input_grad`]) — the simulated counterpart of
//! the paper's "MFCC reconstruction layer in the backpropagation
//! optimization". Phase 2 repeatedly *shrinks* the L∞ bound and
//! re-optimises, keeping the quietest perturbation that still transcribes
//! as the target (Carlini & Wagner's iterative bound reduction), which is
//! what pushes the host/AE similarity up.

use mvp_asr::{Asr, TrainedAsr};
use mvp_audio::Waveform;
use mvp_textsim::wer;

use crate::report::AttackOutcome;

/// White-box attack hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WhiteBoxConfig {
    /// Maximum Adam iterations in the initial phase.
    pub max_iters: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Weight of the `‖δ‖²` imperceptibility penalty.
    pub l2_penalty: f64,
    /// Initial hard L∞ bound on the perturbation.
    pub linf_bound: f64,
    /// Decode-and-check period (iterations).
    pub check_every: usize,
    /// Bound-shrinking rounds after the first success.
    pub shrink_rounds: usize,
    /// Iterations per shrinking round.
    pub shrink_iters: usize,
    /// Multiplicative bound reduction per round.
    pub shrink_factor: f64,
    /// Weight of the duration-aware frame-alignment auxiliary loss.
    pub align_weight: f64,
    /// Escalation retries: on failure, phase 1 reruns with the L∞ bound,
    /// alignment weight and step size scaled up (hosts whose strong
    /// formants overlap the target words need a louder perturbation; the
    /// shrink phase claws the similarity back afterwards).
    pub escalations: usize,
}

impl Default for WhiteBoxConfig {
    fn default() -> Self {
        WhiteBoxConfig {
            max_iters: 500,
            learning_rate: 1e-2,
            l2_penalty: 0.01,
            linf_bound: 0.14,
            check_every: 20,
            shrink_rounds: 6,
            shrink_iters: 150,
            shrink_factor: 0.7,
            align_weight: 3.0,
            escalations: 2,
        }
    }
}

impl WhiteBoxConfig {
    /// A budget suited to the joint ensemble attack
    /// ([`joint_attack`](crate::joint_attack)): fooling several models at
    /// once needs a larger perturbation ceiling, a stronger duration prior
    /// and more iterations than the single-model attack.
    pub fn for_ensemble() -> WhiteBoxConfig {
        WhiteBoxConfig {
            max_iters: 1200,
            linf_bound: 0.25,
            align_weight: 8.0,
            check_every: 10,
            ..WhiteBoxConfig::default()
        }
    }
}

struct Optimizer {
    m: Vec<f64>,
    v: Vec<f64>,
    t: f64,
    lr: f64,
}

impl Optimizer {
    fn new(n: usize, lr: f64) -> Optimizer {
        Optimizer { m: vec![0.0; n], v: vec![0.0; n], t: 0.0, lr }
    }

    /// One Adam step on `delta` with loss gradient `grad` plus the
    /// `l2 · ‖δ‖²` penalty, clipped to the L∞ `bound`.
    fn step(&mut self, delta: &mut [f64], grad: &[f64], l2: f64, bound: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1.0;
        // Bias corrections depend only on the step count; hoisting them
        // out of the element loop leaves a pure streaming update the
        // compiler can keep in vector lanes.
        let mc = 1.0 / (1.0 - B1.powf(self.t));
        let vc = 1.0 / (1.0 - B2.powf(self.t));
        let lr = self.lr;
        for ((d, &g0), (m, v)) in
            delta.iter_mut().zip(grad).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let g = g0 + 2.0 * l2 * *d;
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let mh = *m * mc;
            let vh = *v * vc;
            *d = (*d - lr * mh / (vh.sqrt() + EPS)).clamp(-bound, bound);
        }
    }
}

/// Runs the white-box attack on `host` so that `asr` transcribes the result
/// as `target_text`.
///
/// Success means the transcription matches the target with zero word error.
///
/// # Panics
///
/// Panics if `host` is empty or `target_text` has no pronounceable words.
pub fn whitebox_attack(
    asr: &TrainedAsr,
    host: &Waveform,
    target_text: &str,
    cfg: &WhiteBoxConfig,
) -> AttackOutcome {
    assert!(!host.is_empty(), "host audio is empty");
    let target = TrainedAsr::target_indices(target_text);
    assert!(!target.is_empty(), "target text has no phonemes");

    let n = host.len();
    let host_f64 = host.to_f64();
    let make_wave = |delta: &[f64]| -> Waveform {
        Waveform::from_samples(
            host_f64.iter().zip(delta).map(|(&h, &d)| (h + d) as f32).collect(),
            host.sample_rate(),
        )
    };
    let is_hit = |wave: &Waveform| -> Option<String> {
        let text = asr.transcribe(wave);
        (wer(target_text, &text) == 0.0).then_some(text)
    };

    let mut delta = vec![0.0f64; n];
    let mut iterations = 0;
    let mut last_loss = f64::INFINITY;
    let mut best: Option<(Vec<f64>, String, f64)> = None;

    // Phase 1: reach the target transcription, escalating the budget on
    // failure. The optimiser continues from the previous attempt's delta.
    let mut bound = cfg.linf_bound;
    let mut align_weight = cfg.align_weight;
    let mut lr = cfg.learning_rate;
    'attempts: for attempt in 0..=cfg.escalations {
        if attempt > 0 {
            bound *= 1.6;
            align_weight *= 4.0;
            lr *= 1.5;
        }
        let mut opt = Optimizer::new(n, lr);
        for it in 0..cfg.max_iters {
            iterations += 1;
            let wave = make_wave(&delta);
            let (loss, grad) = asr.attack_loss_and_input_grad(&wave, &target, align_weight);
            last_loss = loss;
            if it % cfg.check_every == 0 {
                if let Some(text) = is_hit(&wave) {
                    best = Some((delta.clone(), text, loss));
                    break 'attempts;
                }
            }
            opt.step(&mut delta, &grad, cfg.l2_penalty, bound);
        }
        // Final check at the attempt boundary.
        let wave = make_wave(&delta);
        if let Some(text) = is_hit(&wave) {
            best = Some((delta.clone(), text, last_loss));
            break;
        }
    }

    let Some((mut best_delta, mut best_text, mut best_loss)) = best else {
        let wave = make_wave(&delta);
        let text = asr.transcribe(&wave);
        return AttackOutcome::new(host, wave, false, text, iterations, 0, last_loss);
    };

    // Phase 2: shrink the bound while the attack keeps succeeding.
    for _ in 0..cfg.shrink_rounds {
        bound *= cfg.shrink_factor;
        let mut trial = best_delta.clone();
        for d in &mut trial {
            *d = d.clamp(-bound, bound);
        }
        let mut opt = Optimizer::new(n, cfg.learning_rate * 0.6);
        let mut hit: Option<(Vec<f64>, String, f64)> = None;
        for it in 0..cfg.shrink_iters {
            iterations += 1;
            let wave = make_wave(&trial);
            let (loss, grad) = asr.attack_loss_and_input_grad(&wave, &target, cfg.align_weight);
            if it % cfg.check_every == 0 {
                if let Some(text) = is_hit(&wave) {
                    hit = Some((trial.clone(), text, loss));
                    break;
                }
            }
            opt.step(&mut trial, &grad, cfg.l2_penalty, bound);
        }
        if hit.is_none() {
            let wave = make_wave(&trial);
            if let Some(text) = is_hit(&wave) {
                hit = Some((trial, text, last_loss));
            }
        }
        match hit {
            Some((d, t, l)) => {
                best_delta = d;
                best_text = t;
                best_loss = l;
            }
            None => break, // this bound is too tight; keep the previous best
        }
    }

    let wave = make_wave(&best_delta);
    AttackOutcome::new(host, wave, true, best_text, iterations, 0, best_loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::AsrProfile;
    use mvp_audio::synth::{SpeakerProfile, Synthesizer};
    use mvp_phonetics::Lexicon;

    fn host(text: &str) -> Waveform {
        let synth = Synthesizer::new(16_000);
        let (w, _) = synth.synthesize(&Lexicon::builtin(), text, &SpeakerProfile::default());
        w
    }

    #[test]
    fn attack_succeeds_and_is_quiet() {
        let asr = AsrProfile::Ds0.trained();
        let h = host("the woman found the book");
        // Sanity: the host is transcribed as itself, not the command.
        let benign_text = asr.transcribe(&h);
        assert_ne!(benign_text, "open the front door");
        let out = whitebox_attack(&asr, &h, "open the front door", &WhiteBoxConfig::default());
        assert!(out.success, "attack failed: {out}");
        assert_eq!(out.final_transcription, "open the front door");
        // Bound shrinking keeps the perturbation small relative to phase 1.
        // The attained similarity depends on the seeded model weights (and
        // thus on the exact kernel rounding), so the floor is deliberately
        // loose; this host currently lands at ≈ 0.80.
        assert!(out.similarity > 0.35, "similarity {}", out.similarity);
        // Double-check end to end: re-transcribe the stored waveform.
        assert_eq!(asr.transcribe(&out.adversarial), "open the front door");
    }

    #[test]
    fn attack_does_not_transfer_to_other_profiles() {
        let ds0 = AsrProfile::Ds0.trained();
        let gcs = AsrProfile::Gcs.trained();
        let h = host("the woman found the book");
        let out = whitebox_attack(&ds0, &h, "turn off the alarm", &WhiteBoxConfig::default());
        assert!(out.success, "attack failed: {out}");
        // GCS still hears something close to the host, not the command.
        let gcs_text = gcs.transcribe(&out.adversarial);
        assert_ne!(gcs_text, "turn off the alarm");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_host_rejected() {
        let asr = AsrProfile::Ds0.trained();
        whitebox_attack(&asr, &Waveform::new(16_000), "open the door", &WhiteBoxConfig::default());
    }
}
