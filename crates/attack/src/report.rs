//! Attack outcome record shared by all attack families.

use mvp_audio::{perturbation_similarity, perturbation_snr_db, Waveform};

/// The result of one attack attempt.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The (possibly unsuccessful) adversarial waveform.
    pub adversarial: Waveform,
    /// Whether the target ASR transcribed it as the target phrase.
    pub success: bool,
    /// The transcription the target ASR produced for the final waveform.
    pub final_transcription: String,
    /// Optimisation iterations (white-box) or generations (black-box) used.
    pub iterations: usize,
    /// Loss-value queries issued (black-box; 0 for white-box).
    pub queries: usize,
    /// Final CTC loss against the target phrase.
    pub final_loss: f64,
    /// The paper's percentage similarity between AE and host.
    pub similarity: f64,
    /// Signal-to-perturbation ratio in dB.
    pub snr_db: f64,
}

impl AttackOutcome {
    /// Assembles an outcome, computing the perturbation metrics.
    pub fn new(
        host: &Waveform,
        adversarial: Waveform,
        success: bool,
        final_transcription: String,
        iterations: usize,
        queries: usize,
        final_loss: f64,
    ) -> AttackOutcome {
        let similarity = perturbation_similarity(host, &adversarial);
        let snr_db = perturbation_snr_db(host, &adversarial);
        AttackOutcome {
            adversarial,
            success,
            final_transcription,
            iterations,
            queries,
            final_loss,
            similarity,
            snr_db,
        }
    }
}

impl std::fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} iters (loss {:.3}, similarity {:.2}%, SNR {:.1} dB) -> {:?}",
            if self.success { "SUCCESS" } else { "FAILURE" },
            self.iterations,
            self.final_loss,
            self.similarity * 100.0,
            self.snr_db,
            self.final_transcription,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_display() {
        let host = Waveform::from_samples(vec![0.5; 64], 16_000);
        let o = AttackOutcome::new(&host, host.clone(), false, "noise".into(), 3, 42, 9.0);
        let s = o.to_string();
        assert!(s.contains("FAILURE") && !s.contains("42")); // queries not in display
        assert_eq!(o.queries, 42);
        assert_eq!(o.similarity, 1.0); // identical waveforms
    }

    #[test]
    fn metrics_computed_from_waveforms() {
        let host = Waveform::from_samples(
            (0..400).map(|i| (i as f32 * 0.1).sin() * 0.5).collect(),
            16_000,
        );
        let mut ae = host.clone();
        for s in ae.samples_mut() {
            *s += 0.005;
        }
        let o = AttackOutcome::new(&host, ae, true, "x".into(), 10, 0, 0.5);
        assert!(o.similarity > 0.9 && o.similarity < 1.0);
        assert!(o.snr_db > 20.0);
        assert!(o.to_string().contains("SUCCESS"));
    }
}
