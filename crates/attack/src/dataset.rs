//! Batch generation of labelled AE datasets (paper Table II).
//!
//! Only *verified* AEs are kept — as in the paper, every dataset entry is
//! checked to fool the target model before inclusion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_asr::TrainedAsr;
use mvp_audio::Waveform;
use mvp_corpus::Utterance;

use crate::blackbox::{blackbox_attack, BlackBoxConfig};
use crate::whitebox::{whitebox_attack, WhiteBoxConfig};

/// Which attack family produced an AE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AeKind {
    /// Carlini & Wagner-style gradient attack.
    WhiteBox,
    /// Taori et al.-style genetic attack.
    BlackBox,
}

impl std::fmt::Display for AeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AeKind::WhiteBox => "white-box",
            AeKind::BlackBox => "black-box",
        })
    }
}

/// One verified adversarial example.
#[derive(Debug, Clone)]
pub struct GeneratedAe {
    /// The attack family.
    pub kind: AeKind,
    /// Ground-truth transcription of the host audio.
    pub host_text: String,
    /// The embedded command.
    pub command: String,
    /// The adversarial waveform (verified to fool the target ASR).
    pub wave: Waveform,
    /// Host/AE percentage similarity.
    pub similarity: f64,
}

/// Two-word command phrases used for black-box AEs (the paper notes the
/// genetic attack "only embeds up to two words in one audio").
pub fn blackbox_commands() -> Vec<&'static str> {
    vec!["call home", "stop music", "read email", "set timer", "delete files", "open door"]
}

/// Generates up to `count` verified AEs of `kind` against `target_asr`,
/// cycling through `hosts` and `commands` deterministically (skipping
/// host/command pairs whose attack fails verification).
///
/// # Panics
///
/// Panics if `hosts` or `commands` is empty.
pub fn generate_ae_dataset(
    target_asr: &TrainedAsr,
    hosts: &[Utterance],
    commands: &[&str],
    kind: AeKind,
    count: usize,
    seed: u64,
) -> Vec<GeneratedAe> {
    assert!(!hosts.is_empty(), "no host audio");
    assert!(!commands.is_empty(), "no commands");
    let mut rng = StdRng::seed_from_u64(seed);
    let wb_cfg = WhiteBoxConfig::default();
    let mut out = Vec::with_capacity(count);
    let mut attempt = 0usize;
    // Allow a bounded number of failures before giving up.
    let max_attempts = count * 3 + 10;
    while out.len() < count && attempt < max_attempts {
        let host = &hosts[attempt % hosts.len()];
        let command = commands[attempt % commands.len()];
        attempt += 1;
        if host.text == command {
            continue; // degenerate pair: nothing to attack
        }
        let outcome = match kind {
            AeKind::WhiteBox => whitebox_attack(target_asr, &host.wave, command, &wb_cfg),
            AeKind::BlackBox => {
                let bb_cfg = BlackBoxConfig { seed: rng.gen(), ..BlackBoxConfig::default() };
                blackbox_attack(target_asr, &host.wave, command, &bb_cfg)
            }
        };
        if outcome.success {
            out.push(GeneratedAe {
                kind,
                host_text: host.text.clone(),
                command: command.to_string(),
                wave: outcome.adversarial,
                similarity: outcome.similarity,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::{Asr, AsrProfile};
    use mvp_corpus::{CorpusBuilder, CorpusConfig};
    use mvp_textsim::wer;

    #[test]
    fn whitebox_dataset_entries_are_verified() {
        let asr = AsrProfile::Ds0.trained();
        let hosts = CorpusBuilder::new(CorpusConfig {
            size: 3,
            seed: 31_337,
            noise_prob: 0.0,
            ..CorpusConfig::default()
        })
        .build();
        let aes = generate_ae_dataset(
            &asr,
            hosts.utterances(),
            &["open the front door", "unlock the garage"],
            AeKind::WhiteBox,
            2,
            5,
        );
        assert_eq!(aes.len(), 2);
        for ae in &aes {
            assert_eq!(wer(&ae.command, &asr.transcribe(&ae.wave)), 0.0, "{}", ae.command);
            assert_ne!(ae.host_text, ae.command);
            assert!(ae.similarity > 0.2);
        }
    }

    #[test]
    fn blackbox_commands_are_two_words() {
        for c in blackbox_commands() {
            assert_eq!(c.split_whitespace().count(), 2, "{c}");
        }
    }

    #[test]
    #[should_panic(expected = "no host")]
    fn empty_hosts_rejected() {
        let asr = AsrProfile::Ds0.trained();
        generate_ae_dataset(&asr, &[], &["x"], AeKind::WhiteBox, 1, 1);
    }
}
