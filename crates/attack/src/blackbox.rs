//! Black-box targeted attack (Taori et al. style, structured genome).
//!
//! Taori et al. evolve raw waveform perturbations with a genetic algorithm
//! plus gradient estimation, spending on the order of 10⁵–10⁶ loss-value
//! queries per audio. That query budget is far outside this workspace's
//! single-core envelope, and an unstructured GA at a feasible budget never
//! leaves the flat region of the CTC loss. This implementation therefore
//! evolves a *structured* perturbation — a per-segment gain envelope over a
//! synthesized carrier of the target phrase plus a broadband noise genome —
//! which preserves the attack's essential properties (query-only access to
//! loss values and transcriptions, no gradients, markedly larger residual
//! perturbation than the white-box attack, two-word commands), while
//! fitting in ~10³–10⁴ queries. See DESIGN.md §2 for the substitution
//! rationale. The genome holds two piecewise-linear envelopes: a carrier
//! gain `g(t)` and a host attenuation `a(t)`, giving the perturbed audio
//! `a(t)·host + g(t)·carrier`. The GA penalises total perturbation energy
//! (injected carrier plus removed host), so the search settles on the
//! *quietest* modification that still flips the target ASR — which is what
//! keeps the result from trivially transferring to other ASRs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_asr::{Asr, TrainedAsr};
use mvp_audio::synth::{SpeakerProfile, Synthesizer};
use mvp_audio::Waveform;
use mvp_dsp::Mat;
use mvp_phonetics::Lexicon;
use mvp_textsim::wer;

use crate::report::AttackOutcome;

/// Black-box attack hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackBoxConfig {
    /// Population size.
    pub population: usize,
    /// Maximum GA generations.
    pub generations: usize,
    /// Individuals copied unchanged into the next generation.
    pub elite: usize,
    /// Per-gene mutation probability.
    pub mutation_p: f64,
    /// Mutation noise standard deviation (gain units).
    pub mutation_std: f64,
    /// Number of gain segments across the carrier.
    pub segments: usize,
    /// Maximum carrier gain (caps the injection loudness).
    pub max_gain: f64,
    /// Minimum host attenuation (1.0 keeps the host untouched).
    pub min_host: f64,
    /// Weight of the injection-energy penalty in the fitness.
    pub energy_penalty: f64,
    /// Decode-and-check period (generations).
    pub check_every: usize,
    /// NES refinement steps after the GA.
    pub nes_steps: usize,
    /// NES probes per step.
    pub nes_probes: usize,
    /// NES probe magnitude (gain units).
    pub nes_sigma: f64,
    /// NES step size.
    pub nes_lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlackBoxConfig {
    fn default() -> Self {
        BlackBoxConfig {
            population: 20,
            generations: 60,
            elite: 5,
            mutation_p: 0.25,
            mutation_std: 0.08,
            segments: 32,
            max_gain: 1.2,
            min_host: 0.0,
            energy_penalty: 8.0,
            check_every: 5,
            nes_steps: 25,
            nes_probes: 6,
            nes_sigma: 0.04,
            nes_lr: 0.08,
            seed: 11,
        }
    }
}

/// A carrier waveform fitted to the host length.
///
/// The carrier is re-synthesized at an adjusted *speaking rate* when it
/// would overrun the host — changing durations without shifting formant
/// frequencies (a naive resample would transpose the spectrum and garble
/// every phoneme) — then centred with zero padding.
fn make_carrier(target_text: &str, host: &Waveform) -> Vec<f64> {
    let synth = Synthesizer::new(host.sample_rate());
    let lex = Lexicon::builtin();
    // Render at a distinct pitch so the injection does not simply mask the
    // host speech.
    let base = SpeakerProfile { pitch_hz: 165.0, seed: 1234, ..SpeakerProfile::default() };
    let (raw, _) = synth.synthesize(&lex, target_text, &base);
    let n = host.len();
    let raw = if raw.len() > n {
        let rate = raw.len() as f32 / n as f32 * 1.05;
        let fast = SpeakerProfile { rate: base.rate * rate, ..base };
        synth.synthesize(&lex, target_text, &fast).0
    } else {
        raw
    };
    let mut out = vec![0.0f64; n];
    let offset = (n.saturating_sub(raw.len())) / 2;
    for (i, &s) in raw.samples().iter().enumerate() {
        if offset + i < n {
            out[offset + i] = f64::from(s);
        }
    }
    out
}

/// Expands per-segment gains to a per-sample envelope (piecewise linear).
fn envelope(gains: &[f64], n: usize) -> Vec<f64> {
    let k = gains.len();
    (0..n)
        .map(|i| {
            let pos = i as f64 / n as f64 * (k - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(k - 1);
            let frac = pos - lo as f64;
            gains[lo] * (1.0 - frac) + gains[hi] * frac
        })
        .collect()
}

/// Runs the black-box attack on `host` so that `asr` transcribes the result
/// as `target_text`. Only loss-value and transcription queries are issued.
///
/// # Panics
///
/// Panics if `host` is empty, the configuration is degenerate, or the
/// target text has no pronounceable words.
pub fn blackbox_attack(
    asr: &TrainedAsr,
    host: &Waveform,
    target_text: &str,
    cfg: &BlackBoxConfig,
) -> AttackOutcome {
    assert!(!host.is_empty(), "host audio is empty");
    assert!(cfg.population >= 4, "population too small");
    assert!(cfg.elite < cfg.population, "elite must be below population size");
    assert!(cfg.segments >= 2, "need at least two gain segments");
    let target = TrainedAsr::target_indices(target_text);
    assert!(!target.is_empty(), "target text has no phonemes");

    let n = host.len();
    let host_f64 = host.to_f64();
    let carrier = make_carrier(target_text, host);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut queries = 0usize;

    // Genome: [carrier gains (segments), host attenuations (segments)].
    let k = cfg.segments;
    let make_wave = |genome: &[f64]| -> Waveform {
        let g_env = envelope(&genome[..k], n);
        let a_env = envelope(&genome[k..], n);
        Waveform::from_samples(
            (0..n).map(|i| (a_env[i] * host_f64[i] + g_env[i] * carrier[i]) as f32).collect(),
            host.sample_rate(),
        )
    };
    // Perturbation energy: injected carrier plus removed host signal.
    let mean_energy = |genome: &[f64]| {
        let inject: f64 = genome[..k].iter().map(|g| g * g).sum::<f64>();
        let removed: f64 = genome[k..].iter().map(|a| (1.0 - a) * (1.0 - a)).sum::<f64>();
        (inject + removed) / k as f64
    };
    let fitness_of = |genome: &[f64], queries: &mut usize| -> f64 {
        *queries += 1;
        asr.ctc_loss(&make_wave(genome), &target) + cfg.energy_penalty * mean_energy(genome)
    };
    let clamp_gene = |idx: usize, v: f64| -> f64 {
        if idx < k {
            v.clamp(0.0, cfg.max_gain)
        } else {
            v.clamp(cfg.min_host, 1.0)
        }
    };

    // Initial population: carrier faded in at varying levels, host ducked
    // to varying degrees (some individuals start near the trivial pure
    // carrier solution so the GA always has a working ancestor to refine).
    let mut population = Mat::zeros(0, 2 * k);
    for p in 0..cfg.population {
        let g0 = 0.2 + 0.8 * p as f64 / cfg.population as f64;
        let a0 = 1.0 - g0 * 0.9;
        let genome: Vec<f64> = (0..2 * k)
            .map(|i| {
                let base = if i < k { g0 } else { a0 };
                clamp_gene(i, base + rng.gen_range(-0.1..0.1))
            })
            .collect();
        population.push_row(&genome);
    }
    let mut fitness: Vec<f64> = population.rows().map(|g| fitness_of(g, &mut queries)).collect();

    // Refinement: given a successful genome, shrink the perturbation while
    // the attack keeps succeeding — first a binary search on a global blend
    // toward the identity genome (g = 0, a = 1), then greedy per-gene
    // reductions. Mirrors the white-box bound-shrinking phase with
    // query-only access.
    let identity: Vec<f64> = (0..2 * k).map(|i| if i < k { 0.0 } else { 1.0 }).collect();
    let minimise = |genome: Vec<f64>,
                    rng: &mut StdRng,
                    queries: &mut usize,
                    iterations: usize|
     -> AttackOutcome {
        let still_hits = |g: &[f64], queries: &mut usize| -> Option<String> {
            *queries += 1;
            let text = asr.transcribe(&make_wave(g));
            (wer(target_text, &text) == 0.0).then_some(text)
        };
        let blend = |lam: f64, from: &[f64]| -> Vec<f64> {
            from.iter().zip(&identity).map(|(&g, &id)| id + lam * (g - id)).collect()
        };
        let mut best = genome;
        // Binary search the smallest working global blend.
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..7 {
            let mid = (lo + hi) / 2.0;
            if still_hits(&blend(mid, &best), queries).is_some() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        best = blend(hi, &best);
        // Greedy per-gene pass in random order.
        let mut order: Vec<usize> = (0..2 * k).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            let mut trial = best.clone();
            trial[i] = identity[i] + 0.4 * (trial[i] - identity[i]);
            if still_hits(&trial, queries).is_some() {
                best = trial;
            }
        }
        let wave = make_wave(&best);
        let text = asr.transcribe(&wave);
        *queries += 1;
        let loss = asr.ctc_loss(&wave, &target);
        *queries += 1;
        AttackOutcome::new(host, wave, true, text, iterations, *queries, loss)
    };

    let mut generations_used = 0;
    for gen in 0..cfg.generations {
        generations_used = gen + 1;
        let mut order: Vec<usize> = (0..population.n_rows()).collect();
        order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
        let mut sorted = Mat::zeros(0, 2 * k);
        for &i in &order {
            sorted.push_row(population.row(i));
        }

        if gen % cfg.check_every == 0 {
            let text = asr.transcribe(&make_wave(sorted.row(0)));
            queries += 1;
            if wer(target_text, &text) == 0.0 {
                return minimise(sorted.row(0).to_vec(), &mut rng, &mut queries, generations_used);
            }
        }

        let mut next = Mat::zeros(0, 2 * k);
        for e in 0..cfg.elite {
            next.push_row(sorted.row(e));
        }
        while next.n_rows() < cfg.population {
            let half = (cfg.population / 2).max(2);
            let pa = sorted.row(rng.gen_range(0..half));
            let pb = sorted.row(rng.gen_range(0..half));
            let mut child: Vec<f64> =
                pa.iter().zip(pb).map(|(&a, &b)| if rng.gen_bool(0.5) { a } else { b }).collect();
            for (i, c) in child.iter_mut().enumerate() {
                if rng.gen_bool(cfg.mutation_p) {
                    *c += rng.gen_range(-1.0..1.0) * cfg.mutation_std * 3.0;
                }
                *c = clamp_gene(i, *c);
            }
            next.push_row(&child);
        }
        population = next;
        fitness = population.rows().map(|g| fitness_of(g, &mut queries)).collect();
    }

    // NES refinement on the best envelope.
    let mut order: Vec<usize> = (0..population.n_rows()).collect();
    order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
    let mut best = population.row(order[0]).to_vec();
    let mut best_fit = fitness[order[0]];
    for step in 0..cfg.nes_steps {
        let mut grad = vec![0.0f64; 2 * k];
        for _ in 0..cfg.nes_probes {
            let u: Vec<f64> = (0..2 * k).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
            let probe: Vec<f64> = best
                .iter()
                .zip(&u)
                .enumerate()
                .map(|(i, (&g, &ui))| clamp_gene(i, g + cfg.nes_sigma * ui))
                .collect();
            let f = fitness_of(&probe, &mut queries);
            let w = (f - best_fit) / cfg.nes_sigma;
            for (gr, &ui) in grad.iter_mut().zip(&u) {
                *gr += w * ui / cfg.nes_probes as f64;
            }
        }
        for (i, (g, gr)) in best.iter_mut().zip(&grad).enumerate() {
            *g = clamp_gene(i, *g - cfg.nes_lr * gr);
        }
        best_fit = fitness_of(&best, &mut queries);
        if step % cfg.check_every == 0 {
            let text = asr.transcribe(&make_wave(&best));
            queries += 1;
            if wer(target_text, &text) == 0.0 {
                return minimise(best, &mut rng, &mut queries, generations_used + step + 1);
            }
        }
    }

    let wave = make_wave(&best);
    let text = asr.transcribe(&wave);
    if wer(target_text, &text) == 0.0 {
        return minimise(best, &mut rng, &mut queries, generations_used + cfg.nes_steps);
    }
    AttackOutcome::new(host, wave, false, text, generations_used + cfg.nes_steps, queries, best_fit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_asr::AsrProfile;

    fn host(text: &str) -> Waveform {
        let synth = Synthesizer::new(16_000);
        let (w, _) = synth.synthesize(&Lexicon::builtin(), text, &SpeakerProfile::default());
        w
    }

    #[test]
    fn blackbox_succeeds_on_two_word_command() {
        let asr = AsrProfile::Ds0.trained();
        let h = host("the man found the book");
        let out = blackbox_attack(&asr, &h, "call home", &BlackBoxConfig::default());
        assert!(out.success, "attack failed: {out}");
        assert_eq!(out.final_transcription, "call home");
        assert!(out.queries > 50);
        // Black-box perturbations are larger than white-box (paper: 94.6%
        // vs 99.9% similarity): ours are audible injections.
        assert!(out.similarity < 0.98);
    }

    #[test]
    fn envelope_interpolates_linearly() {
        let env = envelope(&[0.0, 1.0], 5);
        assert!((env[0] - 0.0).abs() < 1e-12);
        assert!((env[4] - 0.8).abs() < 1e-12);
        for w in env.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn carrier_matches_host_length() {
        let h = host("good morning");
        let c = make_carrier("call home", &h);
        assert_eq!(c.len(), h.len());
        assert!(c.iter().any(|&v| v.abs() > 0.01));
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_rejected() {
        let asr = AsrProfile::Ds0.trained();
        let h = Waveform::from_samples(vec![0.1; 100], 16_000);
        blackbox_attack(
            &asr,
            &h,
            "call home",
            &BlackBoxConfig { population: 2, ..BlackBoxConfig::default() },
        );
    }
}
