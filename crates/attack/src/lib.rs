#![warn(missing_docs)]

//! Audio adversarial example generation.
//!
//! Implements the two attack families the paper's AE dataset is built from
//! (Table II), plus the auxiliary constructions its experiments need:
//!
//! - [`whitebox`]: the Carlini & Wagner-style targeted attack — gradient
//!   descent on the CTC loss toward an attacker-chosen phrase, with the
//!   gradient backpropagated through the target ASR's acoustic model *and*
//!   MFCC pipeline into the waveform, under an L∞ imperceptibility bound;
//! - [`blackbox`]: the Taori et al.-style attack — a genetic algorithm over
//!   waveform perturbations with a gradient-estimation refinement phase,
//!   using only loss-value queries;
//! - [`noise`]: non-targeted AEs built by mixing noise at a target SNR
//!   until the word error rate exceeds a threshold (paper §V-J);
//! - [`recursive`]: the CommanderSong-style two-iteration recursive
//!   generation used in the paper's Section III transferability study;
//! - [`dataset`]: parallel batch generation of labelled AE datasets.
//!
//! # Examples
//!
//! ```no_run
//! use mvp_asr::AsrProfile;
//! use mvp_attack::whitebox::{whitebox_attack, WhiteBoxConfig};
//! use mvp_audio::synth::{SpeakerProfile, Synthesizer};
//! use mvp_phonetics::Lexicon;
//!
//! let asr = AsrProfile::Ds0.trained();
//! let synth = Synthesizer::new(16_000);
//! let (host, _) = synth.synthesize(&Lexicon::builtin(), "i wish you wouldn't", &SpeakerProfile::default());
//! let out = whitebox_attack(&asr, &host, "open the front door", &WhiteBoxConfig::default());
//! assert!(out.success);
//! ```

pub mod blackbox;
pub mod dataset;
pub mod joint;
pub mod noise;
pub mod recursive;
pub mod report;
pub mod whitebox;

pub use blackbox::{blackbox_attack, BlackBoxConfig};
pub use dataset::{blackbox_commands, generate_ae_dataset, AeKind, GeneratedAe};
pub use joint::{joint_attack, JointOutcome};
pub use noise::nontargeted_ae;
pub use recursive::{recursive_attack, RecursiveOutcome};
pub use report::AttackOutcome;
pub use whitebox::{whitebox_attack, WhiteBoxConfig};
