//! Minimal JSON building and parsing — the workspace has no serde, and
//! the observability plane both emits (audit records, benchmark
//! artifacts) and consumes (smoke gates, baseline comparisons) JSON.
//!
//! The builder produces one compact object per call chain; the parser is
//! a strict recursive-descent reader for complete documents. Both cover
//! exactly the JSON this workspace writes: objects, arrays, strings
//! (with escapes), finite numbers, booleans and null.

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted JSON string with escapes.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for one JSON object, written in field order.
///
/// ```
/// let line = mvp_obs::JsonObj::new()
///     .str("event", "verdict")
///     .u64("request", 17)
///     .bool("cache", false)
///     .finish();
/// assert_eq!(line, r#"{"event":"verdict","request":17,"cache":false}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> JsonObj {
        JsonObj { buf: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> JsonObj {
        self.key(k);
        write_escaped(&mut self.buf, v);
        self
    }

    /// Adds a string field, `null` when `None`.
    pub fn opt_str(self, k: &str, v: Option<&str>) -> JsonObj {
        match v {
            Some(v) => self.str(k, v),
            None => self.null(k),
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> JsonObj {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn f64(mut self, k: &str, v: f64) -> JsonObj {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a float field, `null` when `None`.
    pub fn opt_f64(self, k: &str, v: Option<f64>) -> JsonObj {
        match v {
            Some(v) => self.f64(k, v),
            None => self.null(k),
        }
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> JsonObj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a boolean field, `null` when `None`.
    pub fn opt_bool(self, k: &str, v: Option<bool>) -> JsonObj {
        match v {
            Some(v) => self.bool(k, v),
            None => self.null(k),
        }
    }

    /// Adds an explicit `null` field.
    pub fn null(mut self, k: &str) -> JsonObj {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Adds a field whose value is already-serialised JSON (a nested
    /// object or array built elsewhere).
    pub fn raw(mut self, k: &str, v: &str) -> JsonObj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes and returns the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a position-annotated description of the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(code)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| format!("bad \\u escape at byte {pos}"))?);
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let slice = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrips_through_parser() {
        let line = JsonObj::new()
            .str("event", "verdict \"quoted\"\n")
            .u64("request", 17)
            .f64("score", 0.25)
            .opt_f64("missing", None)
            .bool("cache", true)
            .raw("aux", "[1,2,3]")
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("verdict \"quoted\"\n"));
        assert_eq!(v.get("request").unwrap().as_f64(), Some(17.0));
        assert_eq!(v.get("score").unwrap().as_f64(), Some(0.25));
        assert!(v.get("missing").unwrap().is_null());
        assert_eq!(v.get("cache").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("aux").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn parses_nesting_and_unicode() {
        let v = parse(r#"{"a":[{"b":null},-1.5e2,"\u00e9\ud83d\ude00"],"c":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert!(arr[0].get("b").unwrap().is_null());
        assert_eq!(arr[1].as_f64(), Some(-150.0));
        assert_eq!(arr[2].as_str(), Some("é😀"));
        assert_eq!(v.get("c"), Some(&Value::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"\\q\"", "{}{}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObj::new().f64("x", f64::NAN).f64("y", f64::INFINITY).finish();
        let v = parse(&line).unwrap();
        assert!(v.get("x").unwrap().is_null());
        assert!(v.get("y").unwrap().is_null());
    }

    proptest::proptest! {
        #[test]
        fn escaped_strings_roundtrip(s in "[\"\\a-zA-Z0-9 \t\néλ]{0,40}") {
            let line = JsonObj::new().str("s", &s).finish();
            let v = parse(&line).unwrap();
            proptest::prop_assert_eq!(v.get("s").unwrap().as_str(), Some(s.as_str()));
        }
    }
}
