//! Named metrics — counters, gauges, log₂-bucketed histograms — behind a
//! [`Registry`] with a Prometheus-style text exposition.
//!
//! Handles are `Arc`-backed and freely cloneable: a subsystem registers
//! its metrics once, keeps the handles on its hot path (updates are
//! single relaxed atomic operations, no lock, no name lookup), and any
//! observer renders the registry on demand. There is exactly one storage
//! cell per metric, so a point-in-time snapshot and the exposition can
//! never disagree.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A monotone counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that moves both ways (e.g. queue depth).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one. Callers order their inc/dec so this never
    /// underflows (the serve ingress gauge increments before enqueue).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the quantile edge error at
/// `2^-SUB_BITS` (25%) instead of the 2× a pure log₂ histogram gives.
const SUB_BITS: u32 = 2;

/// Values below `LINEAR` get one exact bucket each (they have fewer
/// significant bits than the sub-bucket split needs).
const LINEAR: usize = 8;

/// Total bucket count: the exact low range plus 4 sub-buckets for every
/// octave from bit-length 4 (values ≥ 8) through 64 (`u64::MAX`).
const BUCKETS: usize = LINEAR + 61 * (1 << SUB_BITS);

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

// [AtomicU64; 252] is past the derive(Default) array limit.
impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Maps a value to its log-linear bucket: exact below [`LINEAR`], then
/// indexed by (octave, top-two-mantissa-bits) above it.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR as u64 {
        return value as usize;
    }
    let bits = 64 - value.leading_zeros() as usize; // 4..=64
    let sub = ((value >> (bits - 1 - SUB_BITS as usize)) & ((1 << SUB_BITS) - 1)) as usize;
    LINEAR + (bits - 4) * (1 << SUB_BITS) + sub
}

/// Inclusive upper edge of bucket `i` (the value `quantile_micros`
/// reports when the quantile rank falls in that bucket).
fn bucket_upper_edge(i: usize) -> u64 {
    if i < LINEAR {
        return i as u64;
    }
    let octave = (i - LINEAR) >> SUB_BITS; // bit length − 4
    let sub = ((i - LINEAR) & ((1 << SUB_BITS) - 1)) as u128;
    let lower = (1u128 << (octave + 3)) + sub * (1u128 << (octave + 1));
    let upper = lower + (1u128 << (octave + 1));
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// A concurrent log-linear histogram: exact buckets below [`LINEAR`],
/// then each power-of-two octave split into 4 linear sub-buckets, so
/// bucket edges are within 25% of any recorded value.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one duration as microseconds.
    pub fn record(&self, latency: Duration) {
        self.record_value(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one raw value.
    pub fn record_value(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0 when empty). For latencies this is
    /// microseconds.
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.0.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Largest recorded value.
    pub fn max_micros(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0 < q <= 1`): the upper edge of the
    /// bucket containing the quantile rank, i.e. within 25% of the true
    /// value. Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_edge(i);
            }
        }
        self.max_micros()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics. Registration is get-or-create: asking
/// twice for the same name returns handles to the same cell, so there is
/// never more than one source of truth per name.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            return entry.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Registers (or retrieves) a counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.get_or_insert(name, help, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Registers (or retrieves) a gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.get_or_insert(name, help, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Registers (or retrieves) a histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.get_or_insert(name, help, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Renders every metric as Prometheus-style text exposition lines, in
    /// registration order. Histograms expose cumulative `_bucket{le=…}`
    /// lines plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for e in entries.iter() {
            if !e.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            }
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.metric.type_name()));
            match &e.metric {
                Metric::Counter(c) => out.push_str(&format!("{} {}\n", e.name, c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{} {}\n", e.name, g.get())),
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bucket) in h.0.buckets.iter().enumerate() {
                        let n = bucket.load(Ordering::Relaxed);
                        // The cumulative series loses nothing by skipping
                        // empty buckets, and 252 log-linear buckets would
                        // swamp the exposition otherwise.
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            e.name,
                            bucket_upper_edge(i),
                            cumulative
                        ));
                    }
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", e.name, h.count()));
                    out.push_str(&format!("{}_sum {}\n", e.name, h.0.sum.load(Ordering::Relaxed)));
                    out.push_str(&format!("{}_count {}\n", e.name, h.count()));
                }
            }
        }
        out
    }

    /// Metric names in registration order.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.iter().map(|e| e.name.clone()).collect()
    }
}

/// Periodically dumps a registry's text exposition to a file (write to a
/// temp sibling, then rename, so readers never see a torn file). Dropping
/// the writer stops the thread after one final dump.
#[derive(Debug)]
pub struct SnapshotWriter {
    stop: Option<Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotWriter {
    /// Starts writing `registry`'s exposition to `path` every `interval`.
    pub fn start(registry: Arc<Registry>, path: PathBuf, interval: Duration) -> SnapshotWriter {
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("obs-snapshot".into())
            .spawn(move || {
                let write = |registry: &Registry| {
                    let tmp = path.with_extension("tmp");
                    if std::fs::write(&tmp, registry.render_text()).is_ok() {
                        let _ = std::fs::rename(&tmp, &path);
                    }
                };
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => write(&registry),
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                            write(&registry);
                            return;
                        }
                    }
                }
            })
            .expect("spawn snapshot writer");
        SnapshotWriter { stop: Some(stop_tx), handle: Some(handle) }
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("requests_total", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same cell.
        assert_eq!(r.counter("requests_total", "").get(), 5);
        let g = r.gauge("depth", "queue depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::new();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_micros(0.5);
        assert!((5_000..=10_000).contains(&p50), "p50 {p50}");
        assert!(h.quantile_micros(0.99) >= 100_000);
        assert_eq!(h.max_micros(), 100_000);
        let (p50, p95, p99) =
            (h.quantile_micros(0.5), h.quantile_micros(0.95), h.quantile_micros(0.99));
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn quantile_edges_stay_within_a_quarter_of_the_value() {
        // Regression: the old pure power-of-two buckets reported the p50
        // of a 700µs-dominated stream as 1024µs (46% high). The linear
        // sub-buckets cap the edge error at 25%.
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_value(700);
        }
        for _ in 0..10 {
            h.record_value(1_000_000);
        }
        let p50 = h.quantile_micros(0.5);
        assert_eq!(p50, 768, "p50 edge {p50}");
        assert!((p50 as f64 - 700.0) / 700.0 <= 0.25);
        // The tail quantile still brackets the slow mode.
        let p99 = h.quantile_micros(0.99);
        assert!((1_000_000..=1_250_000).contains(&p99), "p99 edge {p99}");
    }

    #[test]
    fn bucket_mapping_is_monotone_and_tight() {
        // Exact below the linear cutoff.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_edge(bucket_index(v)), v);
        }
        // Above it: the edge is an upper bound within 25%, and indices
        // never decrease as values grow.
        let mut prev_idx = 0usize;
        for &v in &[8u64, 9, 15, 16, 100, 700, 5_000, 1 << 20, (1 << 40) + 7, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index regressed at {v}");
            assert!(idx < BUCKETS);
            let edge = bucket_upper_edge(idx);
            assert!(edge >= v, "edge {edge} below value {v}");
            assert!(edge as f64 <= v as f64 * 1.25, "edge {edge} too loose for {v}");
            prev_idx = idx;
        }
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0.0);
    }

    #[test]
    fn exposition_is_parseable_and_cumulative() {
        let r = Registry::new();
        r.counter("a_total", "a counter").add(3);
        r.gauge("b", "a gauge").set(7);
        let h = r.histogram("lat_micros", "latency");
        h.record_value(3);
        h.record_value(100);
        let text = r.render_text();
        assert!(text.contains("# TYPE a_total counter\na_total 3\n"));
        assert!(text.contains("# TYPE b gauge\nb 7\n"));
        assert!(text.contains("# TYPE lat_micros histogram\n"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_micros_sum 103\n"));
        assert!(text.contains("lat_micros_count 2\n"));
        // Bucket counts are cumulative: 100 lands in the [96, 112)
        // sub-bucket, whose line covers both observations.
        assert!(text.contains("lat_micros_bucket{le=\"112\"} 2\n"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn snapshot_writer_writes_and_stops() {
        let dir = std::env::temp_dir().join(format!("mvp-obs-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let registry = Arc::new(Registry::new());
        registry.counter("ticks_total", "").add(9);
        let writer =
            SnapshotWriter::start(Arc::clone(&registry), path.clone(), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(30));
        drop(writer); // final dump + join
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("ticks_total 9"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
