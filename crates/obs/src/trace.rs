//! Span tracing: named, monotonically timestamped intervals with parent
//! links, collected into a global bounded ring buffer.
//!
//! ```
//! mvp_obs::trace::enable(1024);
//! {
//!     let _outer = mvp_obs::span!("detect");
//!     let _inner = mvp_obs::span!("detect.similarity");
//! } // guards record on drop, innermost first
//! let spans = mvp_obs::trace::drain();
//! assert_eq!(spans.len(), 2);
//! mvp_obs::trace::validate(&spans).unwrap();
//! mvp_obs::trace::disable();
//! ```
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** [`span`] loads one relaxed atomic and
//!    returns an inert guard; no clock read, no allocation, no lock.
//! 2. **Thread safety.** Any thread may record; the sink is a single
//!    mutex-guarded ring (spans finish at most once per request stage, so
//!    the lock is far off the critical path) and recovers from poisoning.
//! 3. **Bounded memory.** The ring holds a fixed capacity; overflow drops
//!    the *oldest* events and counts them ([`dropped`]).
//!
//! Timestamps are microseconds on the monotonic clock since the process
//! trace epoch (first use), so spans from different threads are directly
//! comparable and never go backwards.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique id (process-wide, monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name, e.g. `"asr.decode"`.
    pub name: &'static str,
    /// Caller-supplied correlation tag (request id, batch id, … — 0 when
    /// untagged).
    pub tag: u64,
    /// Start, in microseconds since the trace epoch.
    pub start_micros: u64,
    /// End, in microseconds since the trace epoch (`>= start_micros`).
    pub end_micros: u64,
}

impl SpanEvent {
    /// Span duration in microseconds.
    pub fn duration_micros(&self) -> u64 {
        self.end_micros - self.start_micros
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

struct Sink {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

static SINK: Mutex<Sink> = Mutex::new(Sink { events: VecDeque::new(), capacity: 0, dropped: 0 });

fn sink() -> MutexGuard<'static, Sink> {
    // A panic mid-push cannot leave the ring structurally broken, so
    // poisoning is recovered rather than propagated.
    SINK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_micros() -> u64 {
    epoch().elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Turns tracing on with a ring buffer of `capacity` spans (minimum 1).
/// Already-collected events are kept; capacity changes apply immediately.
pub fn enable(capacity: usize) {
    epoch(); // pin the epoch before the first span
    let mut sink = sink();
    sink.capacity = capacity.max(1);
    while sink.events.len() > sink.capacity {
        sink.events.pop_front();
        sink.dropped += 1;
    }
    drop(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Turns tracing off. In-flight guards finish silently; collected events
/// remain readable via [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether tracing is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Removes and returns every collected span, oldest first.
pub fn drain() -> Vec<SpanEvent> {
    sink().events.drain(..).collect()
}

/// Discards every collected span and resets the drop counter.
pub fn clear() {
    let mut sink = sink();
    sink.events.clear();
    sink.dropped = 0;
}

/// Spans evicted by ring overflow since the last [`clear`].
pub fn dropped() -> u64 {
    sink().dropped
}

/// Opens an untagged span. See [`span_tagged`].
pub fn span(name: &'static str) -> SpanGuard {
    span_tagged(name, 0)
}

/// Opens a span named `name` carrying correlation `tag`. The returned
/// guard records the span into the ring when dropped; while it lives,
/// spans opened on the same thread become its children. When tracing is
/// disabled this is a single relaxed atomic load.
pub fn span_tagged(name: &'static str, tag: u64) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { active: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    SpanGuard { active: Some(ActiveSpan { id, parent, name, tag, start_micros: now_micros() }) }
}

/// Convenience macro: `span!("name")` or `span!("name", tag)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
    ($name:expr, $tag:expr) => {
        $crate::trace::span_tagged($name, $tag)
    };
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    tag: u64,
    start_micros: u64,
}

/// An open span; records itself on drop. Inert (and free) when tracing
/// was disabled at creation.
#[derive(Debug)]
#[must_use = "a span measures the scope of the guard binding"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let end_micros = now_micros();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards normally drop innermost-first; a leaked or reordered
            // guard only affects parent attribution, never correctness.
            if let Some(pos) = s.iter().rposition(|&id| id == span.id) {
                s.remove(pos);
            }
        });
        let mut sink = sink();
        if sink.capacity == 0 {
            return; // enabled() never ran: nowhere to record
        }
        if sink.events.len() == sink.capacity {
            sink.events.pop_front();
            sink.dropped += 1;
        }
        sink.events.push_back(SpanEvent {
            id: span.id,
            parent: span.parent,
            name: span.name,
            tag: span.tag,
            start_micros: span.start_micros,
            end_micros,
        });
    }
}

/// Checks that `events` form a well-formed span forest: unique ids,
/// `start <= end`, and every parented span nested strictly inside a
/// present parent's interval.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate(events: &[SpanEvent]) -> Result<(), String> {
    let mut by_id = std::collections::HashMap::with_capacity(events.len());
    for e in events {
        if e.end_micros < e.start_micros {
            return Err(format!("span {} ({}) ends before it starts", e.id, e.name));
        }
        if by_id.insert(e.id, e).is_some() {
            return Err(format!("duplicate span id {}", e.id));
        }
    }
    for e in events {
        if let Some(pid) = e.parent {
            let Some(p) = by_id.get(&pid) else {
                return Err(format!("span {} ({}) has missing parent {pid}", e.id, e.name));
            };
            if e.start_micros < p.start_micros || e.end_micros > p.end_micros {
                return Err(format!(
                    "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                    e.id,
                    e.name,
                    e.start_micros,
                    e.end_micros,
                    p.id,
                    p.name,
                    p.start_micros,
                    p.end_micros
                ));
            }
        }
    }
    Ok(())
}

/// Renders `events` as an indented forest (children under parents, both
/// in start order) with durations — the `detect_wav --trace` output.
pub fn render_tree(events: &[SpanEvent]) -> String {
    let mut children: std::collections::HashMap<Option<u64>, Vec<&SpanEvent>> =
        std::collections::HashMap::new();
    let ids: std::collections::HashSet<u64> = events.iter().map(|e| e.id).collect();
    for e in events {
        // A parent evicted from the ring leaves its children as roots.
        let key = e.parent.filter(|p| ids.contains(p));
        children.entry(key).or_default().push(e);
    }
    for list in children.values_mut() {
        list.sort_by_key(|e| (e.start_micros, e.id));
    }
    let mut out = String::new();
    let mut stack: Vec<(&SpanEvent, usize)> = children
        .get(&None)
        .map(|roots| roots.iter().rev().map(|&e| (e, 0)).collect())
        .unwrap_or_default();
    while let Some((e, depth)) = stack.pop() {
        out.push_str(&"  ".repeat(depth));
        out.push_str(e.name);
        if e.tag != 0 {
            out.push_str(&format!(" #{}", e.tag));
        }
        out.push_str(&format!(" — {} µs\n", e.duration_micros()));
        if let Some(kids) = children.get(&Some(e.id)) {
            for &kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global, so every test runs under one lock.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = exclusive();
        disable();
        clear();
        {
            let _s = span("quiet");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_links_parents_and_validates() {
        let _gate = exclusive();
        enable(64);
        clear();
        {
            let _a = span!("outer");
            {
                let _b = span!("inner", 7);
            }
            let _c = span!("sibling");
        }
        disable();
        let events = drain();
        assert_eq!(events.len(), 3);
        validate(&events).unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let sibling = events.iter().find(|e| e.name == "sibling").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(inner.tag, 7);
        // Drop order: inner finishes before its parent records.
        let tree = render_tree(&events);
        assert!(tree.starts_with("outer"));
        assert!(tree.contains("  inner #7"));
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let _gate = exclusive();
        enable(4);
        clear();
        for _ in 0..10 {
            let _s = span("tick");
        }
        disable();
        assert_eq!(dropped(), 6);
        assert_eq!(drain().len(), 4);
    }

    #[test]
    fn spans_from_many_threads_validate() {
        let _gate = exclusive();
        enable(4096);
        clear();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for _ in 0..32 {
                        let _outer = span_tagged("thread.outer", t);
                        let _inner = span!("thread.inner");
                    }
                });
            }
        });
        disable();
        let events = drain();
        assert_eq!(events.len(), 4 * 32 * 2);
        validate(&events).unwrap();
        // Parents never cross threads: every inner's parent is an outer.
        for e in events.iter().filter(|e| e.name == "thread.inner") {
            let p = events.iter().find(|p| Some(p.id) == e.parent).unwrap();
            assert_eq!(p.name, "thread.outer");
        }
    }

    #[test]
    fn validate_rejects_escaping_child() {
        let mk = |id, parent, start, end| SpanEvent {
            id,
            parent,
            name: "x",
            tag: 0,
            start_micros: start,
            end_micros: end,
        };
        assert!(validate(&[mk(1, None, 10, 20), mk(2, Some(1), 5, 15)]).is_err());
        assert!(validate(&[mk(1, None, 10, 20), mk(2, Some(3), 12, 15)]).is_err());
        assert!(validate(&[mk(1, None, 10, 20), mk(2, Some(1), 12, 15)]).is_ok());
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let _gate = exclusive();
        enable(64);
        clear();
        {
            let _a = span("first");
        }
        {
            let _b = span("second");
        }
        disable();
        let events = drain();
        assert!(events[0].start_micros <= events[1].start_micros);
        assert!(events.iter().all(|e| e.end_micros >= e.start_micros));
    }
}
