#![warn(missing_docs)]

//! mvp-obs: the observability plane for the MVP-EARS workspace.
//!
//! Three independent facilities, all dependency-free and safe to leave
//! compiled into production binaries:
//!
//! - [`trace`] — lightweight span tracing. A [`span!`] guard records a
//!   named, monotonically timestamped interval (with parent links via a
//!   thread-local span stack) into a global bounded ring buffer. When
//!   tracing is disabled — the default — taking a span costs one relaxed
//!   atomic load and no allocation, so instrumentation can live on hot
//!   paths permanently.
//! - [`metrics`] — named [`Counter`]s, [`Gauge`]s and log₂-bucketed
//!   [`Histogram`]s behind a [`Registry`] that renders a Prometheus-style
//!   text exposition, plus a [`SnapshotWriter`] that dumps the exposition
//!   to a file on a fixed interval.
//! - [`audit`] — an append-only JSONL [`AuditLog`] with bounded size
//!   rotation, used by serving layers to record one structured,
//!   offline-reconstructible record per verdict.
//!
//! [`json`] holds the tiny hand-rolled JSON builder/parser the other
//! modules (and their tests) share; the workspace has no serde.

pub mod audit;
pub mod json;
pub mod metrics;
pub mod trace;

pub use audit::AuditLog;
pub use json::{JsonObj, Value};
pub use metrics::{Counter, Gauge, Histogram, Registry, SnapshotWriter};
pub use trace::{SpanEvent, SpanGuard};
