//! The verdict audit log: append-only JSONL with bounded rotation.
//!
//! One line per event, flushed per append so a crash loses at most the
//! line being written. When the active file would exceed the byte budget
//! it is rotated to `<path>.1` (replacing the previous rotation), so the
//! log never holds more than two generations ≈ `2 × max_bytes` on disk.
//! Writers on any thread share one lock; poisoning is recovered.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A bounded, rotating JSONL audit log.
#[derive(Debug)]
pub struct AuditLog {
    path: PathBuf,
    max_bytes: u64,
    state: Mutex<State>,
    lines: AtomicU64,
}

#[derive(Debug)]
struct State {
    file: File,
    written: u64,
}

impl AuditLog {
    /// Opens (appending) or creates the log at `path`, rotating once the
    /// active file exceeds `max_bytes` (minimum 1 KiB). Parent
    /// directories are created.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened.
    pub fn create(path: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<AuditLog> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(AuditLog {
            path,
            max_bytes: max_bytes.max(1024),
            state: Mutex::new(State { file, written }),
            lines: AtomicU64::new(0),
        })
    }

    /// The active log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Where the previous generation lives after a rotation.
    pub fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Lines appended through this handle (not counting pre-existing
    /// file content).
    pub fn lines_written(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Appends one record (a complete JSON object, no trailing newline)
    /// and flushes. Rotates first when the active file is over budget.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the log stays usable (a failed
    /// rotation falls back to appending in place).
    pub fn append(&self, line: &str) -> std::io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.written > 0 && state.written + line.len() as u64 + 1 > self.max_bytes {
            // Replace the previous generation; on any failure keep
            // appending to the oversized active file rather than losing
            // the record.
            let _ = std::fs::remove_file(self.rotated_path());
            if std::fs::rename(&self.path, self.rotated_path()).is_ok() {
                if let Ok(file) = OpenOptions::new().create(true).append(true).open(&self.path) {
                    state.file = file;
                    state.written = 0;
                }
            }
        }
        state.file.write_all(line.as_bytes())?;
        state.file.write_all(b"\n")?;
        state.file.flush()?;
        state.written += line.len() as u64 + 1;
        self.lines.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvp-obs-audit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn appends_parseable_jsonl() {
        let dir = temp_dir("basic");
        let log = AuditLog::create(dir.join("audit.jsonl"), 1 << 20).unwrap();
        for i in 0..5u64 {
            let line = crate::JsonObj::new().str("event", "verdict").u64("request", i).finish();
            log.append(&line).unwrap();
        }
        assert_eq!(log.lines_written(), 5);
        let text = std::fs::read_to_string(log.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("request").unwrap().as_f64(), Some(i as f64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_disk_usage() {
        let dir = temp_dir("rotate");
        let log = AuditLog::create(dir.join("audit.jsonl"), 1024).unwrap();
        let line = crate::JsonObj::new().str("pad", &"x".repeat(100)).finish();
        for _ in 0..64 {
            log.append(&line).unwrap();
        }
        let active = std::fs::metadata(log.path()).unwrap().len();
        let rotated = std::fs::metadata(log.rotated_path()).unwrap().len();
        assert!(active <= 1024 + line.len() as u64 + 1, "active {active}");
        assert!(rotated <= 1024 + line.len() as u64 + 1, "rotated {rotated}");
        // Both generations still parse line by line.
        for path in [log.path().to_path_buf(), log.rotated_path()] {
            for l in std::fs::read_to_string(path).unwrap().lines() {
                crate::json::parse(l).unwrap();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_appends() {
        let dir = temp_dir("reopen");
        let path = dir.join("audit.jsonl");
        AuditLog::create(&path, 1 << 20).unwrap().append("{\"n\":1}").unwrap();
        AuditLog::create(&path, 1 << 20).unwrap().append("{\"n\":2}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_stay_line_atomic() {
        let dir = temp_dir("concurrent");
        let log = std::sync::Arc::new(AuditLog::create(dir.join("audit.jsonl"), 1 << 20).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let line = crate::JsonObj::new().u64("thread", t).u64("seq", i).finish();
                        log.append(&line).unwrap();
                    }
                });
            }
        });
        let text = std::fs::read_to_string(log.path()).unwrap();
        assert_eq!(text.lines().count(), 200);
        for l in text.lines() {
            crate::json::parse(l).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
