//! Item-index invariants over the real workspace and over random
//! fn-item soup: every fn span must sit inside its file, nest properly
//! (two spans either disjoint or strictly containing), and own exactly
//! the call sites attributed to it. The call graph is only as good as
//! these spans — a drifted span misattributes calls and silently bends
//! reachability.

use std::fs;
use std::path::Path;

use proptest::collection::vec;
use proptest::prelude::*;

use mvp_lint::items::ItemIndex;
use mvp_lint::source::SourceFile;
use mvp_lint::workspace;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn check_invariants(files: &[SourceFile], index: &ItemIndex) {
    for (id, f) in index.fns.iter().enumerate() {
        let file = &files[f.file];
        assert!(
            f.start < f.end && f.end <= file.text.len(),
            "{}: fn `{}` span {}..{} out of bounds ({} bytes)",
            file.rel,
            f.name,
            f.start,
            f.end,
            file.text.len()
        );
        assert!(!f.name.is_empty(), "{}: unnamed fn item", file.rel);
        // Spans in one file nest or are disjoint — never partially
        // overlap — so innermost-fn attribution is well-defined.
        for other in index.fns.iter().skip(id + 1).filter(|o| o.file == f.file) {
            let disjoint = other.start >= f.end || other.end <= f.start;
            let nested = (f.start <= other.start && other.end <= f.end)
                || (other.start <= f.start && f.end <= other.end);
            assert!(
                disjoint || nested,
                "{}: fn `{}` {}..{} and `{}` {}..{} partially overlap",
                file.rel,
                f.name,
                f.start,
                f.end,
                other.name,
                other.start,
                other.end
            );
        }
    }
    for call in &index.calls {
        if let Some(caller) = call.caller {
            let f = &index.fns[caller];
            assert_eq!(call.file, f.file, "call attributed across files");
            assert!(
                f.start <= call.offset && call.offset < f.end,
                "call `{}` at {} attributed to `{}` spanning {}..{}",
                call.callee,
                call.offset,
                f.name,
                f.start,
                f.end
            );
            assert_eq!(
                index.fn_at(call.file, call.offset),
                Some(caller),
                "caller must be the innermost fn at the call offset"
            );
        }
    }
}

#[test]
fn item_spans_hold_over_every_workspace_file() {
    let walked = workspace::lintable_files(workspace_root()).expect("walk workspace");
    assert!(walked.len() > 100, "workspace walk looks broken: only {} files", walked.len());
    let files: Vec<SourceFile> = walked
        .iter()
        .map(|wf| {
            let text = fs::read_to_string(&wf.abs).expect("readable source");
            SourceFile::parse(&wf.rel, &text).unwrap_or_else(|e| panic!("{}: {e}", wf.rel))
        })
        .collect();
    let index = ItemIndex::build(&files);
    assert!(index.fns.len() > 500, "workspace should index many fns: {}", index.fns.len());
    assert!(index.calls.len() > 1000, "workspace should see many calls: {}", index.calls.len());
    check_invariants(&files, &index);
}

/// Item-shaped fragments: fns at module level, fns in impls, nested
/// fns, closures, calls of every shape, and test scaffolding.
const ITEM_FRAGMENTS: &[&str] = &[
    "fn free_a() { helper(); }\n",
    "pub fn free_b(x: u32) -> u32 { x.checked_mul(2).unwrap_or(x) }\n",
    "fn outer() { fn inner() { leaf(); } inner(); }\n",
    "struct S;\nimpl S { fn method(&self) { self.other(); } fn other(&self) {} }\n",
    "trait T { fn t(&self); }\nimpl T for S { fn t(&self) { free_a(); } }\n",
    "fn with_closure() { let f = |x: u32| helper(x); f(1); }\n",
    "fn qualified() { mvp_dsp::kernel::dot(&[], &[]); }\n",
    "fn turbofish() { parse::<u32>(\"1\"); }\n",
    "const K: usize = 4;\n",
    "// fn commented_out() { panic!(\"not real\"); }\n",
    "fn stringy() { let _ = \"fn fake() { call_in_string(); }\"; }\n",
    "#[cfg(test)]\nmod tests { #[test] fn t_helper() { super::free_a(); } }\n",
    "fn generic<A: Clone>(a: A) -> A { a.clone() }\n",
    "mod inner_mod { pub fn modfn() { } }\n",
];

proptest! {
    #[test]
    fn item_spans_hold_over_random_item_soup(
        parts in vec(proptest::sample::select(ITEM_FRAGMENTS.to_vec()), 0..24),
    ) {
        let src: String = parts.concat();
        let file = SourceFile::parse("crates/core/src/soup.rs", &src)
            .unwrap_or_else(|e| panic!("parse failed on {src:?}: {e}"));
        let files = vec![file];
        let index = ItemIndex::build(&files);
        check_invariants(&files, &index);
    }
}
