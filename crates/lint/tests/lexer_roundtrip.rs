//! The lexer's load-bearing invariant, checked two ways: every `.rs`
//! file the workspace walk can reach must lex, and the token stream
//! must reproduce the file byte-for-byte (token text plus whitespace
//! gaps). A lexer gap here would silently blind every rule.

use std::fs;
use std::path::Path;

use proptest::collection::vec;
use proptest::prelude::*;

use mvp_lint::lexer::{lex, roundtrip_ok};
use mvp_lint::workspace;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn every_workspace_file_lexes_and_round_trips() {
    let files = workspace::lintable_files(workspace_root()).expect("walk workspace");
    assert!(files.len() > 100, "workspace walk looks broken: only {} files", files.len());
    for wf in &files {
        let text = fs::read_to_string(&wf.abs).expect("readable source");
        let tokens = lex(&text).unwrap_or_else(|e| panic!("{}: lex failed: {e}", wf.rel));
        roundtrip_ok(&text, &tokens)
            .unwrap_or_else(|e| panic!("{}: roundtrip failed: {e}", wf.rel));
    }
}

/// Source-shaped fragments: every tricky lexeme class the lexer
/// distinguishes, composed in random order with random whitespace.
const FRAGMENTS: &[&str] = &[
    "fn f()",
    "let x = 1;",
    "// line comment\n",
    "/* block /* nested */ comment */",
    "\"str with \\\" escape\"",
    "r#\"raw \" string\"#",
    "b\"bytes\"",
    "'c'",
    "'\\n'",
    "'lifetime",
    "&'a str",
    "1_000.5e-3",
    "0xfe",
    "x..=y",
    "x as u32",
    "vec![0u8; n]",
    "#[cfg(test)]",
    "mod m { }",
    "a().b::<T>()",
    "\u{1F980} \"🦀 in a string\"",
];

proptest! {
    #[test]
    fn random_fragment_soup_round_trips(
        parts in vec(proptest::sample::select(FRAGMENTS.to_vec()), 0..40),
        seps in vec(proptest::sample::select(vec![" ", "\n", "\t", "\n\n", ""]), 0..40),
    ) {
        // An empty separator may not fuse two lexemes into a third
        // (e.g. `e-3` + `r#"..."#` becomes a suffixed number that eats
        // the raw string's `r`): that is real Rust tokenization, not a
        // lexer gap, so space those joins out.
        let fuses = |prev: &str, next: &str| {
            let tail_joins = prev
                .chars()
                .last()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let head_joins = next
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '\'');
            tail_joins && head_joins
        };
        let mut src = String::new();
        for (i, p) in parts.iter().enumerate() {
            src.push_str(p);
            let sep = seps.get(i).copied().unwrap_or("\n");
            let next = parts.get(i + 1).copied().unwrap_or("");
            if sep.is_empty() && fuses(p, next) {
                src.push(' ');
            } else {
                src.push_str(sep);
            }
        }
        let tokens = lex(&src).unwrap_or_else(|e| panic!("lex failed on {src:?}: {e}"));
        roundtrip_ok(&src, &tokens)
            .unwrap_or_else(|e| panic!("roundtrip failed on {src:?}: {e}"));
    }
}
