//! Reporter surface tests: the `--list-rules` table is asserted
//! verbatim (a new rule cannot ship without a doc line), and the JSON
//! report must parse back through `mvp_obs::json`.

use mvp_lint::engine::LintReport;
use mvp_lint::report;
use mvp_lint::{Diagnostic, Severity};
use mvp_obs::json;

/// Golden copy of the rule table. Adding, renaming or re-documenting a
/// rule must update this test alongside DESIGN.md §8.
const LIST_RULES_GOLDEN: &str = "\
nested-vec-f64           deny   numeric crates carry matrices as contiguous Mat, never Vec<Vec<f64>>, outside tests
kernel-discipline        deny   hot numeric paths call mvp_dsp::kernel, never the scalar oracles directly, outside tests
serve-no-panic           deny   no unwrap/expect/panic!/unreachable! in crates/serve request-path code (loadgen exempt)
lock-discipline          deny   in crates/serve, .lock() may appear only inside SharedCache::with (poison recovery)
channel-discipline       deny   in crates/serve, channels must be bounded: no unbounded()/mpsc::channel()
unbounded-with-capacity  warn   in audio/artifact parsers, with_capacity/vec![..; n] from parsed values needs a prior limit check (heuristic)
numeric-truncation       deny   byte-format codecs (wav, artifact) and the quantization plane (ml quant, dsp kernels) must not narrow integers with `as`; use try_into or the saturating helpers
persist-schema           deny   every `impl Persist for T` declares a `SCHEMA_VERSION` const for its wire format
todo-markers             deny   no todo!/unimplemented!/dbg! anywhere in non-test workspace code
suppression-hygiene      deny   every mvp-lint marker is a well-formed allow(<known-rule>) -- <reason>
";

#[test]
fn list_rules_matches_golden() {
    assert_eq!(report::list_rules(), LIST_RULES_GOLDEN);
}

fn sample_report() -> LintReport {
    LintReport {
        diagnostics: vec![
            Diagnostic {
                rule: "todo-markers",
                severity: Severity::Deny,
                path: "crates/core/src/x.rs".to_string(),
                line: 3,
                col: 9,
                message: "todo!() left in non-test code".to_string(),
            },
            Diagnostic {
                rule: "unbounded-with-capacity",
                severity: Severity::Warn,
                path: "crates/audio/src/wav.rs".to_string(),
                line: 41,
                col: 5,
                message: "allocation sized by `n` with no visible limit check".to_string(),
            },
        ],
        files_scanned: 7,
        suppressed: 2,
    }
}

#[test]
fn json_report_parses_and_carries_counts() {
    let doc = report::json(&sample_report());
    let v = json::parse(&doc).expect("reporter emits valid JSON");
    assert_eq!(v.get("tool").and_then(|t| t.as_str()), Some("mvp-lint"));
    assert_eq!(v.get("files_scanned").and_then(json::Value::as_f64), Some(7.0));
    assert_eq!(v.get("deny").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(v.get("warn").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(v.get("suppressed").and_then(json::Value::as_f64), Some(2.0));
    let findings = v.get("findings").and_then(json::Value::as_arr).expect("array");
    assert_eq!(findings.len(), 2);
    assert_eq!(findings[0].get("rule").and_then(|r| r.as_str()), Some("todo-markers"));
    assert_eq!(findings[1].get("line").and_then(json::Value::as_f64), Some(41.0));
}

#[test]
fn human_report_lists_findings_then_summary() {
    let text = report::human(&sample_report());
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert_eq!(
        lines[0],
        "crates/core/src/x.rs:3:9: [deny] todo-markers: todo!() left in non-test code"
    );
    assert_eq!(lines[2], "mvp-lint: 7 file(s) scanned, 1 deny, 1 warn, 2 suppressed");
}
