//! Reporter surface tests: the `--list-rules` table is asserted
//! verbatim (a new rule cannot ship without a doc line), the JSON
//! report must parse back through `mvp_obs::json`, and interprocedural
//! findings must render their call-chain evidence in both reporters.

use mvp_lint::diag::ChainHop;
use mvp_lint::engine::LintReport;
use mvp_lint::report;
use mvp_lint::{Diagnostic, Severity};
use mvp_obs::json;

/// Golden copy of the rule table: per-file rules, then workspace rules,
/// then the engine-owned hygiene rule. Adding, renaming or
/// re-documenting a rule must update this test alongside DESIGN.md §8.
const LIST_RULES_GOLDEN: &str = "\
nested-vec-f64           deny   numeric crates carry matrices as contiguous Mat, never Vec<Vec<f64>>, outside tests
kernel-discipline        deny   hot numeric paths call mvp_dsp::kernel, never the scalar oracles directly, outside tests
lock-discipline          deny   in crates/serve, .lock() may appear only inside SharedCache::with (poison recovery)
channel-discipline       deny   in crates/serve, channels must be bounded: no unbounded()/mpsc::channel()
unbounded-with-capacity  warn   in audio/artifact parsers, with_capacity/vec![..; n] from parsed values needs a prior limit check (heuristic)
numeric-truncation       deny   byte-format codecs (wav, artifact) and the quantization plane (ml quant, dsp kernels) must not narrow integers with `as`; use try_into or the saturating helpers
persist-schema           deny   every `impl Persist for T` declares a `SCHEMA_VERSION` const for its wire format
todo-markers             deny   no todo!/unimplemented!/dbg! anywhere in non-test workspace code
panic-path               deny   no panic!/unreachable!/unwrap/expect reachable from serve request entry points (interprocedural; indexing also denied inside crates/serve; loadgen exempt)
float-ordering           deny   scoring/decoding comparators use f64::total_cmp, never partial_cmp(..).unwrap()/expect()
hot-path-alloc           deny   no heap allocation (Vec/Box/String ctors, with_capacity, to_vec, clone, format!, vec!) reachable from scratch-plan *_into fns or kernel-plane entry points
suppression-hygiene      deny   every mvp-lint marker is a well-formed allow(<known-rule>) -- <reason>
";

#[test]
fn list_rules_matches_golden() {
    assert_eq!(report::list_rules(), LIST_RULES_GOLDEN);
}

#[test]
fn every_rule_has_an_explain_page() {
    for line in LIST_RULES_GOLDEN.lines() {
        let name = line.split_whitespace().next().expect("rule name");
        let page = report::explain(name).unwrap_or_else(|| panic!("no --explain page: {name}"));
        assert!(page.starts_with(name), "{name}: page should open with the rule name");
        assert!(page.len() > name.len() + 20, "{name}: explain page is too thin");
    }
    assert!(report::explain("no-such-rule").is_none());
}

fn sample_report() -> LintReport {
    LintReport {
        diagnostics: vec![
            Diagnostic {
                rule: "todo-markers",
                severity: Severity::Deny,
                path: "crates/core/src/x.rs".to_string(),
                line: 3,
                col: 9,
                message: "todo!() left in non-test code".to_string(),
                chain: Vec::new(),
            },
            Diagnostic {
                rule: "panic-path",
                severity: Severity::Deny,
                path: "crates/asr/src/y.rs".to_string(),
                line: 12,
                col: 5,
                message: ".unwrap() reachable from serve entry `submit`".to_string(),
                chain: vec![
                    ChainHop {
                        path: "crates/serve/src/engine.rs".to_string(),
                        line: 100,
                        fn_name: "submit".to_string(),
                    },
                    ChainHop {
                        path: "crates/serve/src/engine.rs".to_string(),
                        line: 120,
                        fn_name: "transcribe".to_string(),
                    },
                ],
            },
            Diagnostic {
                rule: "unbounded-with-capacity",
                severity: Severity::Warn,
                path: "crates/audio/src/wav.rs".to_string(),
                line: 41,
                col: 5,
                message: "allocation sized by `n` with no visible limit check".to_string(),
                chain: Vec::new(),
            },
        ],
        files_scanned: 7,
        suppressed: 2,
        graph_nodes: 40,
        graph_edges: 90,
    }
}

#[test]
fn json_report_parses_and_carries_counts() {
    let doc = report::json(&sample_report());
    let v = json::parse(&doc).expect("reporter emits valid JSON");
    assert_eq!(v.get("tool").and_then(|t| t.as_str()), Some("mvp-lint"));
    assert_eq!(v.get("files_scanned").and_then(json::Value::as_f64), Some(7.0));
    assert_eq!(v.get("graph_nodes").and_then(json::Value::as_f64), Some(40.0));
    assert_eq!(v.get("graph_edges").and_then(json::Value::as_f64), Some(90.0));
    assert_eq!(v.get("deny").and_then(json::Value::as_f64), Some(2.0));
    assert_eq!(v.get("warn").and_then(json::Value::as_f64), Some(1.0));
    assert_eq!(v.get("suppressed").and_then(json::Value::as_f64), Some(2.0));
    let findings = v.get("findings").and_then(json::Value::as_arr).expect("array");
    assert_eq!(findings.len(), 3);
    assert_eq!(findings[0].get("rule").and_then(|r| r.as_str()), Some("todo-markers"));
    assert_eq!(findings[2].get("line").and_then(json::Value::as_f64), Some(41.0));
}

#[test]
fn json_report_carries_call_chains() {
    let doc = report::json(&sample_report());
    let v = json::parse(&doc).expect("valid JSON");
    let findings = v.get("findings").and_then(json::Value::as_arr).expect("array");
    let empty = findings[0].get("chain").and_then(json::Value::as_arr).expect("chain array");
    assert!(empty.is_empty(), "per-file findings carry an empty chain");
    let chain = findings[1].get("chain").and_then(json::Value::as_arr).expect("chain array");
    assert_eq!(chain.len(), 2);
    assert_eq!(chain[0].get("fn").and_then(|f| f.as_str()), Some("submit"));
    assert_eq!(chain[0].get("line").and_then(json::Value::as_f64), Some(100.0));
    assert_eq!(chain[1].get("fn").and_then(|f| f.as_str()), Some("transcribe"));
}

#[test]
fn human_report_lists_findings_chains_then_summary() {
    let text = report::human(&sample_report());
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    assert_eq!(
        lines[0],
        "crates/core/src/x.rs:3:9: [deny] todo-markers: todo!() left in non-test code"
    );
    assert_eq!(lines[2], "    via submit (crates/serve/src/engine.rs:100)");
    assert_eq!(lines[3], "    via transcribe (crates/serve/src/engine.rs:120)");
    assert_eq!(
        lines[5],
        "mvp-lint: 7 file(s) scanned, 40 fn(s) / 90 edge(s) in call graph, 2 deny, 1 warn, 2 suppressed"
    );
}
