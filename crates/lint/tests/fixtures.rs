//! Per-rule fixture tests: every rule must flag its `bad.rs` fixture
//! and stay silent on its `good.rs` twin. Fixtures live under
//! `crates/lint/fixtures/<rule>/` — a directory the workspace walk
//! never visits, so the intentional violations cannot fail the gate.
//!
//! Each fixture is linted under a *virtual* workspace-relative path
//! that puts the rule in scope, exactly as `applies_to` would see a
//! real file.

use mvp_lint::lint_source;

/// (rule, virtual path) pairs; the path must satisfy the rule's
/// `applies_to` so a scoping regression shows up as a missing finding.
const CASES: &[(&str, &str)] = &[
    ("nested-vec-f64", "crates/core/src/fixture.rs"),
    ("kernel-discipline", "crates/asr/src/fixture.rs"),
    ("lock-discipline", "crates/serve/src/fixture.rs"),
    ("channel-discipline", "crates/serve/src/fixture.rs"),
    ("unbounded-with-capacity", "crates/audio/src/fixture.rs"),
    ("numeric-truncation", "crates/audio/src/wav.rs"),
    ("numeric-truncation", "crates/ml/src/quant.rs"),
    ("numeric-truncation", "crates/dsp/src/kernel.rs"),
    ("persist-schema", "crates/artifact/src/fixture.rs"),
    ("todo-markers", "crates/core/src/fixture.rs"),
    ("suppression-hygiene", "crates/core/src/fixture.rs"),
    // Workspace (interprocedural) rules: linted over the single-file
    // workspace the fixture itself seeds with entry points.
    ("panic-path", "crates/serve/src/fixture.rs"),
    ("float-ordering", "crates/asr/src/fixture.rs"),
    ("hot-path-alloc", "crates/dsp/src/fixture.rs"),
];

fn fixture(rule: &str, which: &str) -> String {
    let path = format!("{}/fixtures/{rule}/{which}.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn every_rule_flags_its_bad_fixture() {
    for &(rule, rel) in CASES {
        let text = fixture(rule, "bad");
        let diags = lint_source(rel, &text, Some(rule)).expect("fixture lexes");
        assert!(!diags.is_empty(), "{rule}: bad.rs produced no findings under {rel}");
        assert!(
            diags.iter().all(|d| d.rule == rule),
            "{rule}: bad.rs produced findings from other rules: {diags:?}"
        );
    }
}

#[test]
fn every_rule_passes_its_good_fixture() {
    for &(rule, rel) in CASES {
        let text = fixture(rule, "good");
        let diags = lint_source(rel, &text, Some(rule)).expect("fixture lexes");
        assert!(diags.is_empty(), "{rule}: good.rs should be clean under {rel}, got: {diags:?}");
    }
}

#[test]
fn bad_fixture_findings_carry_position_and_message() {
    let text = fixture("todo-markers", "bad");
    let diags =
        lint_source("crates/core/src/fixture.rs", &text, Some("todo-markers")).expect("lexes");
    for d in &diags {
        assert!(d.line >= 1 && d.col >= 1, "1-based positions: {d:?}");
        assert!(!d.message.is_empty(), "message must not be empty: {d:?}");
        assert_eq!(d.path, "crates/core/src/fixture.rs");
    }
}

#[test]
fn panic_path_findings_carry_chain_evidence() {
    let text = fixture("panic-path", "bad");
    let diags =
        lint_source("crates/serve/src/fixture.rs", &text, Some("panic-path")).expect("lexes");
    assert!(diags.len() >= 3, "expect indexing + unwrap + panic findings, got {diags:?}");
    for d in &diags {
        assert!(!d.chain.is_empty(), "interprocedural finding without a chain: {d:?}");
        assert_eq!(d.chain[0].fn_name, "submit", "chains start at the entry point: {d:?}");
    }
    let deepest = diags.iter().map(|d| d.chain.len()).max().unwrap_or(0);
    assert!(deepest >= 3, "the panic! chain should pass through dispatch and decode: {diags:?}");
}

#[test]
fn suppression_hygiene_bad_fixture_covers_each_defect() {
    let text = fixture("suppression-hygiene", "bad");
    let diags = lint_source("crates/core/src/fixture.rs", &text, Some("suppression-hygiene"))
        .expect("lexes");
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("no reason")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unknown rule")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("malformed")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("no rules")), "{msgs:?}");
}
