//! The merge invariant: the workspace itself lints clean. Every
//! violation is either fixed or carries a reasoned suppression, so the
//! CI gate (`lint --fail-on=deny`) passes on every commit.

use std::path::Path;

use mvp_lint::{lint_workspace, Severity};

#[test]
fn workspace_is_clean_at_both_gates() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let report = lint_workspace(root, None).expect("lint workspace");
    assert!(
        report.files_scanned > 100,
        "walk looks broken: only {} files scanned",
        report.files_scanned
    );
    assert!(
        !report.fails_at(Severity::Warn),
        "workspace must lint clean; findings:\n{}",
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(
        report.suppressed > 0,
        "the workspace carries known reasoned suppressions; zero means they stopped parsing"
    );
}
