//! A lexed source file plus the structural facts rules query: line
//! table, test-code spans, enclosing `fn`/`impl` context, and inline
//! suppressions.
//!
//! Test-code detection is intentionally syntactic: a `#[cfg(test)]` (or
//! `#[test]` / `#[bench]`) attribute marks the brace-span of the item
//! that follows it, and whole files under a member's `tests/`,
//! `benches/` or `examples/` directory are test code. Rules ask
//! [`SourceFile::is_test_at`] per finding, so production invariants
//! never gate fixture or test scaffolding.

use crate::lexer::{lex, LexError, TokKind, Token};

/// The inline suppression marker. Full syntax:
/// `// mvp-lint: allow(rule-a, rule-b) -- reason`
/// A suppression covers its own line (trailing comment) and the next
/// line (preceding comment). The reason is mandatory; a marker without
/// one is itself reported by the `suppression-hygiene` rule.
pub const ALLOW_MARKER: &str = "mvp-lint:";

/// One parsed `// mvp-lint: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule names inside `allow(...)`.
    pub rules: Vec<String>,
    /// Text after `--`, trimmed; `None` when missing or empty.
    pub reason: Option<String>,
    /// Whether the marker parsed as `allow(...)` at all.
    pub well_formed: bool,
}

/// Byte span of a function or impl body, with its name context.
#[derive(Debug, Clone)]
pub struct ScopeSpan {
    /// `fn` name, or the `impl` self-type name.
    pub name: String,
    /// For impl blocks: the trait name when this is a trait impl.
    pub trait_name: Option<String>,
    /// Byte range covering the whole item (signature through `}`).
    pub start: usize,
    /// End of the item's brace block (exclusive).
    pub end: usize,
}

/// A lexed workspace file, ready for rules.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (e.g.
    /// `crates/serve/src/engine.rs`).
    pub rel: String,
    /// File contents.
    pub text: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// True for files under `tests/`, `benches/` or `examples/`.
    pub is_test_file: bool,
    line_starts: Vec<usize>,
    test_spans: Vec<(usize, usize)>,
    fn_spans: Vec<ScopeSpan>,
    impl_spans: Vec<ScopeSpan>,
    suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and analyzes `text` under the workspace-relative name `rel`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`LexError`] for unlexable input.
    pub fn parse(rel: &str, text: &str) -> Result<SourceFile, LexError> {
        let tokens = lex(text)?;
        let rel = rel.replace('\\', "/");
        let is_test_file = {
            let segs: Vec<&str> = rel.split('/').collect();
            segs.contains(&"tests") || segs.contains(&"benches") || segs.contains(&"examples")
        };
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut file = SourceFile {
            rel,
            text: text.to_string(),
            tokens,
            is_test_file,
            line_starts,
            test_spans: Vec::new(),
            fn_spans: Vec::new(),
            impl_spans: Vec::new(),
            suppressions: Vec::new(),
        };
        file.scan_structure();
        file.scan_suppressions();
        Ok(file)
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_col(offset).0
    }

    /// Whether `offset` falls inside test code (test file, `#[cfg(test)]`
    /// module, or `#[test]` function).
    pub fn is_test_at(&self, offset: usize) -> bool {
        self.is_test_file || self.test_spans.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// The innermost `fn` containing `offset`, if any.
    pub fn fn_at(&self, offset: usize) -> Option<&ScopeSpan> {
        self.fn_spans
            .iter()
            .filter(|s| offset >= s.start && offset < s.end)
            .min_by_key(|s| s.end - s.start)
    }

    /// The innermost `impl` block containing `offset`, if any.
    ///
    /// Note `impl Trait` in argument position also produces a span, so
    /// rules that ask "is this inside `impl X`" should prefer
    /// [`SourceFile::in_impl_named`] (any enclosing impl).
    pub fn impl_at(&self, offset: usize) -> Option<&ScopeSpan> {
        self.impl_spans
            .iter()
            .filter(|s| offset >= s.start && offset < s.end)
            .min_by_key(|s| s.end - s.start)
    }

    /// Whether any enclosing `impl` block's self-type is `name`.
    pub fn in_impl_named(&self, offset: usize, name: &str) -> bool {
        self.impl_spans.iter().any(|s| offset >= s.start && offset < s.end && s.name == name)
    }

    /// All `impl` block spans found in the file, in scan order.
    pub fn impl_spans(&self) -> &[ScopeSpan] {
        &self.impl_spans
    }

    /// All `fn` item spans found in the file, in scan order.
    pub fn fn_spans(&self) -> &[ScopeSpan] {
        &self.fn_spans
    }

    /// All parsed suppression markers, in file order.
    pub fn suppressions(&self) -> &[Suppression] {
        &self.suppressions
    }

    /// Whether a diagnostic of `rule` on `line` is covered by a
    /// well-formed, reasoned suppression (on the same line or the line
    /// above).
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| {
            s.well_formed
                && s.reason.is_some()
                && (s.line == line || s.line + 1 == line)
                && s.rules.iter().any(|r| r == rule)
        })
    }

    /// Non-comment tokens, the stream rules usually match over.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
    }

    /// Code tokens resolved to `(kind, text, start)` for rule matching.
    pub fn code(&self) -> Vec<(TokKind, &str, usize)> {
        self.code_tokens().map(|t| (t.kind, &self.text[t.start..t.end], t.start)).collect()
    }

    fn token_text(&self, t: &Token) -> &str {
        &self.text[t.start..t.end]
    }

    /// Single pass over the token stream collecting `#[cfg(test)]` /
    /// `#[test]` item spans and `fn` / `impl` scopes.
    fn scan_structure(&mut self) {
        let toks: Vec<Token> = self.code_tokens().copied().collect::<Vec<_>>();
        let text = self.text.clone();
        let word = |i: usize| -> &str { toks.get(i).map_or("", |t| &text[t.start..t.end]) };
        let is_punct = |i: usize, c: &str| -> bool {
            toks.get(i).is_some_and(|t| t.kind == TokKind::Punct) && word(i) == c
        };

        // Matches the brace block opening at or after `i`; returns
        // (open_index, end_offset_exclusive) of the matching `}`.
        let brace_block = |mut i: usize| -> Option<(usize, usize)> {
            while i < toks.len() && !is_punct(i, "{") {
                // A `;` before any `{` means a body-less item.
                if is_punct(i, ";") {
                    return None;
                }
                i += 1;
            }
            if i >= toks.len() {
                return None;
            }
            let open = i;
            let mut depth = 0usize;
            while i < toks.len() {
                if is_punct(i, "{") {
                    depth += 1;
                } else if is_punct(i, "}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, toks[i].end));
                    }
                }
                i += 1;
            }
            None
        };

        let mut i = 0usize;
        while i < toks.len() {
            // Attributes: `#[ ... ]` — remember if one mentions test.
            if is_punct(i, "#") && (is_punct(i + 1, "[") || (is_punct(i + 1, "!"))) {
                let mut j = if is_punct(i + 1, "!") { i + 2 } else { i + 1 };
                if !is_punct(j, "[") {
                    i += 1;
                    continue;
                }
                let mut depth = 0usize;
                let mut mentions_test = false;
                while j < toks.len() {
                    if is_punct(j, "[") {
                        depth += 1;
                    } else if is_punct(j, "]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if toks[j].kind == TokKind::Ident && matches!(word(j), "test" | "bench")
                    {
                        mentions_test = true;
                    }
                    j += 1;
                }
                if mentions_test {
                    // Attach to the item introduced by the next `fn` /
                    // `mod` / `struct` … keyword: span from the attribute
                    // through the item's closing brace.
                    let mut k = j + 1;
                    // Skip any further attributes wholesale.
                    while k < toks.len() {
                        if is_punct(k, "#") && is_punct(k + 1, "[") {
                            let mut d = 0usize;
                            let mut m = k + 1;
                            while m < toks.len() {
                                if is_punct(m, "[") {
                                    d += 1;
                                } else if is_punct(m, "]") {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                m += 1;
                            }
                            k = m + 1;
                        } else {
                            break;
                        }
                    }
                    if let Some((_, end)) = brace_block(k) {
                        self.test_spans.push((toks[i].start, end));
                    }
                }
                i = j + 1;
                continue;
            }

            if toks[i].kind == TokKind::Ident && word(i) == "fn" {
                if toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
                    let name = word(i + 1).to_string();
                    if let Some((_, end)) = brace_block(i + 2) {
                        self.fn_spans.push(ScopeSpan {
                            name,
                            trait_name: None,
                            start: toks[i].start,
                            end,
                        });
                    }
                }
                i += 1;
                continue;
            }

            if toks[i].kind == TokKind::Ident && word(i) == "impl" {
                // Skip generic params: impl<T: Bound> …
                let mut j = i + 1;
                if is_punct(j, "<") {
                    let mut depth = 0usize;
                    while j < toks.len() {
                        if is_punct(j, "<") {
                            depth += 1;
                        } else if is_punct(j, ">") {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                // First path segment(s) up to `for` / `{` / `where`.
                let mut first = Vec::new();
                let mut second: Option<Vec<String>> = None;
                let mut cur: &mut Vec<String> = &mut first;
                let mut saw_for = false;
                while j < toks.len() && !is_punct(j, "{") {
                    if toks[j].kind == TokKind::Ident && word(j) == "where" {
                        break;
                    }
                    if toks[j].kind == TokKind::Ident && word(j) == "for" {
                        second = Some(Vec::new());
                        saw_for = true;
                        j += 1;
                        cur = second.as_mut().expect("just set");
                        continue;
                    }
                    if toks[j].kind == TokKind::Ident {
                        cur.push(word(j).to_string());
                    }
                    j += 1;
                }
                let type_idents = if saw_for { second.unwrap_or_default() } else { first.clone() };
                let type_name = type_idents.last().cloned().unwrap_or_default();
                let trait_name = if saw_for { first.first().cloned() } else { None };
                if let Some((_, end)) = brace_block(j) {
                    self.impl_spans.push(ScopeSpan {
                        name: type_name,
                        trait_name,
                        start: toks[i].start,
                        end,
                    });
                }
                i += 1;
                continue;
            }

            i += 1;
        }
    }

    fn scan_suppressions(&mut self) {
        let mut found = Vec::new();
        for t in &self.tokens {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            // A marker must open the comment (after the comment sigil):
            // prose that merely *mentions* the syntax is not a marker.
            let body = self.token_text(t).trim_start_matches(['/', '*', '!']).trim_start();
            if !body.starts_with(ALLOW_MARKER) {
                continue;
            }
            let line = self.line_of(t.start);
            let rest = body[ALLOW_MARKER.len()..].trim();
            let Some(args) =
                rest.strip_prefix("allow").map(str::trim_start).and_then(|r| r.strip_prefix('('))
            else {
                found.push(Suppression {
                    line,
                    rules: Vec::new(),
                    reason: None,
                    well_formed: false,
                });
                continue;
            };
            let Some(close) = args.find(')') else {
                found.push(Suppression {
                    line,
                    rules: Vec::new(),
                    reason: None,
                    well_formed: false,
                });
                continue;
            };
            let rules: Vec<String> = args[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = args[close + 1..].trim();
            let reason = tail
                .strip_prefix("--")
                .map(|r| r.trim_end_matches("*/").trim().to_string())
                .filter(|r| !r.is_empty());
            found.push(Suppression { line, rules, reason, well_formed: true });
        }
        self.suppressions = found;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src).expect("parses")
    }

    #[test]
    fn cfg_test_module_spans_are_test_code() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let f = parse(src);
        let prod_at = src.find("prod").expect("prod");
        let helper_at = src.find("helper").expect("helper");
        assert!(!f.is_test_at(prod_at));
        assert!(f.is_test_at(helper_at));
    }

    #[test]
    fn test_attribute_marks_only_that_fn() {
        let src = "#[test]\nfn a_test() { x(); }\nfn prod() { y(); }\n";
        let f = parse(src);
        assert!(f.is_test_at(src.find("x()").expect("x")));
        assert!(!f.is_test_at(src.find("y()").expect("y")));
    }

    #[test]
    fn should_panic_attr_is_test_code() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { z(); }\n";
        let f = parse(src);
        assert!(f.is_test_at(src.find("z()").expect("z")));
    }

    #[test]
    fn files_under_tests_dir_are_test_code() {
        let f = SourceFile::parse("crates/x/tests/it.rs", "fn a() {}").expect("parses");
        assert!(f.is_test_at(0));
    }

    #[test]
    fn fn_and_impl_context() {
        let src = "impl SharedCache {\n    fn with(&self) { self.inner.lock(); }\n}\n\
                   impl Persist for Blob {\n    fn encode(&self) {}\n}\n";
        let f = parse(src);
        let lock_at = src.find(".lock").expect("lock") + 1;
        assert_eq!(f.fn_at(lock_at).map(|s| s.name.as_str()), Some("with"));
        assert_eq!(f.impl_at(lock_at).map(|s| s.name.as_str()), Some("SharedCache"));
        let enc_at = src.find("encode").expect("encode");
        let imp = f.impl_at(enc_at).expect("in impl");
        assert_eq!(imp.name, "Blob");
        assert_eq!(imp.trait_name.as_deref(), Some("Persist"));
    }

    #[test]
    fn suppression_parsing_and_matching() {
        let src = "\
// mvp-lint: allow(todo-markers) -- scaffolding tracked in #42\nlet a = 1;\n\
let b = 2; // mvp-lint: allow(rule-x, rule-y) -- both fine here\n\
// mvp-lint: allow(todo-markers)\nlet c = 3;\n";
        let f = parse(src);
        assert_eq!(f.suppressions().len(), 3);
        assert!(f.is_suppressed("todo-markers", 2)); // line after marker
        assert!(f.is_suppressed("rule-y", 3)); // same line
        assert!(!f.is_suppressed("todo-markers", 5), "reasonless marker must not suppress");
        assert!(f.suppressions()[2].reason.is_none());
    }

    #[test]
    fn line_col_math() {
        let f = parse("ab\ncd\n");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(4), (2, 2));
    }
}
