//! Diagnostics and severities.

use std::fmt;

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, but only fails the run under `--fail-on=warn`.
    Warn,
    /// An invariant violation: fails the default `--fail-on=deny` gate.
    Deny,
}

impl Severity {
    /// Lower-case name, as printed and as accepted by `--fail-on`.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One hop of interprocedural evidence: where a call chain passes
/// through on its way from an entry point to the finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// Workspace-relative path of the hop.
    pub path: String,
    /// 1-based line — the entry point's declaration for the first hop,
    /// the call site inside the previous hop's fn for the rest.
    pub line: usize,
    /// Name of the function entered at this hop.
    pub fn_name: String,
}

/// One rule finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that produced the finding.
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// 1-based column (byte within the line) of the finding.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain evidence for interprocedural findings: entry point
    /// first, the finding's enclosing fn last. Empty for per-file
    /// rules.
    pub chain: Vec<ChainHop>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}: {}",
            self.path, self.line, self.col, self.severity, self.rule, self.message
        )
    }
}
