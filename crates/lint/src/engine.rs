//! The lint engine: runs the rule set over sources, applies inline
//! suppressions, and reports suppression-format problems as its own
//! `suppression-hygiene` rule.

use std::fs;
use std::io;
use std::path::Path;

use crate::diag::{Diagnostic, Severity};
use crate::rules::{self, SUPPRESSION_HYGIENE};
use crate::source::SourceFile;
use crate::workspace;

/// Outcome of a lint run.
pub struct LintReport {
    /// Surviving findings, in (path, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files lexed and checked.
    pub files_scanned: usize,
    /// Findings silenced by a well-formed, reasoned `allow(...)`.
    pub suppressed: usize,
}

impl LintReport {
    /// Highest severity present, if any finding survived.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether the run fails under the given gate level.
    pub fn fails_at(&self, gate: Severity) -> bool {
        self.max_severity().is_some_and(|s| s >= gate)
    }
}

/// Lints one in-memory source under a workspace-relative path. This is
/// the fixture-test entry point: the `rel` path decides which rules are
/// in scope, exactly as for on-disk files.
///
/// # Errors
///
/// Returns a description of the lex failure for unparseable input.
pub fn lint_source(
    rel: &str,
    text: &str,
    only_rule: Option<&str>,
) -> Result<Vec<Diagnostic>, String> {
    let file = SourceFile::parse(rel, text).map_err(|e| format!("{rel}: {e}"))?;
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    lint_file(&file, only_rule, &mut out, &mut suppressed);
    Ok(out)
}

/// Lints every non-vendor member source file under `root`.
///
/// # Errors
///
/// Propagates I/O failures; an unlexable file is reported as an
/// `Err` so a lexer gap fails loudly instead of silently skipping.
pub fn lint_workspace(root: &Path, only_rule: Option<&str>) -> io::Result<LintReport> {
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    let files = workspace::lintable_files(root)?;
    let files_scanned = files.len();
    for wf in &files {
        let text = fs::read_to_string(&wf.abs)?;
        let file = SourceFile::parse(&wf.rel, &text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", wf.rel)))?;
        lint_file(&file, only_rule, &mut diagnostics, &mut suppressed);
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(LintReport { diagnostics, files_scanned, suppressed })
}

fn lint_file(
    file: &SourceFile,
    only_rule: Option<&str>,
    out: &mut Vec<Diagnostic>,
    suppressed: &mut usize,
) {
    for rule in rules::all() {
        if only_rule.is_some_and(|r| r != rule.name()) {
            continue;
        }
        if !rule.applies_to(&file.rel) {
            continue;
        }
        let mut found = Vec::new();
        rule.check(file, &mut found);
        for d in found {
            if file.is_suppressed(d.rule, d.line) {
                *suppressed += 1;
            } else {
                out.push(d);
            }
        }
    }
    if only_rule.is_none() || only_rule == Some(SUPPRESSION_HYGIENE) {
        suppression_hygiene(file, out);
    }
}

/// The engine-owned rule: every `mvp-lint:` marker must be a
/// well-formed `allow(known-rule, ...) -- reason`. Hygiene findings are
/// deliberately not themselves suppressible.
fn suppression_hygiene(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let known = rules::known_names();
    for s in file.suppressions() {
        let mut push = |message: String| {
            out.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                severity: Severity::Deny,
                path: file.rel.clone(),
                line: s.line,
                col: 1,
                message,
            });
        };
        if !s.well_formed {
            push(
                "malformed mvp-lint marker; expected `mvp-lint: allow(<rule>) -- <reason>`"
                    .to_string(),
            );
            continue;
        }
        if s.reason.is_none() {
            push(
                "suppression has no reason; append ` -- <why this violation is acceptable>`"
                    .to_string(),
            );
        }
        for r in &s.rules {
            if !known.contains(&r.as_str()) {
                push(format!("suppression names unknown rule `{r}`"));
            }
        }
        if s.rules.is_empty() {
            push("suppression allows no rules; name at least one".to_string());
        }
    }
}
