//! The lint engine: parses the workspace once, runs per-file rules and
//! workspace (interprocedural) rules over it, applies inline
//! suppressions, and reports suppression-format problems as its own
//! `suppression-hygiene` rule.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Severity};
use crate::items::ItemIndex;
use crate::rules::{self, SUPPRESSION_HYGIENE};
use crate::source::SourceFile;
use crate::workspace;

/// The whole parsed workspace, as seen by a
/// [`rules::WorkspaceRule`]: every lexed file, the fn-item/call-site
/// index over them, and the name-resolved call graph.
pub struct Workspace {
    /// Every lintable file, in scan order; ids into this vec are the
    /// `file` fields of [`crate::items::FnItem`] and
    /// [`crate::items::CallSite`].
    pub files: Vec<SourceFile>,
    /// Fn items and call sites across `files`.
    pub index: ItemIndex,
    /// Conservative name-resolved call graph over `index`.
    pub graph: CallGraph,
}

impl Workspace {
    /// Indexes and links `files` into an analysable workspace.
    pub fn build(files: Vec<SourceFile>) -> Self {
        let index = ItemIndex::build(&files);
        let graph = CallGraph::build(&index, &files);
        Workspace { files, index, graph }
    }
}

/// Outcome of a lint run.
pub struct LintReport {
    /// Surviving findings, in (path, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files lexed and checked.
    pub files_scanned: usize,
    /// Findings silenced by a well-formed, reasoned `allow(...)`.
    pub suppressed: usize,
    /// Functions in the workspace call graph.
    pub graph_nodes: usize,
    /// Resolved call edges in the workspace call graph.
    pub graph_edges: usize,
}

impl LintReport {
    /// Highest severity present, if any finding survived.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether the run fails under the given gate level.
    pub fn fails_at(&self, gate: Severity) -> bool {
        self.max_severity().is_some_and(|s| s >= gate)
    }
}

/// Lints one in-memory source under a workspace-relative path. This is
/// the fixture-test entry point: the `rel` path decides which rules are
/// in scope, exactly as for on-disk files, and workspace rules run over
/// the single-file workspace (so a fixture can seed its own entry
/// points).
///
/// # Errors
///
/// Returns a description of the lex failure for unparseable input.
pub fn lint_source(
    rel: &str,
    text: &str,
    only_rule: Option<&str>,
) -> Result<Vec<Diagnostic>, String> {
    let file = SourceFile::parse(rel, text).map_err(|e| format!("{rel}: {e}"))?;
    let report = run(vec![file], only_rule);
    Ok(report.diagnostics)
}

/// Lints every non-vendor member source file under `root`.
///
/// # Errors
///
/// Propagates I/O failures; an unlexable file is reported as an
/// `Err` so a lexer gap fails loudly instead of silently skipping.
pub fn lint_workspace(root: &Path, only_rule: Option<&str>) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for wf in workspace::lintable_files(root)? {
        let text = fs::read_to_string(&wf.abs)?;
        let file = SourceFile::parse(&wf.rel, &text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", wf.rel)))?;
        files.push(file);
    }
    Ok(run(files, only_rule))
}

/// The unified pass: per-file rules and hygiene over each file, then
/// workspace rules over the linked whole, with one suppression filter
/// for everything except hygiene (which is deliberately unsuppressible).
fn run(files: Vec<SourceFile>, only_rule: Option<&str>) -> LintReport {
    let ws = Workspace::build(files);
    let mut raw = Vec::new();
    let mut diagnostics = Vec::new();

    for file in &ws.files {
        for rule in rules::all() {
            if only_rule.is_some_and(|r| r != rule.name()) {
                continue;
            }
            if !rule.applies_to(&file.rel) {
                continue;
            }
            rule.check(file, &mut raw);
        }
        if only_rule.is_none() || only_rule == Some(SUPPRESSION_HYGIENE) {
            suppression_hygiene(file, &mut diagnostics);
        }
    }
    for rule in rules::workspace_rules() {
        if only_rule.is_some_and(|r| r != rule.name()) {
            continue;
        }
        rule.check(&ws, &mut raw);
    }

    let by_rel: HashMap<&str, &SourceFile> = ws.files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut suppressed = 0usize;
    for d in raw {
        let silenced = by_rel.get(d.path.as_str()).is_some_and(|f| f.is_suppressed(d.rule, d.line));
        if silenced {
            suppressed += 1;
        } else {
            diagnostics.push(d);
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    LintReport {
        diagnostics,
        files_scanned: ws.files.len(),
        suppressed,
        graph_nodes: ws.index.fns.len(),
        graph_edges: ws.graph.n_edges,
    }
}

/// The engine-owned rule: every `mvp-lint:` marker must be a
/// well-formed `allow(known-rule, ...) -- reason`. Hygiene findings are
/// deliberately not themselves suppressible.
fn suppression_hygiene(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let known = rules::known_names();
    for s in file.suppressions() {
        let mut push = |message: String| {
            out.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                severity: Severity::Deny,
                path: file.rel.clone(),
                line: s.line,
                col: 1,
                message,
                chain: Vec::new(),
            });
        };
        if !s.well_formed {
            push(
                "malformed mvp-lint marker; expected `mvp-lint: allow(<rule>) -- <reason>`"
                    .to_string(),
            );
            continue;
        }
        if s.reason.is_none() {
            push(
                "suppression has no reason; append ` -- <why this violation is acceptable>`"
                    .to_string(),
            );
        }
        for r in &s.rules {
            if !known.contains(&r.as_str()) {
                push(format!("suppression names unknown rule `{r}`"));
            }
        }
        if s.rules.is_empty() {
            push("suppression allows no rules; name at least one".to_string());
        }
    }
}
