//! A hand-rolled Rust lexer, just deep enough to be trustworthy.
//!
//! The rules in this crate match *token* sequences, never raw text, so a
//! `panic!` inside a string literal or a `Vec<Vec<f64>>` in a doc comment
//! can never trip a lint. That only works if the lexer gets the hard
//! cases right: nested block comments, escaped strings, raw strings with
//! arbitrary `#` fences, and the `'a` lifetime / `'a'` char-literal
//! ambiguity.
//!
//! Every token records its byte span in the source, and the lexer
//! guarantees (checked by [`roundtrip_ok`] and a workspace-wide property
//! test) that concatenating token text with the whitespace gaps between
//! spans reproduces the input byte-for-byte — there are no silent holes a
//! rule could fail to see.

use std::fmt;

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// Character literal `'x'` (and byte chars `b'x'`).
    CharLit,
    /// String literal, including byte strings (`b"…"`).
    StrLit,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStrLit,
    /// Numeric literal, including suffixes (`1_000u64`, `0x1f`, `1.5e-3`).
    NumLit,
    /// `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// A single punctuation character (`<` `>` `.` `!` `(` …).
    Punct,
}

/// One token: kind plus the byte span it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token classification.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// A lexing failure: structurally invalid Rust the lexer refuses to
/// guess about (unterminated string/comment/char).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset where the offending token started.
    pub offset: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, chars or block comments;
/// the offset points at the opening delimiter.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(ahead)
    }

    fn byte(&self, at: usize) -> Option<u8> {
        self.bytes.get(at).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize) {
        self.out.push(Token { kind, start, end: self.pos });
    }

    fn err(&self, offset: usize, msg: &str) -> LexError {
        LexError { offset, msg: msg.to_string() }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.peek(0).expect("pos is on a char boundary");
            if c.is_whitespace() {
                self.pos += c.len_utf8();
                continue;
            }
            match c {
                '/' if self.byte(start + 1) == Some(b'/') => self.line_comment(start),
                '/' if self.byte(start + 1) == Some(b'*') => self.block_comment(start)?,
                '"' => self.string(start, start)?,
                '\'' => self.char_or_lifetime(start)?,
                c if c.is_ascii_digit() => self.number(start),
                c if is_ident_start(c) => self.ident_or_prefixed(start)?,
                c => {
                    self.pos += c.len_utf8();
                    self.push(TokKind::Punct, start);
                }
            }
        }
        Ok(self.out)
    }

    fn line_comment(&mut self, start: usize) {
        while let Some(b) = self.byte(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        // pos may sit inside a multi-byte char only if that char contains
        // a 0x0a byte, which UTF-8 continuation bytes never do.
        self.push(TokKind::LineComment, start);
    }

    fn block_comment(&mut self, start: usize) -> Result<(), LexError> {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.byte(self.pos), self.byte(self.pos + 1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => return Err(self.err(start, "unterminated block comment")),
            }
        }
        self.push(TokKind::BlockComment, start);
        Ok(())
    }

    /// Lexes a `"…"` body starting at the opening quote (`quote_at ==
    /// self.pos`); `start` includes any `b` prefix already consumed.
    fn string(&mut self, start: usize, quote_at: usize) -> Result<(), LexError> {
        self.pos = quote_at + 1;
        loop {
            match self.byte(self.pos) {
                Some(b'\\') => self.pos += 2,
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err(start, "unterminated string literal")),
            }
        }
        if self.pos > self.bytes.len() {
            // A trailing backslash stepped past the end.
            return Err(self.err(start, "unterminated string literal"));
        }
        self.push(TokKind::StrLit, start);
        Ok(())
    }

    /// Lexes a raw string starting at the `r` / fence (`self.pos` is on
    /// the first `#` or the quote); `start` includes the `r`/`br` prefix.
    fn raw_string(&mut self, start: usize) -> Result<(), LexError> {
        let mut fence = 0usize;
        while self.byte(self.pos) == Some(b'#') {
            fence += 1;
            self.pos += 1;
        }
        if self.byte(self.pos) != Some(b'"') {
            return Err(self.err(start, "malformed raw string opener"));
        }
        self.pos += 1;
        loop {
            match self.byte(self.pos) {
                Some(b'"') => {
                    let closes = (1..=fence).all(|k| self.byte(self.pos + k) == Some(b'#'));
                    if closes {
                        self.pos += 1 + fence;
                        self.push(TokKind::RawStrLit, start);
                        return Ok(());
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
                None => return Err(self.err(start, "unterminated raw string literal")),
            }
        }
    }

    fn char_or_lifetime(&mut self, start: usize) -> Result<(), LexError> {
        // After the opening quote: a backslash is always a char literal;
        // one char followed by a closing quote is a char literal;
        // otherwise it is a lifetime / label.
        match self.peek(1) {
            Some('\\') => {
                self.pos += 2; // ' and backslash
                let escaped = self
                    .peek(0)
                    .ok_or_else(|| self.err(start, "unterminated character literal"))?;
                self.pos += escaped.len_utf8();
                // Escapes like \u{1F600} span to the closing quote.
                while let Some(b) = self.byte(self.pos) {
                    if b == b'\'' {
                        self.pos += 1;
                        self.push(TokKind::CharLit, start);
                        return Ok(());
                    }
                    if b == b'\n' {
                        break;
                    }
                    self.pos += 1;
                }
                Err(self.err(start, "unterminated character literal"))
            }
            Some(c) if self.byte(start + 1 + c.len_utf8()) == Some(b'\'') && c != '\'' => {
                self.pos = start + 1 + c.len_utf8() + 1;
                self.push(TokKind::CharLit, start);
                Ok(())
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                self.pos = start + 1;
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    self.pos += c.len_utf8();
                }
                self.push(TokKind::Lifetime, start);
                Ok(())
            }
            _ => Err(self.err(start, "stray single quote")),
        }
    }

    fn number(&mut self, start: usize) {
        let radix_prefixed = self.byte(start) == Some(b'0')
            && matches!(self.byte(start + 1), Some(b'x' | b'o' | b'b'));
        self.pos += 1;
        while let Some(b) = self.byte(self.pos) {
            match b {
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    self.pos += 1;
                    // Decimal exponent may carry a sign: 1.5e-3.
                    if !radix_prefixed
                        && (b == b'e' || b == b'E')
                        && matches!(self.byte(self.pos), Some(b'+' | b'-'))
                        && matches!(self.byte(self.pos + 1), Some(b'0'..=b'9'))
                    {
                        self.pos += 1;
                    }
                }
                // A dot joins the number only when a digit follows, so
                // ranges (`0..n`) and method calls (`1.max(x)`) stay out.
                b'.' if matches!(self.byte(self.pos + 1), Some(b'0'..=b'9')) => self.pos += 1,
                _ => break,
            }
        }
        self.push(TokKind::NumLit, start);
    }

    fn ident_or_prefixed(&mut self, start: usize) -> Result<(), LexError> {
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            self.pos += c.len_utf8();
        }
        let ident = &self.src[start..self.pos];
        // String/char prefixes: the ident glues to a following quote.
        match (ident, self.byte(self.pos)) {
            ("r" | "br" | "cr", Some(b'#')) => {
                // `r#"…"#` is a raw string; `r#ident` is a raw identifier.
                if ident == "r" && matches!(self.peek(1), Some(c) if is_ident_start(c)) {
                    self.pos += 1;
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        self.pos += c.len_utf8();
                    }
                    self.push(TokKind::Ident, start);
                    return Ok(());
                }
                self.raw_string(start)
            }
            ("r" | "br" | "cr", Some(b'"')) => self.raw_string(start),
            ("b" | "c", Some(b'"')) => self.string(start, self.pos),
            ("b", Some(b'\'')) => {
                // Byte char: never a lifetime. Reuse the char scanner from
                // the quote; it cannot produce Lifetime after a prefix
                // because b'x' always closes.
                self.pos += 1;
                match self.byte(self.pos) {
                    Some(b'\\') => {
                        self.pos += 1;
                        while let Some(b) = self.byte(self.pos) {
                            self.pos += 1;
                            if b == b'\'' && self.pos > start + 4 {
                                self.push(TokKind::CharLit, start);
                                return Ok(());
                            }
                        }
                        Err(self.err(start, "unterminated byte literal"))
                    }
                    Some(_) => {
                        self.pos += 1;
                        if self.byte(self.pos) == Some(b'\'') {
                            self.pos += 1;
                            self.push(TokKind::CharLit, start);
                            Ok(())
                        } else {
                            Err(self.err(start, "unterminated byte literal"))
                        }
                    }
                    None => Err(self.err(start, "unterminated byte literal")),
                }
            }
            _ => {
                self.push(TokKind::Ident, start);
                Ok(())
            }
        }
    }
}

/// Checks the round-trip invariant: token spans are monotonic,
/// non-overlapping, and the gaps between them are pure whitespace, so
/// token text + gaps reassemble `src` exactly.
///
/// # Errors
///
/// Returns a description of the first hole or overlap found.
pub fn roundtrip_ok(src: &str, tokens: &[Token]) -> Result<(), String> {
    let mut cursor = 0usize;
    for t in tokens {
        if t.start < cursor {
            return Err(format!("token at {} overlaps previous end {}", t.start, cursor));
        }
        let gap = &src[cursor..t.start];
        if !gap.chars().all(char::is_whitespace) {
            return Err(format!("non-whitespace gap {:?} before byte {}", gap, t.start));
        }
        if t.end <= t.start || t.end > src.len() {
            return Err(format!("degenerate span {}..{}", t.start, t.end));
        }
        cursor = t.end;
    }
    let tail = &src[cursor..];
    if !tail.chars().all(char::is_whitespace) {
        let head: String = tail.chars().take(40).collect();
        return Err(format!("non-whitespace tail {head:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).expect("lexes").into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::CharLit).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(chars[0].1, "'x'");
        assert_eq!(chars[1].1, "'\\''");
    }

    #[test]
    fn static_lifetime_and_labels() {
        let toks = kinds("&'static str; 'outer: loop { break 'outer; }");
        let lt: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.as_str()).collect();
        assert_eq!(lt, ["'static", "'outer", "'outer"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* one /* two */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "/* one /* two */ still */");
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"inner "quoted" text"#; let t = r"plain";"####;
        let toks = kinds(src);
        let raws: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::RawStrLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(raws, [r###"r#"inner "quoted" text"#"###, r#"r"plain""#]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"RIFF"; let b = b'\n'; let c = b'x';"#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::StrLit && t == "b\"RIFF\""));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "b'\\n'"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "b'x'"));
    }

    #[test]
    fn panics_in_strings_and_comments_are_not_code() {
        let src = r#"let m = "panic!(\"no\")"; // panic! here too
        /* unwrap() */ let ok = 1;"#;
        let toks = kinds(src);
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["let", "m", "let", "ok"]);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("0..10; 1_000u64; 0x1f; 1.5e-3; x.0.1; 2.0f64");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::NumLit).map(|(_, t)| t.as_str()).collect();
        assert!(nums.contains(&"1_000u64"));
        assert!(nums.contains(&"0x1f"));
        assert!(nums.contains(&"1.5e-3"));
        assert!(nums.contains(&"2.0f64"));
        // Ranges must not swallow the dots.
        assert!(nums.contains(&"0") && nums.contains(&"10"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn unterminated_inputs_error_not_panic() {
        for bad in ["\"abc", "/* open", "'", "r#\"abc", "b'"] {
            assert!(lex(bad).is_err(), "{bad:?} should fail to lex");
        }
    }

    #[test]
    fn roundtrip_on_representative_source() {
        let src = r####"
//! Doc comment.
fn main() {
    let v: Vec<Vec<f64>> = vec![vec![1.0; 3]; 2];
    let s = r#"raw "str""#;
    let c = 'c';
    let lt: &'static str = "x";
    /* nested /* comments */ ok */
    println!("{} {s} {c} {lt}", v.len());
}
"####;
        let toks = lex(src).expect("lexes");
        roundtrip_ok(src, &toks).expect("round-trips");
    }
}
