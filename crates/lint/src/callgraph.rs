//! The workspace call graph: conservative name-matched edges over the
//! [`ItemIndex`], with BFS reachability and call-chain reconstruction.
//!
//! Resolution is deliberately an over-approximation — the lint layer
//! has no type information, so a call may edge to every function the
//! name *could* mean:
//!
//! - `self.name(...)` resolves inside the enclosing impl when that
//!   impl defines `name`; otherwise it falls back to every method of
//!   that name (the receiver may be a `Deref` or trait-object hop).
//! - `recv.name(...)` resolves to every impl-defined `name` in the
//!   workspace — this is what makes trait-object and generic dispatch
//!   conservative: one `.score()` call edges to *every* `score`.
//! - `Qual::name(...)` prefers fns owned by an impl of `Qual`
//!   (`Self::...` uses the enclosing impl's type). When no impl
//!   matches, a lower-case qualifier is a module path and falls back to
//!   free fns of that name; an upper-case or primitive qualifier is a
//!   foreign type (std, vendor) and produces no edge.
//! - `name(...)` resolves to free fns of that name, falling back to
//!   associated fns (imported via `use Type::name`).
//!
//! Two deliberate precision carve-outs keep the over-approximation
//! usable. Method names on the [`STD_METHODS`] list (`push`, `len`,
//! `clone`, iterator adapters, ...) are assumed to be the std prelude
//! method and produce no edge — a workspace method that *shadows* one
//! of these names is invisible to the sweep unless it is itself a rule
//! root (the serve entry points `push`/`wait`/... are, which is why the
//! carve-out is sound where it matters). And unresolved names (std,
//! vendor shims) produce no edge: the analysis only sees
//! workspace-defined code. Test functions are never edge targets, so
//! fixtures and `#[cfg(test)]` helpers cannot launder reachability into
//! production rules.

use std::collections::{HashMap, VecDeque};

use crate::items::{CallKind, FnItem, ItemIndex};
use crate::source::SourceFile;

/// Method names assumed to resolve to the std prelude, not the
/// workspace: a dotted call to one of these produces no edge. Without
/// this list every `v.push(x)` would edge into `StreamHandle::push` and
/// every `.clone()` into every workspace `Clone` impl, and the sweep
/// would reach essentially the whole workspace from any root.
const STD_METHODS: &[&str] = &[
    // Collections and slices.
    "push",
    "pop",
    "insert",
    "remove",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "first",
    "last",
    "contains",
    "contains_key",
    "keys",
    "values",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "clear",
    "resize",
    "truncate",
    "extend",
    "extend_from_slice",
    "copy_from_slice",
    "clone_from_slice",
    "fill",
    "swap",
    "reverse",
    "retain",
    "dedup",
    "drain",
    "split_at",
    "split_at_mut",
    "windows",
    "chunks",
    "chunks_exact",
    "chunks_mut",
    "concat",
    "join",
    "binary_search",
    "binary_search_by",
    "rotate_left",
    "rotate_right",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "to_vec",
    "as_slice",
    "as_mut_slice",
    "push_str",
    "push_front",
    "push_back",
    "pop_front",
    "pop_back",
    "make_contiguous",
    // Iterator adapters and consumers.
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "fold",
    "sum",
    "product",
    "count",
    "position",
    "find",
    "find_map",
    "any",
    "all",
    "zip",
    "enumerate",
    "rev",
    "skip",
    "take",
    "take_while",
    "skip_while",
    "chain",
    "step_by",
    "copied",
    "cloned",
    "collect",
    "peekable",
    "peek",
    "nth",
    "by_ref",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "last_mut",
    // Option / Result plumbing.
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "and_then",
    "or_else",
    "map_err",
    "map_or",
    "map_or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_deref",
    "take",
    "replace",
    "get_or_insert_with",
    "is_some_and",
    "is_none_or",
    // Strings.
    "chars",
    "bytes",
    "lines",
    "split",
    "split_whitespace",
    "trim",
    "trim_start",
    "trim_end",
    "starts_with",
    "ends_with",
    "strip_prefix",
    "strip_suffix",
    "to_string",
    "to_owned",
    "to_lowercase",
    "to_uppercase",
    "as_str",
    "as_bytes",
    "parse",
    "repeat",
    "char_indices",
    "find_char",
    "eq_ignore_ascii_case",
    // Numerics.
    "abs",
    "sqrt",
    "powi",
    "powf",
    "exp",
    "ln",
    "log2",
    "log10",
    "floor",
    "ceil",
    "round",
    "clamp",
    "rem_euclid",
    "mul_add",
    "signum",
    "is_nan",
    "is_finite",
    "is_infinite",
    "to_bits",
    "total_cmp",
    "partial_cmp",
    "cmp",
    "hypot",
    "recip",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "pow",
    "div_euclid",
    "to_le_bytes",
    "to_be_bytes",
    "is_sign_negative",
    "is_sign_positive",
    "exp_m1",
    "ln_1p",
    "sin",
    "cos",
    "tan",
    "atan2",
    // Sync, channels, IO, time, misc.
    "clone",
    "lock",
    "read",
    "write",
    "try_lock",
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "send_timeout",
    "store",
    "load",
    "fetch_add",
    "fetch_sub",
    "swap_val",
    "compare_exchange",
    "wait",
    "wait_timeout",
    "notify_one",
    "notify_all",
    "spawn",
    "join_handle",
    "is_finished",
    "elapsed",
    "duration_since",
    "as_secs_f64",
    "as_millis",
    "as_micros",
    "subsec_nanos",
    "flush",
    "read_to_string",
    "write_all",
    "write_str",
    "read_line",
    "read_exact",
    "set_len",
    "seek",
    "rewind",
    "fmt",
    "hash",
    "eq",
    "ne",
    "borrow",
    "borrow_mut",
    "deref",
    "drop",
    "default",
    "from_iter",
    "into",
    "try_into",
];

/// One resolved call edge out of a function.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee fn id (into [`ItemIndex::fns`]).
    pub callee: usize,
    /// Byte offset of the call site in the caller's file.
    pub call_offset: usize,
}

/// The workspace call graph over an [`ItemIndex`].
pub struct CallGraph {
    /// Outgoing edges per fn id, deduplicated by callee (first call
    /// site kept as the representative for chain evidence).
    pub edges: Vec<Vec<Edge>>,
    /// Total resolved edge count.
    pub n_edges: usize,
}

/// Result of a reachability sweep: BFS tree plus per-node provenance.
pub struct Reach {
    /// `parent[f] = Some((caller, call_offset))` for reached non-root
    /// nodes; `None` for roots and unreached nodes.
    parent: Vec<Option<(usize, usize)>>,
    reached: Vec<bool>,
    root: Vec<bool>,
}

impl Reach {
    /// Whether fn `id` is reachable (roots included).
    pub fn contains(&self, id: usize) -> bool {
        self.reached[id]
    }

    /// Ids of every reached fn, roots first in BFS order is not
    /// guaranteed — iterate and filter instead.
    pub fn reached_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.reached.iter().enumerate().filter(|(_, &r)| r).map(|(id, _)| id)
    }

    /// The call chain from a root to `id`: a list of `(fn id, call
    /// offset into that fn's file)` hops. The first entry is the root
    /// (offset = its own span start), the last entry is `id` itself
    /// with the call site *in its caller* that reached it.
    pub fn chain_to(&self, id: usize, index: &ItemIndex) -> Vec<(usize, usize)> {
        let mut hops = Vec::new();
        let mut cur = id;
        while let Some((caller, offset)) = self.parent[cur] {
            hops.push((cur, offset));
            cur = caller;
        }
        hops.push((cur, index.fns[cur].start));
        hops.reverse();
        hops
    }

    /// Whether fn `id` is one of the sweep's roots.
    pub fn is_root(&self, id: usize) -> bool {
        self.root[id]
    }
}

/// Which crate (by `crates/<name>/src/` path) can call into which:
/// `visible[a]` holds the crates whose items crate `a`'s code can name.
/// Dependencies are inferred from the sources themselves — crate `a`
/// depends on crate `b` when any file of `a` mentions the `mvp_<b>`
/// ident — then closed transitively. A name-matched edge that crosses
/// crates *against* this relation is impossible (the caller cannot even
/// import the callee) and is dropped.
struct CrateVisibility {
    /// File id → crate index, `usize::MAX` for files outside `crates/`.
    of_file: Vec<usize>,
    /// Crate index → set of visible crate indexes (self included).
    visible: Vec<Vec<bool>>,
}

impl CrateVisibility {
    fn build(files: &[SourceFile]) -> CrateVisibility {
        let crate_of = |rel: &str| -> Option<String> {
            let rest = rel.strip_prefix("crates/")?;
            Some(rest.split('/').next()?.to_string())
        };
        let mut names: Vec<String> = Vec::new();
        let mut of_file = Vec::with_capacity(files.len());
        for f in files {
            match crate_of(&f.rel) {
                Some(name) => {
                    let idx = names.iter().position(|n| *n == name).unwrap_or_else(|| {
                        names.push(name);
                        names.len() - 1
                    });
                    of_file.push(idx);
                }
                None => of_file.push(usize::MAX),
            }
        }
        let n = names.len();
        let mut visible = vec![vec![false; n]; n];
        for (i, row) in visible.iter_mut().enumerate() {
            row[i] = true;
        }
        // Direct deps: crate i mentions ident `mvp_<name-with-underscores>`.
        let externs: Vec<String> =
            names.iter().map(|n| format!("mvp_{}", n.replace('-', "_"))).collect();
        for (fid, f) in files.iter().enumerate() {
            let i = of_file[fid];
            if i == usize::MAX {
                continue;
            }
            for &(kind, word, _) in &f.code() {
                if kind != crate::lexer::TokKind::Ident {
                    continue;
                }
                if let Some(j) = externs.iter().position(|e| e == word) {
                    visible[i][j] = true;
                }
            }
        }
        // Transitive closure (the crate count is tiny).
        loop {
            let mut changed = false;
            for i in 0..n {
                for j in 0..n {
                    if !visible[i][j] {
                        continue;
                    }
                    for k in 0..n {
                        if visible[j][k] && !visible[i][k] {
                            visible[i][k] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        CrateVisibility { of_file, visible }
    }

    /// Whether code in `caller_file` can name items of `callee_file`.
    fn allows(&self, caller_file: usize, callee_file: usize) -> bool {
        let (a, b) = (self.of_file[caller_file], self.of_file[callee_file]);
        // Files outside `crates/` are unconstrained in both directions.
        a == usize::MAX || b == usize::MAX || self.visible[a][b]
    }
}

impl CallGraph {
    /// Builds the graph by resolving every call site of `index` over
    /// the files it was indexed from.
    pub fn build(index: &ItemIndex, files: &[SourceFile]) -> CallGraph {
        let vis = CrateVisibility::build(files);
        // Name → candidate fn ids, split by ownership, built once.
        let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut free: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, f) in index.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if f.owner.is_some() {
                methods.entry(&f.name).or_default().push(id);
            } else {
                free.entry(&f.name).or_default().push(id);
            }
        }
        let owned_by = |name: &str, owner: &str| -> Vec<usize> {
            methods
                .get(name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| index.fns[id].owner.as_deref() == Some(owner))
                        .collect()
                })
                .unwrap_or_default()
        };

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); index.fns.len()];
        let mut seen: Vec<HashMap<usize, ()>> = vec![HashMap::new(); index.fns.len()];
        let mut n_edges = 0usize;
        for call in &index.calls {
            let Some(caller) = call.caller else { continue };
            let name = call.callee.as_str();
            let candidates: Vec<usize> = match &call.kind {
                CallKind::Method { self_receiver } => {
                    let scoped = if *self_receiver {
                        index.fns[caller]
                            .owner
                            .as_deref()
                            .map(|own| owned_by(name, own))
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    if !scoped.is_empty() {
                        scoped
                    } else if STD_METHODS.contains(&name) {
                        // Assumed to be the std prelude method.
                        Vec::new()
                    } else {
                        methods.get(name).cloned().unwrap_or_default()
                    }
                }
                CallKind::Qualified(q) => {
                    // `Self::name(...)` means the enclosing impl's type.
                    let owner_name = if q == "Self" {
                        index.fns[caller].owner.clone().unwrap_or_else(|| q.clone())
                    } else {
                        q.clone()
                    };
                    let scoped = owned_by(name, &owner_name);
                    if !scoped.is_empty() {
                        scoped
                    } else if is_type_like(&owner_name) {
                        // An upper-case or primitive qualifier with no
                        // matching workspace impl is a foreign type.
                        Vec::new()
                    } else {
                        // A module path: the callee is a free fn.
                        free.get(name).cloned().unwrap_or_default()
                    }
                }
                CallKind::Free => {
                    let frees = free.get(name).cloned().unwrap_or_default();
                    if !frees.is_empty() {
                        frees
                    } else if STD_METHODS.contains(&name) {
                        Vec::new()
                    } else {
                        methods.get(name).cloned().unwrap_or_default()
                    }
                }
            };
            for callee in candidates {
                if !vis.allows(index.fns[caller].file, index.fns[callee].file) {
                    continue;
                }
                if seen[caller].insert(callee, ()).is_none() {
                    edges[caller].push(Edge { callee, call_offset: call.offset });
                    n_edges += 1;
                }
            }
        }
        CallGraph { edges, n_edges }
    }

    /// BFS from `roots`; shortest chains win, so diagnostics carry the
    /// tightest evidence available under the approximation.
    pub fn reach(&self, roots: &[usize]) -> Reach {
        let n = self.edges.len();
        let mut reach =
            Reach { parent: vec![None; n], reached: vec![false; n], root: vec![false; n] };
        let mut queue = VecDeque::new();
        for &r in roots {
            if !reach.reached[r] {
                reach.reached[r] = true;
                reach.root[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            for e in &self.edges[at] {
                if !reach.reached[e.callee] {
                    reach.reached[e.callee] = true;
                    reach.parent[e.callee] = Some((at, e.call_offset));
                    queue.push_back(e.callee);
                }
            }
        }
        reach
    }
}

/// Convenience for rules: the fn item for an id.
pub fn item<'a>(index: &'a ItemIndex, id: usize) -> &'a FnItem {
    &index.fns[id]
}

/// Whether a path qualifier names a type (upper-case initial or a
/// primitive) rather than a module.
fn is_type_like(q: &str) -> bool {
    q.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        || matches!(
            q,
            "u8" | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "isize"
                | "f32"
                | "f64"
                | "bool"
                | "char"
                | "str"
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<SourceFile>, ItemIndex, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, text)| SourceFile::parse(rel, text).expect("parses"))
            .collect();
        let index = ItemIndex::build(&files);
        let graph = CallGraph::build(&index, &files);
        (files, index, graph)
    }

    fn id_of(index: &ItemIndex, name: &str) -> usize {
        index.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("fn {name}"))
    }

    #[test]
    fn direct_and_cross_file_edges() {
        let (_, idx, g) = graph_of(&[
            ("crates/a/src/lib.rs", "use mvp_b::helper;\npub fn entry() { helper(); }\n"),
            ("crates/b/src/lib.rs", "pub fn helper() { }\n"),
        ]);
        let entry = id_of(&idx, "entry");
        let helper = id_of(&idx, "helper");
        assert!(g.edges[entry].iter().any(|e| e.callee == helper));
        let reach = g.reach(&[entry]);
        assert!(reach.contains(helper));
        assert_eq!(reach.chain_to(helper, &idx).len(), 2);
    }

    #[test]
    fn trait_method_calls_edge_to_every_impl() {
        // `.score()` on an unknown receiver must conservatively edge to
        // every workspace impl of `score` — that is what keeps
        // trait-object and generic dispatch inside the sweep.
        let (_, idx, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "trait Score { fn score(&self) -> f64; }\n\
             struct Fast;\n\
             impl Score for Fast { fn score(&self) -> f64 { 1.0 } }\n\
             struct Slow;\n\
             impl Score for Slow { fn score(&self) -> f64 { 2.0 } }\n\
             pub fn run(s: &dyn Score) -> f64 { s.score() }\n",
        )]);
        let run = id_of(&idx, "run");
        let reach = g.reach(&[run]);
        let scores: Vec<usize> = idx
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == "score" && f.owner.is_some())
            .map(|(id, _)| id)
            .collect();
        assert_eq!(scores.len(), 2, "both impl fns indexed");
        for id in scores {
            assert!(reach.contains(id), "impl fn {id} must be reached conservatively");
        }
    }

    #[test]
    fn std_shadowed_names_and_foreign_types_resolve_to_nothing() {
        let (_, idx, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "struct Q { inner: Vec<u32> }\n\
             impl Q { fn push(&mut self, v: u32) { self.inner.push(v) } }\n\
             pub fn run(v: &mut Vec<u32>) { v.push(1); let _s = String::new(); }\n",
        )]);
        let run = id_of(&idx, "run");
        // `v.push(1)` is assumed std, and `String::new` is a foreign
        // type: neither may edge into the workspace.
        assert!(g.edges[run].is_empty(), "{:?}", g.edges[run]);
        let reach = g.reach(&[run]);
        assert!(!reach.contains(id_of(&idx, "push")));
    }

    #[test]
    fn edges_respect_crate_dependency_direction() {
        // Crate a mentions mvp_b (depends on it); crate b does not know
        // crate a. The same-named fallback may only point a -> b.
        let (_, idx, g) = graph_of(&[
            ("crates/a/src/lib.rs", "use mvp_b::helper;\npub fn caller_a() { helper(); }\n"),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() { }\npub fn caller_b() { renamed_helper(); }\n",
            ),
            ("crates/a/src/extra.rs", "pub fn renamed_helper() { }\n"),
        ]);
        let caller_a = id_of(&idx, "caller_a");
        let caller_b = id_of(&idx, "caller_b");
        assert!(g.edges[caller_a].iter().any(|e| e.callee == id_of(&idx, "helper")));
        // b cannot see a, so the name match must be dropped.
        assert!(g.edges[caller_b].is_empty(), "{:?}", g.edges[caller_b]);
    }

    #[test]
    fn recursion_terminates() {
        let (_, idx, g) =
            graph_of(&[("crates/a/src/lib.rs", "fn a() { b(); }\nfn b() { a(); }\n")]);
        let reach = g.reach(&[id_of(&idx, "a")]);
        assert!(reach.contains(id_of(&idx, "b")));
        assert!(reach.contains(id_of(&idx, "a")));
    }
}
