//! The item layer: every `fn` in the workspace as an addressable node,
//! plus every call and method-call expression inside it.
//!
//! This sits between the lexer and the call graph. [`SourceFile`]
//! already finds `fn` and `impl` brace spans; this module lifts them
//! into a flat, workspace-wide [`ItemIndex`] — each function tagged
//! with its impl owner (for conservative method resolution) — and
//! scans each body for call expressions:
//!
//! - `name(...)` — a free call,
//! - `.name(...)` — a method call (with the `self.name(...)` receiver
//!   special-cased, since that one *can* be resolved precisely),
//! - `Qual::name(...)` — a qualified call, keeping the last path
//!   segment before the name as the qualifier (a type or module name).
//!
//! Turbofish (`name::<T>(...)`) is stepped over; macros (`name!`) and
//! definitions (`fn name(`) are not calls. The scan is deliberately
//! *syntactic*: it never knows receiver types, so resolution in
//! `callgraph` over-approximates by name. The soundness caveats are
//! documented in DESIGN.md §8 ("Workspace analysis").

use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Words that look like `ident (` but never name a workspace function.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "loop", "match", "return", "let", "fn", "impl", "use",
    "pub", "mod", "where", "move", "ref", "mut", "break", "continue", "unsafe", "dyn", "crate",
    "super", "as", "const", "static", "type", "trait", "enum", "struct", "union", "await",
];

/// One `fn` item somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The self-type of the innermost enclosing `impl`, when the fn is
    /// a method or associated function; `None` for free functions.
    pub owner: Option<String>,
    /// The trait being implemented, when the enclosing impl is a trait
    /// impl (`impl Trait for Type`).
    pub trait_name: Option<String>,
    /// Byte span of the item (signature through closing `}`).
    pub start: usize,
    /// End of the item (exclusive).
    pub end: usize,
    /// 1-based line of the item start.
    pub line: usize,
    /// Whether the item is test code (test file, `#[cfg(test)]` module
    /// or `#[test]` fn).
    pub is_test: bool,
}

/// How a call expression names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(...)`; `self_receiver` is true for exactly
    /// `self.name(...)` (one-segment receiver), which resolves within
    /// the enclosing impl when possible.
    Method {
        /// True when the receiver is the bare `self`.
        self_receiver: bool,
    },
    /// `Qual::name(...)` — the qualifier is the last path segment
    /// before the callee (a type name, or a module for free fns).
    Qualified(String),
    /// `name(...)` with no receiver or path qualifier.
    Free,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// File the call appears in.
    pub file: usize,
    /// Id (into [`ItemIndex::fns`]) of the innermost enclosing fn;
    /// `None` for calls in top-level const/static initializers.
    pub caller: Option<usize>,
    /// Callee name (last path segment).
    pub callee: String,
    /// Call shape, used for resolution.
    pub kind: CallKind,
    /// Byte offset of the callee token.
    pub offset: usize,
}

/// Flat index of every fn item and call site across a file set.
pub struct ItemIndex {
    /// All functions, in (file, span start) order.
    pub fns: Vec<FnItem>,
    /// All call expressions found inside the files.
    pub calls: Vec<CallSite>,
}

impl ItemIndex {
    /// Builds the index over an already-parsed file set. The `files`
    /// slice order defines the `file` indices used throughout.
    pub fn build(files: &[SourceFile]) -> ItemIndex {
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for span in f.fn_spans() {
                let owner =
                    f.impl_at(span.start).map(|imp| (imp.name.clone(), imp.trait_name.clone()));
                fns.push(FnItem {
                    file: fi,
                    name: span.name.clone(),
                    owner: owner.as_ref().map(|(n, _)| n.clone()),
                    trait_name: owner.and_then(|(_, t)| t),
                    start: span.start,
                    end: span.end,
                    line: f.line_of(span.start),
                    is_test: f.is_test_at(span.start),
                });
            }
        }
        let mut index = ItemIndex { fns, calls: Vec::new() };
        for (fi, f) in files.iter().enumerate() {
            index.scan_calls(fi, f);
        }
        index
    }

    /// Id of the innermost fn containing `offset` in `file`, if any.
    pub fn fn_at(&self, file: usize, offset: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, it)| it.file == file && offset >= it.start && offset < it.end)
            .min_by_key(|(_, it)| it.end - it.start)
            .map(|(id, _)| id)
    }

    /// Ids of every non-test fn named `name`.
    pub fn fns_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = usize> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, it)| it.name == name && !it.is_test)
            .map(|(id, _)| id)
    }

    /// Scans one file's token stream for call expressions.
    fn scan_calls(&mut self, fi: usize, f: &SourceFile) {
        let toks = f.code();
        let word = |i: usize| toks.get(i).map_or("", |t| t.1);
        let is_punct =
            |i: usize, c: &str| toks.get(i).is_some_and(|t| t.0 == TokKind::Punct && t.1 == c);
        for i in 0..toks.len() {
            let (kind, name, at) = toks[i];
            if kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&name) || name == "self" {
                continue;
            }
            // A definition (`fn name(`) is not a call.
            if i > 0 && word(i - 1) == "fn" {
                continue;
            }
            // Step over a turbofish: `name::<T, U>(`.
            let mut j = i + 1;
            if is_punct(j, ":") && is_punct(j + 1, ":") && is_punct(j + 2, "<") {
                let mut depth = 0usize;
                j += 2;
                while j < toks.len() {
                    if is_punct(j, "<") {
                        depth += 1;
                    } else if is_punct(j, ">") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if !is_punct(j, "(") {
                continue;
            }
            let call_kind = if i > 0 && is_punct(i - 1, ".") {
                // `recv.name(` — exactly `self.name(` when the token
                // before the dot is `self` not itself preceded by `.`.
                let self_receiver =
                    i >= 2 && word(i - 2) == "self" && !(i >= 3 && is_punct(i - 3, "."));
                CallKind::Method { self_receiver }
            } else if i >= 2 && is_punct(i - 1, ":") && is_punct(i - 2, ":") {
                CallKind::Qualified(path_qualifier(&toks, i))
            } else {
                CallKind::Free
            };
            self.calls.push(CallSite {
                file: fi,
                caller: self.fn_at(fi, at),
                callee: name.to_string(),
                kind: call_kind,
                offset: at,
            });
        }
    }
}

/// The last path segment before `:: name` at token index `i`, stepping
/// back over a generic argument list (`Vec::<f64>::new`). Returns an
/// empty string when the walk finds no identifier (e.g. `<T>::new`).
fn path_qualifier(toks: &[(TokKind, &str, usize)], i: usize) -> String {
    // toks[i-1] and toks[i-2] are the `::` pair.
    let mut j = i.saturating_sub(3);
    if toks.get(j).is_some_and(|t| t.0 == TokKind::Punct && t.1 == ">") {
        let mut depth = 0usize;
        loop {
            let t = &toks[j];
            if t.0 == TokKind::Punct && t.1 == ">" {
                depth += 1;
            } else if t.0 == TokKind::Punct && t.1 == "<" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return String::new();
            }
            j -= 1;
        }
        // Before the `<` there may be another `::` pair (turbofish
        // form) or the qualifying identifier directly follows.
        if j >= 2
            && toks[j - 1].0 == TokKind::Punct
            && toks[j - 1].1 == ":"
            && toks[j - 2].0 == TokKind::Punct
            && toks[j - 2].1 == ":"
        {
            j = j.saturating_sub(3);
        } else {
            j = j.saturating_sub(1);
        }
    }
    toks.get(j).filter(|t| t.0 == TokKind::Ident).map(|t| t.1.to_string()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str) -> (Vec<SourceFile>, ItemIndex) {
        let files = vec![SourceFile::parse("crates/x/src/lib.rs", src).expect("parses")];
        let index = ItemIndex::build(&files);
        (files, index)
    }

    #[test]
    fn fns_carry_owner_and_trait() {
        let src = "\
fn free() {}\n\
impl Mat {\n    fn rows(&self) {}\n}\n\
impl Persist for Mat {\n    fn encode(&self) {}\n}\n";
        let (_, idx) = index_of(src);
        let by_name = |n: &str| idx.fns.iter().find(|f| f.name == n).expect(n);
        assert_eq!(by_name("free").owner, None);
        assert_eq!(by_name("rows").owner.as_deref(), Some("Mat"));
        let enc = by_name("encode");
        assert_eq!(enc.owner.as_deref(), Some("Mat"));
        assert_eq!(enc.trait_name.as_deref(), Some("Persist"));
    }

    #[test]
    fn call_shapes_classified() {
        let src = "\
fn caller(&self) {\n\
    helper();\n\
    self.own_method();\n\
    other.their_method();\n\
    Vec::with_capacity(4);\n\
    Vec::<f64>::new();\n\
    parse::<u32>(\"1\");\n\
    not_a_macro!(x);\n\
}\n";
        let (_, idx) = index_of(src);
        let call = |n: &str| idx.calls.iter().find(|c| c.callee == n);
        assert_eq!(call("helper").expect("free").kind, CallKind::Free);
        assert_eq!(
            call("own_method").expect("self method").kind,
            CallKind::Method { self_receiver: true }
        );
        assert_eq!(
            call("their_method").expect("method").kind,
            CallKind::Method { self_receiver: false }
        );
        assert_eq!(
            call("with_capacity").expect("qualified").kind,
            CallKind::Qualified("Vec".to_string())
        );
        assert_eq!(call("new").expect("turbofish path").kind, CallKind::Qualified("Vec".into()));
        assert_eq!(call("parse").expect("turbofish free").kind, CallKind::Free);
        assert!(call("not_a_macro").is_none(), "macros are not calls");
    }

    #[test]
    fn definitions_and_keywords_are_not_calls() {
        let src = "fn outer(x: u32) { if (x > 0) { return (x); } match (x, 1) { _ => {} } }\n";
        let (_, idx) = index_of(src);
        assert!(idx.calls.is_empty(), "{:?}", idx.calls);
    }

    #[test]
    fn calls_attribute_to_innermost_fn() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    trunk();\n}\n";
        let (_, idx) = index_of(src);
        let inner_id = idx.fns.iter().position(|f| f.name == "inner").expect("inner");
        let outer_id = idx.fns.iter().position(|f| f.name == "outer").expect("outer");
        let leaf = idx.calls.iter().find(|c| c.callee == "leaf").expect("leaf");
        let trunk = idx.calls.iter().find(|c| c.callee == "trunk").expect("trunk");
        assert_eq!(leaf.caller, Some(inner_id));
        assert_eq!(trunk.caller, Some(outer_id));
    }

    #[test]
    fn test_fns_are_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn prod() {}\n";
        let (_, idx) = index_of(src);
        assert!(idx.fns.iter().find(|f| f.name == "helper").expect("helper").is_test);
        assert!(!idx.fns.iter().find(|f| f.name == "prod").expect("prod").is_test);
        assert_eq!(idx.fns_named("helper").count(), 0, "test fns hidden from resolution");
    }
}
