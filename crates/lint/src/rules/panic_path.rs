//! `panic-path`: nothing reachable from the serve request path may
//! panic.
//!
//! The interprocedural successor to the per-file `serve-no-panic` rule
//! of PR 5. That rule could only see `crates/serve/src` text; a worker
//! thread dies just as dead when the panic lives three calls deep in
//! `mvp-asr` or `mvp-core`. This rule roots a BFS at the serve engine's
//! request-handling entry points (submission, the worker/batcher/
//! collector loops, the stream and verdict surfaces), walks the
//! workspace call graph, and denies `panic!` / `unreachable!` /
//! `.unwrap()` / `.expect()` in every function the sweep reaches.
//! Slice/Vec indexing (`x[i]`, itself a panic site) is additionally
//! denied inside the serve crate, where the request plumbing lives;
//! in the numeric crates index bounds are the kernels' documented
//! contract, and flagging every subscript would drown the signal.
//!
//! Diagnostics carry the full call chain from the entry point to the
//! panic site, so the finding is evidence, not vibes. `loadgen.rs` is
//! exempt (it drives the engine from outside), as is all test code.

use crate::diag::{ChainHop, Diagnostic, Severity};
use crate::engine::Workspace;
use crate::lexer::TokKind;
use crate::rules::reachable::{chain_hops, chain_root, reached_by_file};
use crate::rules::WorkspaceRule;

const NAME: &str = "panic-path";

/// Request-handling entry points of the serve crate, by fn name. The
/// rule denies (with a meta-finding) a workspace where none of these
/// resolve, so a serve-API rename cannot silently disable the sweep.
const ROOT_NAMES: &[&str] = &[
    // Request submission and the blocking convenience wrapper.
    "submit",
    "submit_stream",
    "detect_blocking",
    // The engine's long-lived request-processing threads.
    "worker_loop",
    "batcher_loop",
    "collector_loop",
    // Verdict retrieval on the caller side of the rendezvous.
    "wait",
    "try_wait",
    "wait_timeout",
    // The streaming ingress surface.
    "push",
    "push_arc",
    "try_verdict",
    "finish",
];

pub struct PanicPath;

impl WorkspaceRule for PanicPath {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "no panic!/unreachable!/unwrap/expect reachable from serve request entry points \
         (interprocedural; indexing also denied inside crates/serve; loadgen exempt)"
    }

    fn explain(&self) -> &'static str {
        "The serve engine promises graceful degradation: a request that cannot be answered \
         well is answered worse (fewer auxiliaries, benign-mean threshold, default verdict), \
         never not at all. One panic anywhere under a request-handling entry point kills a \
         persistent worker thread and silently shrinks the engine until it wedges. The \
         per-file predecessor (serve-no-panic) policed crates/serve/src textually; this rule \
         walks the workspace call graph from the entry points (submit / submit_stream / \
         detect_blocking, the worker/batcher/collector loops, the verdict and stream \
         surfaces) and denies panic!/unreachable!/.unwrap()/.expect() in everything reached \
         — mvp-core scoring, mvp-asr transcription, mvp-dsp features included. Indexing \
         (x[i]) is additionally denied inside crates/serve itself.\n\
         The graph is name-resolved and so over-approximates: a method call edges to every \
         same-named method in the workspace. A finding therefore means \"possibly on the \
         request path\"; the call chain in the diagnostic shows the witness.\n\
         Fix: propagate a typed error and let the degrade ladder answer, or restructure so \
         the invariant is visible (get/if-let instead of unwrap). When the panic guards a \
         genuine internal invariant that request input cannot trigger, suppress at the site \
         with `// mvp-lint: allow(panic-path) -- <why this cannot fire on request input>`."
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = ws
            .index
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && ROOT_NAMES.contains(&f.name.as_str())
                    && in_serve(&ws.files[f.file].rel)
            })
            .map(|(id, _)| id)
            .collect();
        if roots.is_empty() {
            out.push(Diagnostic {
                rule: NAME,
                severity: Severity::Deny,
                path: "crates/serve/src/engine.rs".to_string(),
                line: 1,
                col: 1,
                message: "panic-path resolved no request-path entry points; the serve API \
                          and the rule's ROOT_NAMES table have drifted apart"
                    .to_string(),
                chain: Vec::new(),
            });
            return;
        }
        let reach = ws.graph.reach(&roots);
        for (file_id, fn_ids) in reached_by_file(ws, &reach) {
            let file = &ws.files[file_id];
            if file.rel.ends_with("/loadgen.rs") {
                continue;
            }
            let index_in_scope = in_serve(&file.rel);
            let toks = file.code();
            for fn_id in fn_ids {
                let item = &ws.index.fns[fn_id];
                let mut chain: Option<Vec<ChainHop>> = None;
                for (ti, &(kind, word, at)) in toks.iter().enumerate() {
                    if at < item.start || at >= item.end {
                        continue;
                    }
                    // Constructs inside a nested fn belong to that node.
                    if ws.index.fn_at(file_id, at) != Some(fn_id) {
                        continue;
                    }
                    if file.is_test_at(at) {
                        continue;
                    }
                    let construct = match kind {
                        TokKind::Ident => match word {
                            "unwrap" | "expect" => {
                                let dotted = ti > 0 && toks[ti - 1].1 == ".";
                                let called = toks.get(ti + 1).is_some_and(|t| t.1 == "(");
                                (dotted && called).then(|| format!(".{word}()"))
                            }
                            "panic" | "unreachable" => toks
                                .get(ti + 1)
                                .is_some_and(|t| t.1 == "!")
                                .then(|| format!("{word}!")),
                            _ => None,
                        },
                        TokKind::Punct if word == "[" && index_in_scope => {
                            let indexes = ti > 0
                                && matches!(
                                    toks[ti - 1],
                                    (TokKind::Ident, w, _) if !is_keyword(w)
                                )
                                || ti > 0 && matches!(toks[ti - 1].1, ")" | "]");
                            indexes.then(|| "[...] indexing".to_string())
                        }
                        _ => None,
                    };
                    let Some(construct) = construct else { continue };
                    let hops = chain.get_or_insert_with(|| chain_hops(ws, &reach, fn_id)).clone();
                    let (line, col) = file.line_col(at);
                    out.push(Diagnostic {
                        rule: NAME,
                        severity: Severity::Deny,
                        path: file.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "{construct} reachable from serve entry `{}` ({} hop{}); the \
                             request path degrades, it does not abort — propagate an error \
                             (chain below is the witness)",
                            chain_root(&hops),
                            hops.len() - 1,
                            if hops.len() == 2 { "" } else { "s" },
                        ),
                        chain: hops,
                    });
                }
            }
        }
    }
}

fn in_serve(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
}

/// Keywords that precede `[` without indexing (e.g. `return [a, b]`).
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "return" | "in" | "break" | "else" | "match" | "as" | "mut" | "ref" | "move" | "let"
    )
}
