//! `hot-path-alloc`: no heap allocation reachable from the scratch-plan
//! `*_into` functions or the kernel-plane entry points.
//!
//! PR 7 introduced the scratch-buffer convention: every per-frame
//! numeric routine has a `*_into(..., scratch)` form that writes into
//! caller-owned storage, precisely so the steady-state pipeline
//! allocates nothing. An allocation smuggled three calls below a
//! `*_into` fn silently un-does that contract — the benchmark numbers
//! decay and nobody sees why. This rule roots a BFS at every non-test
//! `*_into` fn in the numeric crates plus the named kernel-plane entry
//! points, and denies the allocating constructs (`Vec::new`,
//! `with_capacity`, `to_vec`, `clone`, `format!`, `vec!`, `Box::new`,
//! collection constructors) in everything reached.

use crate::diag::{ChainHop, Diagnostic, Severity};
use crate::engine::Workspace;
use crate::lexer::TokKind;
use crate::rules::reachable::{chain_hops, chain_root, reached_by_file};
use crate::rules::WorkspaceRule;

const NAME: &str = "hot-path-alloc";

/// Crates whose `*_into` fns are scratch-plan roots.
const CRATES: &[&str] = &["dsp", "asr", "core", "ml", "serve", "modality"];

/// Kernel-plane entry points rooted by name (all defined in
/// `crates/dsp/src/kernel.rs`).
const KERNEL_ROOTS: &[&str] = &[
    "dot",
    "sq_dist",
    "sq_zscore_sum",
    "axpy",
    "gemv",
    "gemm_nt",
    "dot_i8",
    "quantize_i8",
    "gemm_nt_i8",
    "forward",
    "hfft",
    "inverse",
];

/// Type names whose `::new(` / `::with_capacity(` constructors allocate.
const ALLOC_TYPES: &[&str] =
    &["Vec", "Box", "String", "VecDeque", "HashMap", "BTreeMap", "HashSet", "BinaryHeap"];

pub struct HotPathAlloc;

impl WorkspaceRule for HotPathAlloc {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "no heap allocation (Vec/Box/String ctors, with_capacity, to_vec, clone, format!, \
         vec!) reachable from scratch-plan *_into fns or kernel-plane entry points"
    }

    fn explain(&self) -> &'static str {
        "The scratch-buffer convention (`*_into(..., scratch)`) exists so the steady-state \
         detection pipeline — framing, mel, DCT, acoustic scoring, quantized matmul — runs \
         allocation-free after warm-up. Allocation in that path is not wrong, it is slow in \
         a way no test catches: malloc contention under the sharded engine, page faults in \
         the first seconds of a stream, benchmark noise that masks real regressions. This \
         rule walks the call graph from every non-test `*_into` fn in the numeric crates \
         and from the kernel-plane entry points (dot/gemv/gemm_nt/fft/dct and their i8 \
         variants) and denies the allocating constructs in everything reached.\n\
         The graph is name-resolved and over-approximates (a method call edges to every \
         same-named method), so the chain in the diagnostic is the witness to audit.\n\
         Fix: take a `&mut` scratch argument or reuse a buffer owned by the plan/struct. \
         One-time setup allocation that genuinely cannot run per-frame (thread-pool \
         scaffolding, plan construction) is suppressed at the site with \
         `// mvp-lint: allow(hot-path-alloc) -- <why this is not per-frame>`."
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = ws
            .index
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                if f.is_test {
                    return false;
                }
                let rel = &ws.files[f.file].rel;
                (f.name.ends_with("_into") && crate::rules::in_crate_src(rel, CRATES))
                    || (rel == "crates/dsp/src/kernel.rs"
                        && KERNEL_ROOTS.contains(&f.name.as_str()))
            })
            .map(|(id, _)| id)
            .collect();
        if roots.is_empty() {
            out.push(Diagnostic {
                rule: NAME,
                severity: Severity::Deny,
                path: "crates/dsp/src/kernel.rs".to_string(),
                line: 1,
                col: 1,
                message: "hot-path-alloc resolved no scratch-plan or kernel-plane roots; \
                          the kernel plane and the rule's root tables have drifted apart"
                    .to_string(),
                chain: Vec::new(),
            });
            return;
        }
        let reach = ws.graph.reach(&roots);
        for (file_id, fn_ids) in reached_by_file(ws, &reach) {
            let file = &ws.files[file_id];
            let toks = file.code();
            for fn_id in fn_ids {
                let item = &ws.index.fns[fn_id];
                let mut chain: Option<Vec<ChainHop>> = None;
                for (ti, &(kind, word, at)) in toks.iter().enumerate() {
                    if at < item.start || at >= item.end {
                        continue;
                    }
                    if ws.index.fn_at(file_id, at) != Some(fn_id) {
                        continue;
                    }
                    if file.is_test_at(at) {
                        continue;
                    }
                    if kind != TokKind::Ident {
                        continue;
                    }
                    let construct = match word {
                        // `Vec::new(`, `Box::new(`, ... — only when the
                        // qualifier is a known allocating type.
                        "new" => qualifier(&toks, ti)
                            .filter(|q| ALLOC_TYPES.contains(q))
                            .map(|q| format!("{q}::new()")),
                        // `with_capacity(` in any position (free,
                        // qualified or dotted) allocates.
                        "with_capacity" => toks
                            .get(ti + 1)
                            .is_some_and(|t| t.1 == "(")
                            .then(|| "with_capacity(..)".to_string()),
                        "to_vec" | "clone" | "to_owned" | "collect" => {
                            let dotted = ti > 0 && toks[ti - 1].1 == ".";
                            let called = toks.get(ti + 1).is_some_and(|t| t.1 == "(")
                                || toks.get(ti + 1).is_some_and(|t| t.1 == ":");
                            (dotted && called).then(|| format!(".{word}()"))
                        }
                        "format" | "vec" => {
                            toks.get(ti + 1).is_some_and(|t| t.1 == "!").then(|| format!("{word}!"))
                        }
                        _ => None,
                    };
                    let Some(construct) = construct else { continue };
                    let hops = chain.get_or_insert_with(|| chain_hops(ws, &reach, fn_id)).clone();
                    let (line, col) = file.line_col(at);
                    out.push(Diagnostic {
                        rule: NAME,
                        severity: Severity::Deny,
                        path: file.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "{construct} reachable from hot-path root `{}` ({} hop{}); the \
                             steady-state pipeline is allocation-free — take scratch storage \
                             from the caller (chain below is the witness)",
                            chain_root(&hops),
                            hops.len() - 1,
                            if hops.len() == 2 { "" } else { "s" },
                        ),
                        chain: hops,
                    });
                }
            }
        }
    }
}

/// The `Qual` of `Qual::name(` at token index `ti` (one path segment
/// back over the two-punct `::`), when present.
fn qualifier<'a>(toks: &[(TokKind, &'a str, usize)], ti: usize) -> Option<&'a str> {
    if ti >= 3 && toks[ti - 1].1 == ":" && toks[ti - 2].1 == ":" && toks[ti - 3].0 == TokKind::Ident
    {
        Some(toks[ti - 3].1)
    } else {
        None
    }
}
