//! `lock-discipline`: the cache mutex is taken in exactly one place.
//!
//! `SharedCache::with` centralises poison recovery for the serve-path
//! cache; any other `.lock()` call in `crates/serve/src` bypasses that
//! recovery and can deadlock or propagate poisoning into a worker.
//! The rule allows `.lock()` only inside a `fn with` of an
//! `impl SharedCache` block.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

const NAME: &str = "lock-discipline";

pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "in crates/serve, .lock() may appear only inside SharedCache::with (poison recovery)"
    }

    fn applies_to(&self, rel: &str) -> bool {
        rel.starts_with("crates/serve/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        for (i, &(kind, word, at)) in toks.iter().enumerate() {
            if kind != TokKind::Ident || word != "lock" {
                continue;
            }
            let dotted = i > 0 && toks[i - 1].1 == ".";
            let called = toks.get(i + 1).is_some_and(|t| t.1 == "(");
            if !dotted || !called {
                continue;
            }
            if file.is_test_at(at) {
                continue;
            }
            let in_with = file.fn_at(at).is_some_and(|f| f.name == "with")
                && file.in_impl_named(at, "SharedCache");
            if in_with {
                continue;
            }
            finding(
                file,
                NAME,
                self.severity(),
                at,
                "raw .lock() outside SharedCache::with; route cache access through \
                 SharedCache::with so poisoning is recovered in one place"
                    .to_string(),
                out,
            );
        }
    }
}
