//! `todo-markers`: no scaffolding ships.
//!
//! `todo!()` and `unimplemented!()` are runtime panics wearing a
//! comment's clothing, and `dbg!` is stderr noise with an artifact's
//! lifetime. None may appear in non-test code anywhere in the
//! workspace.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

const NAME: &str = "todo-markers";

pub struct TodoMarkers;

impl Rule for TodoMarkers {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "no todo!/unimplemented!/dbg! anywhere in non-test workspace code"
    }

    fn applies_to(&self, _rel: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        for i in 0..toks.len().saturating_sub(1) {
            let (kind, word, at) = toks[i];
            if kind != TokKind::Ident {
                continue;
            }
            if !matches!(word, "todo" | "unimplemented" | "dbg") {
                continue;
            }
            if toks[i + 1].1 != "!" {
                continue;
            }
            if file.is_test_at(at) {
                continue;
            }
            finding(
                file,
                NAME,
                self.severity(),
                at,
                format!("`{word}!` marker in non-test code; finish or remove it before merge"),
                out,
            );
        }
    }
}
