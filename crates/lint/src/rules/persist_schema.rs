//! `persist-schema`: every persisted type pins its schema version.
//!
//! The artifact container refuses payloads whose schema version does
//! not match the decoder (PR 3). That protocol only works if every
//! `impl Persist for T` declares its own `SCHEMA_VERSION` const —
//! inherited or copy-pasted versions silently couple unrelated types'
//! wire formats.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

const NAME: &str = "persist-schema";

pub struct PersistSchema;

impl Rule for PersistSchema {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "every `impl Persist for T` declares a `SCHEMA_VERSION` const for its wire format"
    }

    fn applies_to(&self, _rel: &str) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        // Collect `const SCHEMA_VERSION` declaration offsets once.
        let decls: Vec<usize> = toks
            .windows(2)
            .filter(|w| {
                w[0].0 == TokKind::Ident
                    && w[0].1 == "const"
                    && w[1].0 == TokKind::Ident
                    && w[1].1 == "SCHEMA_VERSION"
            })
            .map(|w| w[1].2)
            .collect();
        // `impl Persist for T` blocks come from the structural scan; the
        // trait definition itself (`trait Persist { ... }`) has no impl
        // span, so it is naturally exempt.
        for imp in file.impl_spans() {
            if imp.trait_name.as_deref() != Some("Persist") {
                continue;
            }
            if file.is_test_at(imp.start) {
                continue;
            }
            let has = decls.iter().any(|&d| d >= imp.start && d < imp.end);
            if !has {
                finding(
                    file,
                    NAME,
                    self.severity(),
                    imp.start,
                    format!(
                        "`impl Persist for {}` has no `SCHEMA_VERSION` const; declare the \
                         type's own wire-format version",
                        imp.name
                    ),
                    out,
                );
            }
        }
    }
}
