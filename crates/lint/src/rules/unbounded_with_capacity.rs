//! `unbounded-with-capacity`: parser allocations are bounded first.
//!
//! PR 4 hardened the WAV parser against declared-length attacks: a
//! length read from untrusted bytes must be checked against a limit
//! before it sizes an allocation. This rule flags
//! `Vec::with_capacity(expr)` / `vec![elem; expr]` in the parsing
//! crates when `expr` is dynamic (names a runtime variable) and no
//! comparison against any of those variables appears in the preceding
//! lines of the same function.
//!
//! The look-back is a proximity heuristic, so the rule is `warn`-level:
//! a guard placed further away (or expressed through a helper) is
//! reported but should be suppressed with a reason rather than
//! contorted.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

const NAME: &str = "unbounded-with-capacity";
/// How many lines above the allocation a guard may sit.
const LOOKBACK_LINES: usize = 15;

pub struct UnboundedWithCapacity;

impl Rule for UnboundedWithCapacity {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn doc(&self) -> &'static str {
        "in audio/artifact parsers, with_capacity/vec![..; n] from parsed values needs a \
         prior limit check (heuristic)"
    }

    fn applies_to(&self, rel: &str) -> bool {
        rel.starts_with("crates/audio/src/") || rel.starts_with("crates/artifact/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        for i in 0..toks.len() {
            let (kind, word, at) = toks[i];
            if kind != TokKind::Ident {
                continue;
            }
            // Locate the capacity expression's token range.
            let arg = if word == "with_capacity" && toks.get(i + 1).is_some_and(|t| t.1 == "(") {
                delimited(&toks, i + 1, "(", ")")
            } else if word == "vec"
                && toks.get(i + 1).is_some_and(|t| t.1 == "!")
                && toks.get(i + 2).is_some_and(|t| t.1 == "[")
            {
                // vec![elem; n] — take tokens after the top-level `;`.
                delimited(&toks, i + 2, "[", "]").and_then(|(lo, hi)| {
                    let mut depth = 0usize;
                    for j in lo..hi {
                        match toks[j].1 {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth = depth.saturating_sub(1),
                            ";" if depth == 0 => return Some((j + 1, hi)),
                            _ => {}
                        }
                    }
                    None
                })
            } else {
                None
            };
            let Some((lo, hi)) = arg else { continue };
            if file.is_test_at(at) {
                continue;
            }
            let vars = dynamic_idents(&toks[lo..hi]);
            if vars.is_empty() {
                continue; // constant-sized allocation
            }
            // Clamped inline (`n.min(LIMIT)`) counts as its own guard.
            if toks[lo..hi].iter().any(|t| t.0 == TokKind::Ident && t.1 == "min") {
                continue;
            }
            if guarded(file, &toks, i, &vars) {
                continue;
            }
            finding(
                file,
                NAME,
                self.severity(),
                at,
                format!(
                    "allocation sized by `{}` with no limit check in the preceding {} lines; \
                     compare against a maximum first or clamp with .min()",
                    vars.join("`/`"),
                    LOOKBACK_LINES
                ),
                out,
            );
        }
    }
}

/// Token index range strictly inside the delimiter pair opening at `open`.
fn delimited(
    toks: &[(TokKind, &str, usize)],
    open: usize,
    l: &str,
    r: &str,
) -> Option<(usize, usize)> {
    if toks.get(open)?.1 != l {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.1 == l {
            depth += 1;
        } else if t.1 == r {
            depth -= 1;
            if depth == 0 {
                return Some((open + 1, j));
            }
        }
    }
    None
}

/// Lower-case identifiers in the expression — runtime values, as opposed
/// to `SCREAMING_CASE` consts and type/path names.
fn dynamic_idents<'a>(toks: &[(TokKind, &'a str, usize)]) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    for (j, &(kind, word, _)) in toks.iter().enumerate() {
        if kind != TokKind::Ident {
            continue;
        }
        if word.chars().next().is_some_and(char::is_uppercase) {
            continue;
        }
        // Skip method names (`x.len()` — `len` is not the variable).
        if j > 0 && toks[j - 1].1 == "." {
            continue;
        }
        if matches!(word, "as" | "usize" | "u8" | "u16" | "u32" | "u64" | "f32" | "f64") {
            continue;
        }
        if !out.contains(&word) {
            out.push(word);
        }
    }
    out
}

/// Does a comparison involving one of `vars` appear between the start of
/// the look-back window and the allocation at token `site`?
fn guarded(file: &SourceFile, toks: &[(TokKind, &str, usize)], site: usize, vars: &[&str]) -> bool {
    let site_at = toks[site].2;
    let site_line = file.line_of(site_at);
    let fn_start = file.fn_at(site_at).map_or(0, |f| f.start);
    for (j, &(kind, word, at)) in toks.iter().enumerate().take(site) {
        if at < fn_start {
            continue;
        }
        if site_line.saturating_sub(file.line_of(at)) > LOOKBACK_LINES {
            continue;
        }
        if kind != TokKind::Ident || !vars.contains(&word) {
            continue;
        }
        // Comparison operator within a few tokens on either side.
        let lo = j.saturating_sub(3);
        let hi = (j + 4).min(site);
        if toks[lo..hi].iter().any(|t| t.0 == TokKind::Punct && matches!(t.1, "<" | ">")) {
            return true;
        }
        // `var.min(...)` clamps too.
        if toks.get(j + 1).is_some_and(|t| t.1 == ".")
            && toks.get(j + 2).is_some_and(|t| t.1 == "min")
        {
            return true;
        }
    }
    false
}
