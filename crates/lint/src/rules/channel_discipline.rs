//! `channel-discipline`: no unbounded channels in the serving plane.
//!
//! The engine's overload story depends on every queue having a cap: a
//! bounded ingress sheds at the door, bounded worker/collector channels
//! push back instead of buffering without limit, and the loadgen's
//! pending-ticket channel is sized to the offered schedule. One
//! `unbounded()` call quietly converts backpressure into unbounded
//! memory growth under sustained overload. The rule flags construction
//! of any unbounded channel in `crates/serve/src`:
//!
//! - `channel::unbounded()` / `crossbeam::channel::unbounded()`;
//! - `mpsc::channel()` (the std unbounded flavour — use
//!   `mpsc::sync_channel` or crossbeam `bounded` instead);
//! - tokio-style `unbounded_channel()` for future-proofing.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

const NAME: &str = "channel-discipline";

pub struct ChannelDiscipline;

impl Rule for ChannelDiscipline {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "in crates/serve, channels must be bounded: no unbounded()/mpsc::channel()"
    }

    fn applies_to(&self, rel: &str) -> bool {
        rel.starts_with("crates/serve/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        for (i, &(kind, word, at)) in toks.iter().enumerate() {
            if kind != TokKind::Ident {
                continue;
            }
            let called = is_called(&toks, i + 1);
            let flagged = match word {
                // `unbounded(...)` / `unbounded::<T>(...)`, bare or
                // path-qualified — every spelling constructs the
                // crossbeam unbounded channel.
                "unbounded" | "unbounded_channel" => called,
                // `mpsc::channel()` is std's unbounded constructor; the
                // bounded flavour is `mpsc::sync_channel`.
                "channel" => {
                    called
                        && i >= 3
                        && toks[i - 1].1 == ":"
                        && toks[i - 2].1 == ":"
                        && toks[i - 3].1 == "mpsc"
                }
                _ => false,
            };
            if !flagged || file.is_test_at(at) {
                continue;
            }
            finding(
                file,
                NAME,
                self.severity(),
                at,
                format!(
                    "unbounded channel `{word}` in the serving plane; use a bounded \
                     channel (crossbeam `channel::bounded` / `mpsc::sync_channel`) so \
                     overload turns into backpressure, not memory growth"
                ),
                out,
            );
        }
    }
}

/// Is the token at `j` the start of a call — `(` directly, or a
/// `::<T>(` turbofish leading to one?
fn is_called(toks: &[(TokKind, &str, usize)], j: usize) -> bool {
    match toks.get(j).map(|t| t.1) {
        Some("(") => true,
        Some(":")
            if toks.get(j + 1).map(|t| t.1) == Some(":")
                && toks.get(j + 2).map(|t| t.1) == Some("<") =>
        {
            // Skip the turbofish generics to the matching `>`.
            let mut depth = 0usize;
            for (k, t) in toks.iter().enumerate().skip(j + 2) {
                match t.1 {
                    "<" => depth += 1,
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return toks.get(k + 1).map(|t| t.1) == Some("(");
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        _ => false,
    }
}
