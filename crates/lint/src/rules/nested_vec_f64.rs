//! `nested-vec-f64`: the data plane is `Mat`, not jagged nested vectors.
//!
//! PR 2 unified every numeric path on the contiguous row-major
//! `mvp_dsp::Mat`; a `Vec<Vec<f64>>` reappearing in non-test code of a
//! numeric crate means a score or feature path has regressed to a
//! cache-hostile, per-row-allocating representation.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, in_crate_src, Rule};
use crate::source::SourceFile;

const NAME: &str = "nested-vec-f64";
const CRATES: &[&str] = &["dsp", "asr", "ml", "attack", "core"];

pub struct NestedVecF64;

impl Rule for NestedVecF64 {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "numeric crates carry matrices as contiguous Mat, never Vec<Vec<f64>>, outside tests"
    }

    fn applies_to(&self, rel: &str) -> bool {
        in_crate_src(rel, CRATES)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        // Match the token run: Vec < Vec < f64 > > — whitespace-immune.
        let words: Vec<&str> = toks.iter().map(|&(_, w, _)| w).collect();
        for i in 0..toks.len().saturating_sub(5) {
            let is = |j: usize, k: TokKind, w: &str| toks[i + j].0 == k && words[i + j] == w;
            if is(0, TokKind::Ident, "Vec")
                && is(1, TokKind::Punct, "<")
                && is(2, TokKind::Ident, "Vec")
                && is(3, TokKind::Punct, "<")
                && is(4, TokKind::Ident, "f64")
                && is(5, TokKind::Punct, ">")
            {
                let at = toks[i].2;
                if file.is_test_at(at) {
                    continue;
                }
                finding(
                    file,
                    NAME,
                    self.severity(),
                    at,
                    "Vec<Vec<f64>> in non-test numeric code; use mvp_dsp::Mat (contiguous \
                     row-major) instead"
                        .to_string(),
                    out,
                );
            }
        }
    }
}
