//! `numeric-truncation`: parsers convert lengths with `try_into`, not `as`.
//!
//! An `as` cast to a narrower (or platform-width) integer silently
//! wraps: a 3 GiB declared chunk length becomes a small `usize` on a
//! 32-bit target and the parser reads garbage instead of erroring. In
//! the byte-parsing crates (`audio`, `artifact`), integer narrowing
//! must go through `try_into()` / `usize::try_from` so oversized values
//! surface as format errors.
//!
//! The quantization plane is in scope for the same reason with different
//! stakes: `mvp_ml::quant` and the i8 kernels narrow `f64`/`i32` values
//! into `i8` ranges on every inference pass, and a wrapping cast there
//! does not crash — it silently corrupts logits. Narrowing must go
//! through the checked saturating helpers (`saturate_i8`/`saturate_i32`);
//! the one deliberate saturating `as i8` in the vectorized quantize
//! kernel carries a reasoned suppression with its parity test named.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

const NAME: &str = "numeric-truncation";
/// Cast targets that can lose value range from the wider parse types.
const NARROW: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32"];

pub struct NumericTruncation;

impl Rule for NumericTruncation {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "byte-format codecs (wav, artifact) and the quantization plane (ml quant, dsp kernels) \
         must not narrow integers with `as`; use try_into or the saturating helpers"
    }

    fn applies_to(&self, rel: &str) -> bool {
        // Scoped to the byte-format codecs, where the cast source is a
        // field read off the wire; synthesis/DSP sample-index math in
        // the rest of crates/audio is not parsing. The quantization
        // plane joins the scope because its i8 narrowing corrupts
        // logits silently instead of crashing.
        rel == "crates/audio/src/wav.rs"
            || rel.starts_with("crates/artifact/src/")
            || rel.starts_with("crates/ml/src/quant")
            || rel == "crates/dsp/src/kernel.rs"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        for i in 0..toks.len().saturating_sub(1) {
            let (kind, word, at) = toks[i];
            if kind != TokKind::Ident || word != "as" {
                continue;
            }
            let (tkind, tword, _) = toks[i + 1];
            if tkind != TokKind::Ident || !NARROW.contains(&tword) {
                continue;
            }
            if file.is_test_at(at) {
                continue;
            }
            finding(
                file,
                NAME,
                self.severity(),
                at,
                format!(
                    "narrowing `as {tword}` cast in parsing code; use `try_into()` so \
                     out-of-range values become format errors instead of wrapping"
                ),
                out,
            );
        }
    }
}
