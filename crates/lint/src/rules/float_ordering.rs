//! `float-ordering`: float comparators use `total_cmp`, never
//! `partial_cmp(...).unwrap()`.
//!
//! Every score, distance, fitness and probability in this workspace is
//! an `f64`, and almost every pipeline stage sorts or arg-maxes over
//! them. `partial_cmp` returns `None` for NaN, so the idiomatic-looking
//! `a.partial_cmp(b).unwrap()` comparator is a panic wired to the first
//! NaN a degenerate input produces — exactly the failure mode PR 9
//! fixed by hand in five scoring sites and this PR fixes in the three
//! remaining ones. `f64::total_cmp` is a total order (NaN sorts to the
//! edge, -0.0 < +0.0) at identical cost, so there is no reason to keep
//! the panicking form in scoring or decoding code.

use crate::diag::{Diagnostic, Severity};
use crate::engine::Workspace;
use crate::lexer::TokKind;
use crate::rules::WorkspaceRule;

const NAME: &str = "float-ordering";

/// Scoring/decoding crates where float comparators live.
const CRATES: &[&str] = &["asr", "core", "ml", "dsp", "attack", "modality", "serve", "textsim"];

pub struct FloatOrdering;

impl WorkspaceRule for FloatOrdering {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "scoring/decoding comparators use f64::total_cmp, never partial_cmp(..).unwrap()/expect()"
    }

    fn explain(&self) -> &'static str {
        "partial_cmp on floats returns None for NaN, so `a.partial_cmp(b).unwrap()` inside a \
         sort_by / min_by / max_by comparator panics on the first NaN that reaches it — and \
         NaN is exactly what adversarial or degenerate audio produces (log of a silent \
         frame, 0/0 normalisation). A panicking comparator in a scoring path is a denial of \
         service wired to the inputs the detector exists to handle.\n\
         Fix: `a.total_cmp(b)` — a total order over all f64 bit patterns (NaN sorts to the \
         edges, -0.0 < +0.0) with the same inlined cost. Existing tie-breaks compose \
         unchanged: `a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))`. If NaN must be *rejected* \
         rather than ordered, test for it explicitly before the sort; do not let the \
         comparator be the detector."
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (file_id, file) in ws.files.iter().enumerate() {
            if !crate::rules::in_crate_src(&file.rel, CRATES) {
                continue;
            }
            let toks = file.code();
            for (i, &(kind, word, at)) in toks.iter().enumerate() {
                if kind != TokKind::Ident || word != "partial_cmp" {
                    continue;
                }
                if !toks.get(i + 1).is_some_and(|t| t.1 == "(") {
                    continue;
                }
                if file.is_test_at(at) {
                    continue;
                }
                // Walk to the matching close paren, then require
                // `.unwrap(` / `.expect(` to follow.
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < toks.len() {
                    match toks[j].1 {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let unwrapped = toks.get(j + 1).is_some_and(|t| t.1 == ".")
                    && toks.get(j + 2).is_some_and(|t| {
                        t.0 == TokKind::Ident && matches!(t.1, "unwrap" | "expect")
                    })
                    && toks.get(j + 3).is_some_and(|t| t.1 == "(");
                if !unwrapped {
                    continue;
                }
                let method = toks[j + 2].1;
                let context = ws
                    .index
                    .fn_at(file_id, at)
                    .map(|id| format!(" in `{}`", ws.index.fns[id].name))
                    .unwrap_or_default();
                let (line, col) = file.line_col(at);
                out.push(Diagnostic {
                    rule: NAME,
                    severity: Severity::Deny,
                    path: file.rel.clone(),
                    line,
                    col,
                    message: format!(
                        "partial_cmp(..).{method}() comparator{context} panics on NaN; \
                         use f64::total_cmp (tie-breaks compose: .then(..))"
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}
