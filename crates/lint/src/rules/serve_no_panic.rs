//! `serve-no-panic`: the request path degrades, it does not abort.
//!
//! PR 1's serving engine promises graceful degradation under load; a
//! single `unwrap()` on a request path turns a recoverable condition
//! into a dead worker thread. Panicking constructs in
//! `crates/serve/src` non-test code must be replaced with error
//! propagation or carry a written suppression explaining why the panic
//! is an invariant (not an input) failure.
//!
//! `loadgen.rs` is exempt by scope: it is the load-generator harness
//! driving the engine from outside, not the request path itself.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

const NAME: &str = "serve-no-panic";

pub struct ServeNoPanic;

impl Rule for ServeNoPanic {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable! in crates/serve request-path code (loadgen exempt)"
    }

    fn applies_to(&self, rel: &str) -> bool {
        rel.starts_with("crates/serve/src/") && rel != "crates/serve/src/loadgen.rs"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        for (i, &(kind, word, at)) in toks.iter().enumerate() {
            if kind != TokKind::Ident {
                continue;
            }
            let construct = match word {
                "unwrap" | "expect" => {
                    // Method call: preceded by `.`, followed by `(`.
                    let dotted = i > 0 && toks[i - 1].1 == ".";
                    let called = toks.get(i + 1).is_some_and(|t| t.1 == "(");
                    if dotted && called {
                        Some(format!(".{word}()"))
                    } else {
                        None
                    }
                }
                "panic" | "unreachable" => {
                    // Macro: followed by `!`.
                    if toks.get(i + 1).is_some_and(|t| t.1 == "!") {
                        Some(format!("{word}!"))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            let Some(construct) = construct else { continue };
            if file.is_test_at(at) {
                continue;
            }
            finding(
                file,
                NAME,
                self.severity(),
                at,
                format!(
                    "{construct} on the serve request path; propagate an error (the engine \
                     must degrade, not abort)"
                ),
                out,
            );
        }
    }
}
