//! `kernel-discipline`: hot paths go through `mvp_dsp::kernel`, not the
//! scalar oracles.
//!
//! PR 7 introduced the kernel plane: the full-complex FFT, the naive
//! DCT-II loops and the dense mel filterbank survive only as correctness
//! oracles for the vectorized kernels. A direct call to one of them from
//! non-test code of a numeric crate means a hot path has quietly dropped
//! off the tuned implementations (the bench crate is exempt — it times
//! the oracles on purpose, as do the parity tests).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::rules::{finding, in_crate_src, Rule};
use crate::source::SourceFile;

const NAME: &str = "kernel-discipline";
const CRATES: &[&str] = &["dsp", "asr", "ml", "attack", "core", "serve", "modality"];

/// Scalar-oracle entry points that production code must reach only via
/// `mvp_dsp::kernel` (which dispatches to them under `force_scalar`).
const ORACLES: &[&str] = &[
    "fft",
    "ifft",
    "dft_naive",
    "dct2",
    "dct2_into",
    "dct2_transpose",
    "dct2_transpose_into",
    "apply_dense_into",
];

/// Files that define the oracles or the kernel dispatch over them.
const EXEMPT: &[&str] = &[
    "crates/dsp/src/fft.rs",
    "crates/dsp/src/dct.rs",
    "crates/dsp/src/mel.rs",
    "crates/dsp/src/kernel.rs",
];

pub struct KernelDiscipline;

impl Rule for KernelDiscipline {
    fn name(&self) -> &'static str {
        NAME
    }

    fn severity(&self) -> Severity {
        Severity::Deny
    }

    fn doc(&self) -> &'static str {
        "hot numeric paths call mvp_dsp::kernel, never the scalar oracles directly, outside tests"
    }

    fn applies_to(&self, rel: &str) -> bool {
        in_crate_src(rel, CRATES) && !EXEMPT.contains(&rel)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = file.code();
        // Match the token run `<oracle> (` — a direct call (or call-path
        // tail, e.g. `dct::dct2_into(...)`). Bare idents in `use` lists
        // or paths without a following `(` are re-exports, not calls.
        for i in 0..toks.len().saturating_sub(1) {
            let (kind, word, at) = toks[i];
            if kind != TokKind::Ident || !ORACLES.contains(&word) {
                continue;
            }
            let (next_kind, next_word, _) = toks[i + 1];
            if next_kind != TokKind::Punct || next_word != "(" {
                continue;
            }
            if file.is_test_at(at) {
                continue;
            }
            finding(
                file,
                NAME,
                self.severity(),
                at,
                format!(
                    "direct call to scalar oracle `{word}` in non-test code; route through \
                     mvp_dsp::kernel so the vectorized path (and its force_scalar dispatch) \
                     stays authoritative"
                ),
                out,
            );
        }
    }
}
