//! Shared scaffolding for reachability-based workspace rules: chain
//! evidence construction and per-file grouping of reached functions.

use std::collections::HashMap;

use crate::callgraph::Reach;
use crate::diag::ChainHop;
use crate::engine::Workspace;

/// Builds the human-facing call chain from a sweep root to `target`:
/// the root's declaration first, then each call site stepped through.
pub(crate) fn chain_hops(ws: &Workspace, reach: &Reach, target: usize) -> Vec<ChainHop> {
    let mut hops = Vec::new();
    let mut prev_file: Option<usize> = None;
    for (fn_id, offset) in reach.chain_to(target, &ws.index) {
        let entered = &ws.index.fns[fn_id];
        // The first hop's offset is the root's own declaration; later
        // offsets are call sites in the *previous* hop's file.
        let site_file = prev_file.unwrap_or(entered.file);
        let file = &ws.files[site_file];
        hops.push(ChainHop {
            path: file.rel.clone(),
            line: file.line_of(offset),
            fn_name: entered.name.clone(),
        });
        prev_file = Some(entered.file);
    }
    hops
}

/// Reached, non-test fn ids grouped by defining file, so a rule can
/// lex-scan each file once.
pub(crate) fn reached_by_file(ws: &Workspace, reach: &Reach) -> HashMap<usize, Vec<usize>> {
    let mut by_file: HashMap<usize, Vec<usize>> = HashMap::new();
    for id in reach.reached_ids() {
        let item = &ws.index.fns[id];
        if item.is_test {
            continue;
        }
        by_file.entry(item.file).or_default().push(id);
    }
    by_file
}

/// The name of the sweep root a chain starts from.
pub(crate) fn chain_root(chain: &[ChainHop]) -> &str {
    chain.first().map_or("?", |h| h.fn_name.as_str())
}
