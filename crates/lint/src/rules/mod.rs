//! The rule framework and the built-in rule set.
//!
//! Two rule shapes coexist. A [`Rule`] is a stateless checker over one
//! lexed [`SourceFile`]; scoping (which crates/paths a rule polices)
//! lives in the rule via [`Rule::applies_to`] so the engine stays
//! generic. A [`WorkspaceRule`] sees the whole parsed workspace at once
//! — the file set, the fn-item index and the call graph — so it can
//! enforce *interprocedural* invariants (reachability from entry
//! points) that no single file can witness. Test-code exemption is each
//! rule's responsibility via [`SourceFile::is_test_at`] /
//! [`crate::items::FnItem::is_test`], because a few rules could
//! legitimately gate tests too.

use crate::diag::{Diagnostic, Severity};
use crate::engine::Workspace;
use crate::source::SourceFile;

mod channel_discipline;
mod float_ordering;
mod hot_path_alloc;
mod kernel_discipline;
mod lock_discipline;
mod nested_vec_f64;
mod numeric_truncation;
mod panic_path;
mod persist_schema;
mod reachable;
mod todo_markers;
mod unbounded_with_capacity;

/// A per-file lint rule.
pub trait Rule {
    /// Stable kebab-case rule name (used in reports, `--rule`, and
    /// `allow(...)` suppressions).
    fn name(&self) -> &'static str;
    /// Gate level for findings of this rule.
    fn severity(&self) -> Severity;
    /// One-line invariant statement for `--list-rules`.
    fn doc(&self) -> &'static str;
    /// Multi-line rationale and fix guidance for `--explain`.
    fn explain(&self) -> &'static str {
        self.doc()
    }
    /// Whether the rule runs on this workspace-relative path.
    fn applies_to(&self, rel: &str) -> bool;
    /// Appends findings for `file` (already known to be in scope).
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// A workspace-level lint rule: sees every file, the item index and
/// the call graph in one pass.
pub trait WorkspaceRule {
    /// Stable kebab-case rule name.
    fn name(&self) -> &'static str;
    /// Gate level for findings of this rule.
    fn severity(&self) -> Severity;
    /// One-line invariant statement for `--list-rules`.
    fn doc(&self) -> &'static str;
    /// Multi-line rationale and fix guidance for `--explain`.
    fn explain(&self) -> &'static str {
        self.doc()
    }
    /// Appends findings over the whole workspace.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Name reserved for the engine's own suppression-format findings.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// All built-in per-file rules, in report order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nested_vec_f64::NestedVecF64),
        Box::new(kernel_discipline::KernelDiscipline),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(channel_discipline::ChannelDiscipline),
        Box::new(unbounded_with_capacity::UnboundedWithCapacity),
        Box::new(numeric_truncation::NumericTruncation),
        Box::new(persist_schema::PersistSchema),
        Box::new(todo_markers::TodoMarkers),
    ]
}

/// All built-in workspace rules, in report order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(panic_path::PanicPath),
        Box::new(float_ordering::FloatOrdering),
        Box::new(hot_path_alloc::HotPathAlloc),
    ]
}

/// Every valid rule name accepted by `--rule` and `allow(...)`,
/// including the engine-owned `suppression-hygiene`.
pub fn known_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all().iter().map(|r| r.name()).collect();
    names.extend(workspace_rules().iter().map(|r| r.name()));
    names.push(SUPPRESSION_HYGIENE);
    names
}

/// The `--explain` text for a rule name, when the rule exists.
pub fn explain(name: &str) -> Option<(&'static str, Severity, &'static str)> {
    for r in all() {
        if r.name() == name {
            return Some((r.name(), r.severity(), r.explain()));
        }
    }
    for r in workspace_rules() {
        if r.name() == name {
            return Some((r.name(), r.severity(), r.explain()));
        }
    }
    if name == SUPPRESSION_HYGIENE {
        return Some((
            SUPPRESSION_HYGIENE,
            Severity::Deny,
            "Engine-owned and unsuppressible: every `mvp-lint:` marker must be a well-formed \
             `allow(<known-rule>) -- <reason>`. A marker that silently fails to parse would \
             disable a suppression (or worse, look like one while suppressing nothing), so \
             format errors are deny findings in their own right.\n\
             Fix: write `// mvp-lint: allow(rule-a, rule-b) -- why this violation is sound`.",
        ));
    }
    None
}

/// Shared helper: is `rel` a `src/` file of one of the named crate dirs?
pub(crate) fn in_crate_src(rel: &str, crates: &[&str]) -> bool {
    crates.iter().any(|c| rel.strip_prefix(&format!("crates/{c}/src/")).is_some())
}

/// Shared helper: push a finding at byte `offset` of `file`.
pub(crate) fn finding(
    file: &SourceFile,
    rule: &'static str,
    severity: Severity,
    offset: usize,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let (line, col) = file.line_col(offset);
    out.push(Diagnostic {
        rule,
        severity,
        path: file.rel.clone(),
        line,
        col,
        message,
        chain: Vec::new(),
    });
}
