//! The rule framework and the built-in rule set.
//!
//! Each rule is a stateless checker over one lexed [`SourceFile`].
//! Scoping (which crates/paths a rule polices) lives in the rule via
//! [`Rule::applies_to`] so the engine stays generic; test-code
//! exemption is each rule's responsibility via
//! [`SourceFile::is_test_at`], because a few rules (none today) could
//! legitimately gate tests too.

use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

mod channel_discipline;
mod kernel_discipline;
mod lock_discipline;
mod nested_vec_f64;
mod numeric_truncation;
mod persist_schema;
mod serve_no_panic;
mod todo_markers;
mod unbounded_with_capacity;

/// A lint rule.
pub trait Rule {
    /// Stable kebab-case rule name (used in reports, `--rule`, and
    /// `allow(...)` suppressions).
    fn name(&self) -> &'static str;
    /// Gate level for findings of this rule.
    fn severity(&self) -> Severity;
    /// One-line invariant statement for `--list-rules`.
    fn doc(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path.
    fn applies_to(&self, rel: &str) -> bool;
    /// Appends findings for `file` (already known to be in scope).
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Name reserved for the engine's own suppression-format findings.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// All built-in rules, in report order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nested_vec_f64::NestedVecF64),
        Box::new(kernel_discipline::KernelDiscipline),
        Box::new(serve_no_panic::ServeNoPanic),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(channel_discipline::ChannelDiscipline),
        Box::new(unbounded_with_capacity::UnboundedWithCapacity),
        Box::new(numeric_truncation::NumericTruncation),
        Box::new(persist_schema::PersistSchema),
        Box::new(todo_markers::TodoMarkers),
    ]
}

/// Every valid rule name accepted by `--rule` and `allow(...)`,
/// including the engine-owned `suppression-hygiene`.
pub fn known_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all().iter().map(|r| r.name()).collect();
    names.push(SUPPRESSION_HYGIENE);
    names
}

/// Shared helper: is `rel` a `src/` file of one of the named crate dirs?
pub(crate) fn in_crate_src(rel: &str, crates: &[&str]) -> bool {
    crates.iter().any(|c| rel.strip_prefix(&format!("crates/{c}/src/")).is_some())
}

/// Shared helper: push a finding at byte `offset` of `file`.
pub(crate) fn finding(
    file: &SourceFile,
    rule: &'static str,
    severity: Severity,
    offset: usize,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let (line, col) = file.line_col(offset);
    out.push(Diagnostic { rule, severity, path: file.rel.clone(), line, col, message });
}
