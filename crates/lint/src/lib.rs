//! **mvp-lint** — workspace-aware static analysis for the mvp-ears
//! workspace.
//!
//! The paper's defense works because independent implementations hold
//! independent invariants; the workspace works the same way, and this
//! crate is where those invariants become executable. Each PR that
//! established a discipline — the `Mat` data plane, the non-panicking
//! serve path, the artifact schema protocol, the hardened parsers —
//! contributes a rule, and `scripts/ci.sh` gates merges on the rules
//! holding.
//!
//! The design follows `mvp-obs`: zero external dependencies, a
//! hand-rolled lexer, and reporters built on `mvp_obs::json`. The lexer
//! produces a faithful token stream (comments, strings, raw strings,
//! lifetimes vs. char literals), so rules match token sequences and are
//! immune to look-alikes inside strings or comments.
//!
//! Findings are silenced inline with
//! `// mvp-lint: allow(<rule>) -- <reason>`; the reason is mandatory
//! and the marker's format is itself linted (`suppression-hygiene`).

pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{Diagnostic, Severity};
pub use engine::{lint_source, lint_workspace, LintReport};
