//! Reporters: a human-readable listing and a machine-readable JSON
//! document (built on `mvp_obs::json`, like every other artifact the
//! workspace emits).

use mvp_obs::json::JsonObj;

use crate::diag::Severity;
use crate::engine::LintReport;
use crate::rules;

/// Human-readable report: one `path:line:col: [sev] rule: message` per
/// finding — with its call-chain evidence indented below for
/// interprocedural findings — then a summary line.
pub fn human(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
        for hop in &d.chain {
            out.push_str(&format!("    via {} ({}:{})\n", hop.fn_name, hop.path, hop.line));
        }
    }
    let denies = count(report, Severity::Deny);
    let warns = count(report, Severity::Warn);
    out.push_str(&format!(
        "mvp-lint: {} file(s) scanned, {} fn(s) / {} edge(s) in call graph, {} deny, {} warn, {} suppressed\n",
        report.files_scanned, report.graph_nodes, report.graph_edges, denies, warns, report.suppressed
    ));
    out
}

/// JSON report document.
pub fn json(report: &LintReport) -> String {
    let mut findings = String::from("[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            findings.push(',');
        }
        let mut chain = String::from("[");
        for (j, hop) in d.chain.iter().enumerate() {
            if j > 0 {
                chain.push(',');
            }
            chain.push_str(
                &JsonObj::new()
                    .str("fn", &hop.fn_name)
                    .str("path", &hop.path)
                    .u64("line", hop.line as u64)
                    .finish(),
            );
        }
        chain.push(']');
        findings.push_str(
            &JsonObj::new()
                .str("rule", d.rule)
                .str("severity", d.severity.name())
                .str("path", &d.path)
                .u64("line", d.line as u64)
                .u64("col", d.col as u64)
                .str("message", &d.message)
                .raw("chain", &chain)
                .finish(),
        );
    }
    findings.push(']');
    JsonObj::new()
        .str("tool", "mvp-lint")
        .u64("files_scanned", report.files_scanned as u64)
        .u64("graph_nodes", report.graph_nodes as u64)
        .u64("graph_edges", report.graph_edges as u64)
        .u64("deny", count(report, Severity::Deny) as u64)
        .u64("warn", count(report, Severity::Warn) as u64)
        .u64("suppressed", report.suppressed as u64)
        .raw("findings", &findings)
        .finish()
}

/// The `--list-rules` table: one `name  severity  doc` line per rule —
/// per-file rules, then workspace rules, then the engine-owned
/// `suppression-hygiene`. Asserted verbatim by a unit test so a new
/// rule cannot ship without a doc line.
pub fn list_rules() -> String {
    let mut out = String::new();
    let rows: Vec<(&str, &str, &str)> = rules::all()
        .iter()
        .map(|r| (r.name(), r.severity().name(), r.doc()))
        .chain(rules::workspace_rules().iter().map(|r| (r.name(), r.severity().name(), r.doc())))
        .collect::<Vec<_>>()
        .into_iter()
        .chain(std::iter::once((
            rules::SUPPRESSION_HYGIENE,
            Severity::Deny.name(),
            "every mvp-lint marker is a well-formed allow(<known-rule>) -- <reason>",
        )))
        .collect();
    let width = rows.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
    for (name, sev, doc) in rows {
        out.push_str(&format!("{name:width$}  {sev:5}  {doc}\n"));
    }
    out
}

/// The `--explain <rule>` page: name, severity, one-line doc, then the
/// rationale / fix-guidance text.
pub fn explain(name: &str) -> Option<String> {
    let (name, severity, text) = rules::explain(name)?;
    let doc = rules::all()
        .iter()
        .map(|r| (r.name(), r.doc()))
        .chain(rules::workspace_rules().iter().map(|r| (r.name(), r.doc())))
        .find(|(n, _)| *n == name)
        .map(|(_, d)| d.to_string());
    let mut out = format!("{name} ({severity})\n");
    if let Some(doc) = doc {
        out.push_str(&format!("  {doc}\n"));
    }
    out.push('\n');
    for line in text.lines() {
        out.push_str(line);
        out.push('\n');
    }
    Some(out)
}

fn count(report: &LintReport, sev: Severity) -> usize {
    report.diagnostics.iter().filter(|d| d.severity == sev).count()
}
