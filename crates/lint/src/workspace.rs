//! Workspace discovery: member enumeration from the root `Cargo.toml`
//! and the `.rs` file walk for each member.
//!
//! The walk is driven by the manifest, not by globbing the tree, so
//! `target/`, `data/` and stray scratch directories are never lint
//! inputs. `vendor/*` members are resolved (they are workspace members)
//! but excluded from linting — they carry third-party shims whose style
//! we do not police.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace member crate.
#[derive(Debug, Clone)]
pub struct Member {
    /// Directory relative to the workspace root, e.g. `crates/serve`.
    pub rel_dir: String,
    /// Whether the member lives under `vendor/` (excluded from linting).
    pub is_vendor: bool,
}

/// A source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct WalkedFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with forward slashes.
    pub rel: String,
}

/// Parses `members = [...]` out of the root manifest and expands one
/// level of `*` globs (the only form the workspace uses).
///
/// # Errors
///
/// Returns an error when the manifest cannot be read or has no
/// `members` array.
pub fn members(root: &Path) -> io::Result<Vec<Member>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let list = extract_members(&manifest).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "root Cargo.toml has no [workspace] members array",
        )
    })?;
    let mut out = Vec::new();
    for pat in list {
        if let Some(prefix) = pat.strip_suffix("/*") {
            let dir = root.join(prefix);
            let mut names: Vec<String> = fs::read_dir(&dir)?
                .filter_map(Result::ok)
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect();
            names.sort();
            for name in names {
                out.push(Member {
                    rel_dir: format!("{prefix}/{name}"),
                    is_vendor: prefix == "vendor",
                });
            }
        } else {
            out.push(Member { is_vendor: pat.starts_with("vendor/"), rel_dir: pat });
        }
    }
    Ok(out)
}

/// Pulls the string entries of the first `members = [ ... ]` array.
fn extract_members(manifest: &str) -> Option<Vec<String>> {
    let at = manifest.find("members")?;
    let rest = &manifest[at..];
    let open = rest.find('[')?;
    let close = rest[open..].find(']')? + open;
    let body: String = rest[open + 1..close]
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.len() >= 2 && (part.starts_with('"') || part.starts_with('\'')) {
            out.push(part[1..part.len() - 1].to_string());
        }
    }
    Some(out)
}

/// Collects every `.rs` file of the non-vendor members plus the root
/// crate's own `tests/` and `examples/` trees, sorted by relative path.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn lintable_files(root: &Path) -> io::Result<Vec<WalkedFile>> {
    let mut out = Vec::new();
    for m in members(root)? {
        if m.is_vendor {
            continue;
        }
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(root, &root.join(&m.rel_dir).join(sub), &mut out)?;
        }
    }
    // Root-level integration tests and examples (workspace-level harness
    // code, not owned by any member).
    for sub in ["tests", "examples", "benches"] {
        collect_rs(root, &root.join(sub), &mut out)?;
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    out.dedup_by(|a, b| a.rel == b.rel);
    Ok(out)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<WalkedFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push(WalkedFile { abs: path, rel });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_quoted_members() {
        let toml = "[workspace]\nmembers = [\n  \"crates/*\", # comment\n  \"vendor/*\",\n]\n";
        let got = extract_members(toml).expect("parses");
        assert_eq!(got, vec!["crates/*".to_string(), "vendor/*".to_string()]);
    }

    #[test]
    fn workspace_members_resolve_and_flag_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ms = members(&root).expect("members");
        assert!(ms.iter().any(|m| m.rel_dir == "crates/lint" && !m.is_vendor));
        assert!(ms.iter().filter(|m| m.is_vendor).count() >= 1);
    }

    #[test]
    fn walk_finds_this_file_and_skips_vendor_and_target() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = lintable_files(&root).expect("walk");
        assert!(files.iter().any(|f| f.rel == "crates/lint/src/workspace.rs"));
        assert!(files.iter().all(|f| !f.rel.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.rel.contains("target/")));
    }
}
