//! The `lint` binary: runs the mvp-lint rule set over the workspace.
//!
//! ```text
//! lint [--root <dir>] [--rule <name>] [--fail-on=warn|deny] [--json]
//!      [--list-rules] [--explain <rule>] [--bench-out <path>]
//! ```
//!
//! Exit status: 0 when no finding reaches the gate level, 1 when one
//! does, 2 on usage or I/O errors — so `scripts/ci.sh` can gate on it
//! directly. `--bench-out` writes a BENCH_lint.json-style timing
//! artifact (files scanned, call-graph size, wall time) for
//! `scripts/bench_summary.sh`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mvp_lint::{engine, report, Severity};
use mvp_obs::json::JsonObj;

struct Opts {
    root: PathBuf,
    rule: Option<String>,
    fail_on: Severity,
    json: bool,
    list_rules: bool,
    explain: Option<String>,
    bench_out: Option<PathBuf>,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("lint: {msg}");
            eprintln!(
                "usage: lint [--root <dir>] [--rule <name>] [--fail-on=warn|deny] [--json] \
                 [--list-rules] [--explain <rule>] [--bench-out <path>]"
            );
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        print!("{}", report::list_rules());
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &opts.explain {
        match report::explain(name) {
            Some(page) => {
                print!("{page}");
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("lint: unknown rule `{name}`");
                return ExitCode::from(2);
            }
        }
    }

    let started = Instant::now();
    let run = match engine::lint_workspace(&opts.root, opts.rule.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    if opts.json {
        println!("{}", report::json(&run));
    } else {
        print!("{}", report::human(&run));
        eprintln!("lint: finished in {wall_ms:.1} ms");
    }

    if let Some(path) = &opts.bench_out {
        let doc = JsonObj::new()
            .str("bench", "lint")
            .u64("files_scanned", run.files_scanned as u64)
            .u64("graph_nodes", run.graph_nodes as u64)
            .u64("graph_edges", run.graph_edges as u64)
            .u64("findings", run.diagnostics.len() as u64)
            .u64("suppressed", run.suppressed as u64)
            .f64("wall_ms", wall_ms)
            .finish();
        if let Err(e) = std::fs::write(path, doc + "\n") {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if run.fails_at(opts.fail_on) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: default_root(),
        rule: None,
        fail_on: Severity::Deny,
        json: false,
        list_rules: false,
        explain: None,
        bench_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--rule" => {
                opts.rule = Some(validated_rule(&args.next().ok_or("--rule needs a name")?)?);
            }
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule name")?);
            }
            "--bench-out" => {
                opts.bench_out =
                    Some(PathBuf::from(args.next().ok_or("--bench-out needs a path")?));
            }
            other => {
                if let Some(v) = other.strip_prefix("--rule=") {
                    opts.rule = Some(validated_rule(v)?);
                } else if let Some(v) = other.strip_prefix("--fail-on=") {
                    opts.fail_on = match v {
                        "warn" => Severity::Warn,
                        "deny" => Severity::Deny,
                        _ => return Err(format!("--fail-on must be warn or deny, got `{v}`")),
                    };
                } else if let Some(v) = other.strip_prefix("--root=") {
                    opts.root = PathBuf::from(v);
                } else if let Some(v) = other.strip_prefix("--explain=") {
                    opts.explain = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--bench-out=") {
                    opts.bench_out = Some(PathBuf::from(v));
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    Ok(opts)
}

fn validated_rule(name: &str) -> Result<String, String> {
    let known = mvp_lint::rules::known_names();
    if known.contains(&name) {
        Ok(name.to_string())
    } else {
        Err(format!("unknown rule `{name}`; known rules: {}", known.join(", ")))
    }
}

/// The workspace root: the nearest ancestor of the current directory
/// with a `[workspace]` manifest, falling back to the crate's own
/// grandparent (the layout this binary is built in).
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
