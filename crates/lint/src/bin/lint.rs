//! The `lint` binary: runs the mvp-lint rule set over the workspace.
//!
//! ```text
//! lint [--root <dir>] [--rule <name>] [--fail-on=warn|deny] [--json] [--list-rules]
//! ```
//!
//! Exit status: 0 when no finding reaches the gate level, 1 when one
//! does, 2 on usage or I/O errors — so `scripts/ci.sh` can gate on it
//! directly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mvp_lint::{engine, report, Severity};

struct Opts {
    root: PathBuf,
    rule: Option<String>,
    fail_on: Severity,
    json: bool,
    list_rules: bool,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("lint: {msg}");
            eprintln!("usage: lint [--root <dir>] [--rule <name>] [--fail-on=warn|deny] [--json] [--list-rules]");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        print!("{}", report::list_rules());
        return ExitCode::SUCCESS;
    }

    let started = Instant::now();
    let run = match engine::lint_workspace(&opts.root, opts.rule.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", report::json(&run));
    } else {
        print!("{}", report::human(&run));
        eprintln!("lint: finished in {:.1} ms", started.elapsed().as_secs_f64() * 1e3);
    }

    if run.fails_at(opts.fail_on) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: default_root(),
        rule: None,
        fail_on: Severity::Deny,
        json: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--rule" => {
                opts.rule = Some(validated_rule(&args.next().ok_or("--rule needs a name")?)?);
            }
            other => {
                if let Some(v) = other.strip_prefix("--rule=") {
                    opts.rule = Some(validated_rule(v)?);
                } else if let Some(v) = other.strip_prefix("--fail-on=") {
                    opts.fail_on = match v {
                        "warn" => Severity::Warn,
                        "deny" => Severity::Deny,
                        _ => return Err(format!("--fail-on must be warn or deny, got `{v}`")),
                    };
                } else if let Some(v) = other.strip_prefix("--root=") {
                    opts.root = PathBuf::from(v);
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    Ok(opts)
}

fn validated_rule(name: &str) -> Result<String, String> {
    let known = mvp_lint::rules::known_names();
    if known.contains(&name) {
        Ok(name.to_string())
    } else {
        Err(format!("unknown rule `{name}`; known rules: {}", known.join(", ")))
    }
}

/// The workspace root: the nearest ancestor of the current directory
/// with a `[workspace]` manifest, falling back to the crate's own
/// grandparent (the layout this binary is built in).
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
