// Mat in production code; nested vectors confined to tests, strings and
// comments, none of which may trip the rule.
use mvp_dsp::Mat;

/// Not real code: `Vec<Vec<f64>>` in a doc comment.
pub struct Pools {
    benign: Mat,
}

pub fn describe() -> &'static str {
    "Vec<Vec<f64>> inside a string literal"
}

#[cfg(test)]
mod tests {
    #[test]
    fn builds_from_rows() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0]];
        assert_eq!(rows.len(), 1);
    }
}
