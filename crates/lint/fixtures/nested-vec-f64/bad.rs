// Linted as if at crates/core/src/bad.rs — a numeric crate.
pub struct Pools {
    benign: Vec<Vec<f64>>,
}

pub fn transpose(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    Vec::new()
}
