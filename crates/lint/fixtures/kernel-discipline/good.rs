// Production code on the kernel plane; oracle names only in paths,
// strings, comments and tests — none of which may trip the rule.
use mvp_dsp::kernel::{self, RfftPlan};

/// Not a call: `fft(...)` in a doc comment.
pub fn spectrum(plan: &RfftPlan, frame: &[f64], scratch: &mut Scratch, out: &mut [Complex]) {
    plan.forward(frame, scratch, out);
}

pub fn hidden(w: &[f64], x: &[f64]) -> f64 {
    kernel::dot(w, x)
}

pub fn describe() -> &'static str {
    "dct2(...) inside a string literal"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_against_oracle() {
        let mut buf = oracle_input();
        fft(&mut buf);
        let naive = dft_naive(&buf);
        assert_close(&buf, &naive);
    }
}
