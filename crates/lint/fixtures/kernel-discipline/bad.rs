// Direct scalar-oracle calls in non-test numeric code: every one of
// these must be flagged.
use mvp_dsp::{dft_naive, fft, ifft};

pub fn spectrum(buf: &mut [Complex]) {
    fft(buf);
}

pub fn resynthesize(buf: &mut [Complex]) {
    ifft(buf);
}

pub fn reference_spectrum(buf: &[Complex]) -> Vec<Complex> {
    dft_naive(buf)
}

pub fn cepstrum(mel: &[f64], out: &mut [f64]) {
    crate::dct::dct2_into(mel, out);
}

pub fn dense_filterbank(bank: &Filterbank, power: &[f64], out: &mut [f64]) {
    bank.apply_dense_into(power, out);
}
