pub fn detect(x: u32) -> u32 {
    let traced = dbg!(x);
    if traced > 10 {
        todo!("handle large inputs")
    } else {
        unimplemented!()
    }
}
