// The words todo and dbg without the macro bang are fine, as are
// mentions in comments (TODO: like this) and strings.
pub fn detect(x: u32) -> u32 {
    let todo = x + 1;
    let dbg = "dbg!(x) in a string";
    let _ = dbg;
    todo
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaffolding_in_tests_is_tolerated() {
        let x = dbg!(2 + 2);
        assert_eq!(x, 4);
    }
}
