// Checked conversions and widening casts only.
pub fn chunk_to_len(chunk_len: u32) -> Result<usize, String> {
    usize::try_from(chunk_len).map_err(|_| "chunk too large".to_string())
}

pub fn widen(len: u32) -> u64 {
    u64::from(len)
}

pub fn to_float(len: u32) -> f64 {
    // Widening to f64 loses no range.
    len as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_fine() {
        assert_eq!(300u32 as u8, 44);
    }
}

// Quantization-plane flavour: narrowing goes through a checked
// conversion from a clamped value, or carries a reasoned suppression
// where the `as` cast's saturation is the point.
pub fn saturate_i8(q: f64) -> i8 {
    i8::try_from(q.round().clamp(-127.0, 127.0) as i64).expect("clamped to i8 range")
}

pub fn saturating_cast(q: f64) -> i8 {
    // mvp-lint: allow(numeric-truncation) -- float->int `as` saturates and maps NaN to 0; parity with the checked helper is pinned by a test
    q.round().clamp(-127.0, 127.0) as i8
}
