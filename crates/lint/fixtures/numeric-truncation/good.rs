// Checked conversions and widening casts only.
pub fn chunk_to_len(chunk_len: u32) -> Result<usize, String> {
    usize::try_from(chunk_len).map_err(|_| "chunk too large".to_string())
}

pub fn widen(len: u32) -> u64 {
    u64::from(len)
}

pub fn to_float(len: u32) -> f64 {
    // Widening to f64 loses no range.
    len as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_fine() {
        assert_eq!(300u32 as u8, 44);
    }
}
