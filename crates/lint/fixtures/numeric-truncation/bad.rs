// Linted as if at crates/audio/src/wav.rs: `as` narrowing of
// header-declared values wraps silently.
pub fn chunk_to_len(chunk_len: u32) -> usize {
    chunk_len as usize
}

pub fn halve(len: u64) -> u32 {
    (len / 2) as u32
}

// Quantization-plane flavour (linted again as if at
// crates/ml/src/quant.rs): a bare `as i8` wraps instead of saturating
// and silently corrupts logits.
pub fn quantize_one(q: f64) -> i8 {
    q.round() as i8
}
