// Linted as if at crates/dsp/src/fixture.rs: `frame_into` is a
// scratch-plan root, so the allocations it reaches — the vec! in its
// own body and the with_capacity one hop down — must be flagged with
// chains.

pub fn frame_into(input: &[f64], out: &mut [f64]) {
    let gains = vec![1.0; input.len()];
    let weights = window(input.len());
    for (((o, &x), &w), &g) in out.iter_mut().zip(input).zip(weights.iter()).zip(gains.iter()) {
        *o = x * w * g;
    }
}

fn window(n: usize) -> Vec<f64> {
    let mut w = Vec::with_capacity(n);
    for i in 0..n {
        w.push(0.5 + 0.5 * (i as f64));
    }
    w
}
