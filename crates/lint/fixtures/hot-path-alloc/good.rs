// The same frame transform with caller-owned scratch: nothing on the
// path from `frame_into` allocates. The root stays defined so the
// rule's sweep has an entry point.

pub fn frame_into(input: &[f64], scratch: &mut [f64], out: &mut [f64]) {
    fill_window(scratch);
    for ((o, &x), &w) in out.iter_mut().zip(input).zip(scratch.iter()) {
        *o = x * w;
    }
}

fn fill_window(w: &mut [f64]) {
    for (i, slot) in w.iter_mut().enumerate() {
        *slot = 0.5 + 0.5 * (i as f64);
    }
}
