// Every Persist impl pins its own schema version; unrelated impls need
// no const.
pub trait Persist {
    const SCHEMA_VERSION: u16 = 1;
    fn encode(&self) -> Vec<u8>;
}

pub struct Blob {
    bytes: Vec<u8>,
}

impl Persist for Blob {
    const SCHEMA_VERSION: u16 = 3;

    fn encode(&self) -> Vec<u8> {
        self.bytes.clone()
    }
}

impl Clone for Blob {
    fn clone(&self) -> Blob {
        Blob { bytes: self.bytes.clone() }
    }
}
