// An impl Persist without its own SCHEMA_VERSION const: the wire format
// has no version to check on decode.
pub trait Persist {
    const SCHEMA_VERSION: u16 = 1;
    fn encode(&self) -> Vec<u8>;
}

pub struct Blob {
    bytes: Vec<u8>,
}

impl Persist for Blob {
    fn encode(&self) -> Vec<u8> {
        self.bytes.clone()
    }
}
