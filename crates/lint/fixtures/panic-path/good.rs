// The same request path with every failure propagated instead of
// panicking. `submit` stays defined so the rule's entry-point sweep has
// a root (a serve file set with no entry points is itself a finding).

pub fn submit(queue: &[u32]) -> Option<u32> {
    let first = queue.first().copied()?;
    dispatch(first)
}

fn dispatch(v: u32) -> Option<u32> {
    decode(v)
}

fn decode(v: u32) -> Option<u32> {
    if v > 10 {
        return None;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_assertions_in_tests_are_fine() {
        assert_eq!(super::submit(&[1]).unwrap(), 1);
    }
}
