// Linted as if at crates/serve/src/fixture.rs: `submit` is a serve
// entry-point name, so everything it calls is on the request path. The
// panic two hops down, the unwrap one hop down and the direct indexing
// must all be flagged, each with its call chain.

pub fn submit(queue: &[u32]) -> u32 {
    let first = queue[0];
    dispatch(first)
}

fn dispatch(v: u32) -> u32 {
    decode(v).unwrap()
}

fn decode(v: u32) -> Option<u32> {
    if v > 10 {
        panic!("value out of range");
    }
    Some(v)
}
