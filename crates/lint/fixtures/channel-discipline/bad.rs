// Linted as if at crates/serve/src/bad.rs: every unbounded channel
// constructor turns overload backpressure into memory growth.
use crossbeam::channel;
use std::sync::mpsc;

pub fn crossbeam_unbounded() -> (channel::Sender<u32>, channel::Receiver<u32>) {
    channel::unbounded()
}

pub fn crossbeam_unbounded_turbofish() -> (channel::Sender<u32>, channel::Receiver<u32>) {
    channel::unbounded::<u32>()
}

pub fn std_unbounded() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel()
}

pub fn tokio_style() {
    let (_tx, _rx) = unbounded_channel::<u32>();
}
