// Bounded queues everywhere: shedding and backpressure stay possible.
use crossbeam::channel;
use std::sync::mpsc;

pub fn crossbeam_bounded(cap: usize) -> (channel::Sender<u32>, channel::Receiver<u32>) {
    channel::bounded(cap)
}

pub fn std_bounded(cap: usize) -> (mpsc::SyncSender<u32>, mpsc::Receiver<u32>) {
    mpsc::sync_channel(cap)
}

// An ident merely *named* channel is not a constructor call.
pub fn not_a_constructor(channel: u32) -> u32 {
    channel + 1
}

#[cfg(test)]
mod tests {
    use crossbeam::channel;

    #[test]
    fn unbounded_in_tests_is_fine() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
