// Linted as if at crates/serve/src/bad.rs: raw .lock() outside
// SharedCache::with bypasses the single poison-recovery point.
use std::sync::Mutex;

pub struct Worker {
    state: Mutex<u32>,
}

impl Worker {
    pub fn bump(&self) -> u32 {
        let mut guard = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *guard += 1;
        *guard
    }
}
