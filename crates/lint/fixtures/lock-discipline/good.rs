// The one sanctioned .lock() site: inside SharedCache::with.
use std::sync::Mutex;

pub struct SharedCache {
    inner: Mutex<u32>,
}

impl SharedCache {
    pub fn with<T>(&self, f: impl FnOnce(&mut u32) -> T) -> T {
        let mut guard = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    pub fn read(&self) -> u32 {
        self.with(|v| *v)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn raw_lock_in_tests_is_fine() {
        let m = Mutex::new(1);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
