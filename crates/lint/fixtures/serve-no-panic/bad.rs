// Linted as if at crates/serve/src/bad.rs — the request path.
pub fn handle(input: Option<u32>) -> u32 {
    let v = input.unwrap();
    let w = compute(v).expect("compute failed");
    if w == 0 {
        panic!("zero");
    }
    match w {
        1 => 1,
        _ => unreachable!(),
    }
}

fn compute(v: u32) -> Option<u32> {
    Some(v)
}
