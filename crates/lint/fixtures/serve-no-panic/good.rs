// Error propagation on the request path; panics only in tests, strings,
// comments, or under a reasoned suppression.
pub fn handle(input: Option<u32>) -> Result<u32, String> {
    // A comment saying unwrap() is not a call to unwrap().
    let v = input.ok_or("missing input")?;
    let msg = "this string mentions panic!(...) harmlessly";
    let _ = msg;
    // mvp-lint: allow(serve-no-panic) -- construction-time invariant, no request in flight
    let w = compute(v).expect("compute failed");
    Ok(w)
}

fn compute(v: u32) -> Option<u32> {
    Some(v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        super::handle(Some(3)).unwrap();
    }
}
