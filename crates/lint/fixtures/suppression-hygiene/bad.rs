// Every marker here is defective: no reason, unknown rule, malformed
// syntax, or an empty rule list.
pub fn a() -> u32 {
    // mvp-lint: allow(todo-markers)
    1
}

pub fn b() -> u32 {
    // mvp-lint: allow(not-a-real-rule) -- the rule name is wrong
    2
}

pub fn c() -> u32 {
    // mvp-lint: please ignore this line
    3
}

pub fn d() -> u32 {
    // mvp-lint: allow() -- nothing named
    4
}
