// Well-formed markers: a known rule list and a reason after `--`.
pub fn detect(x: u32) -> u32 {
    // mvp-lint: allow(todo-markers) -- exercising the suppression grammar in a fixture
    let y = x + 1;
    // mvp-lint: allow(numeric-truncation, todo-markers) -- multiple rules are allowed in one marker
    y
}

// Prose that merely mentions the mvp-lint: allow(...) syntax inside a
// sentence is not a marker and must not be parsed as one.
pub fn docs() {}
