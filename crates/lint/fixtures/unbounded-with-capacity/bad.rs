// Linted as if at crates/audio/src/bad.rs: allocations sized straight
// from a parsed length field, no limit check anywhere nearby.
pub fn read_samples(declared: u32) -> Vec<i16> {
    let n = declared as u64 as usize;
    let samples: Vec<i16> = Vec::with_capacity(n);
    samples
}

pub fn read_table(count: usize) -> Vec<u8> {
    vec![0u8; count]
}
