// Bounded allocations: a preceding limit check, an inline clamp, or a
// constant size.
const MAX_SAMPLES: usize = 1 << 24;

pub fn read_samples(declared: usize) -> Result<Vec<i16>, String> {
    if declared > MAX_SAMPLES {
        return Err(format!("{declared} samples over limit"));
    }
    Ok(Vec::with_capacity(declared))
}

pub fn read_clamped(count: usize) -> Vec<u8> {
    Vec::with_capacity(count.min(MAX_SAMPLES))
}

pub fn fixed_scratch() -> Vec<f64> {
    Vec::with_capacity(4096)
}
