// Linted as if at crates/asr/src/fixture.rs: both panicking comparator
// shapes — unwrap and expect-with-tie-break — must be flagged.

pub fn best(scores: &[f64]) -> usize {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    order.first().copied().unwrap_or(0)
}

pub fn rank(scored: &mut [(usize, f64)]) {
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN").then(a.0.cmp(&b.0)));
}
