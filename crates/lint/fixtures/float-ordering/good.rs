// total_cmp comparators (tie-breaks compose with .then), and a
// partial_cmp whose Option is handled rather than unwrapped.

pub fn best(scores: &[f64]) -> usize {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        let x = scores.get(a).copied().unwrap_or(f64::INFINITY);
        let y = scores.get(b).copied().unwrap_or(f64::INFINITY);
        x.total_cmp(&y)
    });
    order.first().copied().unwrap_or(0)
}

pub fn rank(scored: &mut [(usize, f64)]) {
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
}

pub fn strictly_less(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(std::cmp::Ordering::Less)
}
