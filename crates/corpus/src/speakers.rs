//! Seeded speaker-profile sampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_audio::SpeakerProfile;

/// Samples diverse but bounded speaker profiles.
///
/// ```
/// use mvp_corpus::SpeakerSampler;
/// let mut s = SpeakerSampler::new(7);
/// let p = s.next_speaker();
/// assert!(p.pitch_hz >= 85.0 && p.pitch_hz <= 255.0);
/// ```
#[derive(Debug)]
pub struct SpeakerSampler {
    rng: StdRng,
}

impl SpeakerSampler {
    /// A sampler with a fixed seed.
    pub fn new(seed: u64) -> SpeakerSampler {
        SpeakerSampler { rng: StdRng::seed_from_u64(seed ^ 0x5EED_5EED) }
    }

    /// Draws the next speaker profile.
    pub fn next_speaker(&mut self) -> SpeakerProfile {
        SpeakerProfile {
            pitch_hz: self.rng.gen_range(90.0..250.0),
            formant_scale: self.rng.gen_range(0.9..1.12),
            rate: self.rng.gen_range(0.85..1.2),
            amplitude: self.rng.gen_range(0.22..0.4),
            breathiness: self.rng.gen_range(0.005..0.03),
            seed: self.rng.gen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = SpeakerSampler::new(4).next_speaker();
        let b = SpeakerSampler::new(4).next_speaker();
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_vary() {
        let mut s = SpeakerSampler::new(4);
        let a = s.next_speaker();
        let b = s.next_speaker();
        assert_ne!(a, b);
    }

    #[test]
    fn profiles_within_bounds() {
        let mut s = SpeakerSampler::new(12);
        for _ in 0..100 {
            let p = s.next_speaker();
            assert!(p.rate > 0.5 && p.rate < 1.5);
            assert!(p.formant_scale > 0.8 && p.formant_scale < 1.25);
            assert!(p.amplitude > 0.0 && p.amplitude < 0.6);
        }
    }
}
