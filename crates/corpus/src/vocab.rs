//! Word pools and fixed phrase lists.
//!
//! Every word here has an explicit pronunciation in the built-in lexicon of
//! `mvp-phonetics`, so synthesis and recognition share one consistent
//! phonetic ground truth.

/// Subject noun phrases for declarative sentences.
pub const SUBJECTS: &[&str] = &[
    "the man",
    "the woman",
    "the child",
    "the teacher",
    "the student",
    "my friend",
    "her mother",
    "his father",
    "the family",
    "the people",
];

/// Intransitive/transitive past-tense verbs.
pub const VERBS_PAST: &[&str] = &[
    "walked", "worked", "looked", "wanted", "lived", "came", "went", "took", "gave", "made",
    "found", "thought", "said",
];

/// Object noun phrases.
pub const OBJECTS: &[&str] = &[
    "the book",
    "the letter",
    "the story",
    "the house",
    "the garden",
    "the river",
    "the mountain",
    "the forest",
    "the street",
    "the city",
    "the school",
    "the water",
    "the paper",
    "the word",
    "the answer",
];

/// Temporal / locative tails.
pub const TAILS: &[&str] = &[
    "in the morning",
    "in the evening",
    "before the storm",
    "after the rain",
    "in the summer",
    "in the winter",
    "every day",
    "every year",
    "with the family",
    "in the old house",
    "near the river",
    "through the forest",
];

/// Adjectives for noun phrases.
pub const ADJECTIVES: &[&str] =
    &["little", "good", "great", "small", "large", "old", "young", "long", "short", "quiet"];

/// Attack-target command phrases (what the adversary embeds in an AE).
///
/// These mirror the smart-home / assistant commands the paper's introduction
/// motivates ("open the front door").
pub fn command_phrases() -> Vec<&'static str> {
    vec![
        "open the front door",
        "open the back door",
        "unlock the garage",
        "turn off the alarm",
        "turn on the lights",
        "turn off the camera",
        "delete all files",
        "send the message",
        "call home",
        "stop the music",
        "turn up the volume",
        "open the window",
        "visit the website",
        "read the email",
        "set the timer",
    ]
}

/// Sentence pairs that are textually different but phonetically identical,
/// used to validate the phonetic-encoding step (paper §V-D).
pub fn homophone_sentence_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("i see the sea", "i sea the see"),
        ("the knight walked at night", "the night walked at knight"),
        ("write the right answer", "right the write answer"),
        ("they went there", "they went their"),
        ("he ate the pear", "he eight the pair"),
        ("the son saw the sun", "the sun saw the son"),
        ("i hear the music here", "i here the music hear"),
        ("four people waited for the answer", "for people waited four the answer"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_phonetics::Lexicon;

    #[test]
    fn all_pool_words_pronounceable() {
        let lex = Lexicon::builtin();
        let pools: Vec<&str> = SUBJECTS
            .iter()
            .chain(VERBS_PAST)
            .chain(OBJECTS)
            .chain(TAILS)
            .chain(ADJECTIVES)
            .copied()
            .collect();
        for phrase in pools {
            for word in phrase.split_whitespace() {
                assert!(!lex.pronounce(word).is_empty(), "{word}");
            }
        }
    }

    #[test]
    fn command_words_in_lexicon() {
        // Commands must use explicit lexicon entries so target phoneme
        // sequences for attacks are stable.
        let lex = Lexicon::builtin();
        for cmd in command_phrases() {
            for word in cmd.split_whitespace() {
                assert!(lex.lookup(word).is_some(), "{word} not in builtin lexicon");
            }
        }
    }

    #[test]
    fn homophone_pairs_really_homophonic() {
        let lex = Lexicon::builtin();
        for (a, b) in homophone_sentence_pairs() {
            assert_eq!(lex.pronounce_sentence(a), lex.pronounce_sentence(b), "{a} vs {b}");
            assert_ne!(a, b);
        }
    }

    #[test]
    fn pools_nonempty_and_distinct() {
        assert!(SUBJECTS.len() >= 8);
        assert!(OBJECTS.len() >= 10);
        assert!(command_phrases().len() >= 12);
        let set: std::collections::HashSet<_> = command_phrases().into_iter().collect();
        assert_eq!(set.len(), command_phrases().len());
    }
}
