//! Corpus assembly: text + speaker + rendered audio + alignment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvp_audio::noise::{mix_at_snr, NoiseKind};
use mvp_audio::synth::{AlignedPhoneme, Synthesizer};
use mvp_audio::{SpeakerProfile, Waveform};
use mvp_phonetics::Lexicon;

use crate::sentences::SentenceGenerator;
use crate::speakers::SpeakerSampler;

/// One rendered utterance.
#[derive(Debug, Clone)]
pub struct Utterance {
    /// Stable identifier within its corpus.
    pub id: usize,
    /// Ground-truth transcription.
    pub text: String,
    /// The speaker that rendered it.
    pub speaker: SpeakerProfile,
    /// The audio (possibly noise-augmented).
    pub wave: Waveform,
    /// Sample-exact phoneme alignment of the *clean* rendering.
    pub alignment: Vec<AlignedPhoneme>,
}

/// Parameters controlling corpus generation.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Number of utterances.
    pub size: usize,
    /// Master seed (sentences, speakers, noise draws).
    pub seed: u64,
    /// Output sample rate in Hz.
    pub sample_rate: u32,
    /// Probability an utterance receives additive room noise.
    pub noise_prob: f64,
    /// SNR range (dB) for the added noise when it is applied.
    pub noise_snr_db: (f64, f64),
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            size: 100,
            seed: 2024,
            sample_rate: 16_000,
            noise_prob: 0.5,
            noise_snr_db: (14.0, 30.0),
        }
    }
}

/// Builds [`SpeechCorpus`] instances.
#[derive(Debug)]
pub struct CorpusBuilder {
    cfg: CorpusConfig,
    lexicon: Lexicon,
}

impl CorpusBuilder {
    /// A builder with the given configuration and the built-in lexicon.
    pub fn new(cfg: CorpusConfig) -> CorpusBuilder {
        CorpusBuilder { cfg, lexicon: Lexicon::builtin() }
    }

    /// Replaces the lexicon.
    pub fn with_lexicon(mut self, lexicon: Lexicon) -> CorpusBuilder {
        self.lexicon = lexicon;
        self
    }

    /// Generates the corpus.
    pub fn build(&self) -> SpeechCorpus {
        let synth = Synthesizer::new(self.cfg.sample_rate);
        let mut sentences = SentenceGenerator::new(self.cfg.seed);
        let mut speakers = SpeakerSampler::new(self.cfg.seed.wrapping_add(1));
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(2));
        let utterances = (0..self.cfg.size)
            .map(|id| {
                let text = sentences.next_sentence();
                let speaker = speakers.next_speaker();
                self.render(&synth, id, text, speaker, &mut rng)
            })
            .collect();
        SpeechCorpus { utterances }
    }

    /// Renders explicit texts (e.g. command phrases) instead of generated
    /// sentences, with the same speaker/noise pipeline.
    pub fn build_from_texts(&self, texts: &[String]) -> SpeechCorpus {
        let synth = Synthesizer::new(self.cfg.sample_rate);
        let mut speakers = SpeakerSampler::new(self.cfg.seed.wrapping_add(1));
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(2));
        let utterances = texts
            .iter()
            .enumerate()
            .map(|(id, text)| {
                let speaker = speakers.next_speaker();
                self.render(&synth, id, text.clone(), speaker, &mut rng)
            })
            .collect();
        SpeechCorpus { utterances }
    }

    fn render(
        &self,
        synth: &Synthesizer,
        id: usize,
        text: String,
        speaker: SpeakerProfile,
        rng: &mut StdRng,
    ) -> Utterance {
        let (clean, alignment) = synth.synthesize(&self.lexicon, &text, &speaker);
        let wave = if rng.gen_bool(self.cfg.noise_prob) {
            let (lo, hi) = self.cfg.noise_snr_db;
            let snr = rng.gen_range(lo..hi);
            let kind = if rng.gen_bool(0.5) { NoiseKind::Pink } else { NoiseKind::Babble };
            let noise = kind.generate(clean.len(), clean.sample_rate(), rng.gen());
            mix_at_snr(&clean, &noise, snr)
        } else {
            clean
        };
        Utterance { id, text, speaker, wave, alignment }
    }
}

/// A set of rendered utterances.
#[derive(Debug, Clone, Default)]
pub struct SpeechCorpus {
    utterances: Vec<Utterance>,
}

impl SpeechCorpus {
    /// The utterances in generation order.
    pub fn utterances(&self) -> &[Utterance] {
        &self.utterances
    }

    /// Number of utterances.
    pub fn len(&self) -> usize {
        self.utterances.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.utterances.is_empty()
    }

    /// Deterministic train/test index split with `train_frac` of the data
    /// (shuffled by `seed`) in the first slice.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < train_frac < 1.0`.
    pub fn split_indices(&self, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        assert!(train_frac > 0.0 && train_frac < 1.0, "train fraction {train_frac} out of (0, 1)");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        shuffle(&mut idx, seed);
        let cut = ((self.len() as f64) * train_frac).round() as usize;
        let test = idx.split_off(cut.min(self.len()));
        (idx, test)
    }

    /// Deterministic `k`-fold partition: returns `(train, test)` index pairs
    /// per fold, covering every element exactly once across test sets.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len`.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "need at least 2 folds");
        assert!(k <= self.len(), "more folds than utterances");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        shuffle(&mut idx, seed);
        (0..k)
            .map(|f| {
                let test: Vec<usize> = idx.iter().copied().skip(f).step_by(k).collect();
                let train: Vec<usize> = idx
                    .iter()
                    .copied()
                    .enumerate()
                    .filter_map(|(i, v)| (i % k != f).then_some(v))
                    .collect();
                (train, test)
            })
            .collect()
    }
}

fn shuffle(idx: &mut [usize], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BAD_5EED);
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpeechCorpus {
        CorpusBuilder::new(CorpusConfig { size: 12, seed: 5, ..CorpusConfig::default() }).build()
    }

    #[test]
    fn build_is_deterministic() {
        let a = small();
        let b = small();
        for (x, y) in a.utterances().iter().zip(b.utterances()) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.wave, y.wave);
        }
    }

    #[test]
    fn utterances_have_audio_and_alignment() {
        for u in small().utterances() {
            assert!(u.wave.duration_secs() > 0.3, "{}", u.text);
            assert!(!u.alignment.is_empty());
            assert_eq!(u.alignment.last().unwrap().end, u.wave.len());
        }
    }

    #[test]
    fn split_partitions_everything() {
        let c = small();
        let (train, test) = c.split_indices(0.75, 3);
        assert_eq!(train.len() + test.len(), c.len());
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..c.len()).collect::<Vec<_>>());
        assert_eq!(train.len(), 9);
    }

    #[test]
    fn k_folds_cover_each_sample_once() {
        let c = small();
        let folds = c.k_folds(4, 7);
        assert_eq!(folds.len(), 4);
        let mut seen = vec![0usize; c.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), c.len());
            for &t in test {
                seen[t] += 1;
            }
            // Train and test are disjoint.
            for &t in test {
                assert!(!train.contains(&t));
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn build_from_texts_preserves_order() {
        let texts = vec!["open the door".to_string(), "call home".to_string()];
        let c = CorpusBuilder::new(CorpusConfig { seed: 1, ..CorpusConfig::default() })
            .build_from_texts(&texts);
        assert_eq!(c.utterances()[0].text, "open the door");
        assert_eq!(c.utterances()[1].text, "call home");
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn too_many_folds_panics() {
        small().k_folds(100, 1);
    }
}
