//! Deterministic declarative-sentence generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::{ADJECTIVES, OBJECTS, SUBJECTS, TAILS, VERBS_PAST};

/// Generates LibriSpeech-style declarative sentences from templates.
///
/// The same seed always yields the same sentence stream, which keeps every
/// experiment reproducible end to end.
///
/// ```
/// use mvp_corpus::SentenceGenerator;
/// let mut g = SentenceGenerator::new(42);
/// let s = g.next_sentence();
/// assert!(s.split_whitespace().count() >= 4);
/// assert_eq!(SentenceGenerator::new(42).next_sentence(), s);
/// ```
#[derive(Debug)]
pub struct SentenceGenerator {
    rng: StdRng,
}

impl SentenceGenerator {
    /// A generator with a fixed seed.
    pub fn new(seed: u64) -> SentenceGenerator {
        SentenceGenerator { rng: StdRng::seed_from_u64(seed) }
    }

    fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[self.rng.gen_range(0..pool.len())]
    }

    /// Produces the next sentence.
    pub fn next_sentence(&mut self) -> String {
        let template = self.rng.gen_range(0..5u32);
        match template {
            0 => {
                format!("{} {} {}", self.pick(SUBJECTS), self.pick(VERBS_PAST), self.pick(OBJECTS))
            }
            1 => format!(
                "{} {} {} {}",
                self.pick(SUBJECTS),
                self.pick(VERBS_PAST),
                self.pick(OBJECTS),
                self.pick(TAILS)
            ),
            2 => {
                let obj = self.pick(OBJECTS).strip_prefix("the ").expect("objects start with the");
                format!(
                    "{} {} the {} {}",
                    self.pick(SUBJECTS),
                    self.pick(VERBS_PAST),
                    self.pick(ADJECTIVES),
                    obj
                )
            }
            3 => format!(
                "{} {} {} and {} {}",
                self.pick(SUBJECTS),
                self.pick(VERBS_PAST),
                self.pick(OBJECTS),
                self.pick(VERBS_PAST),
                self.pick(OBJECTS)
            ),
            _ => format!("{} {}", self.pick(SUBJECTS), self.pick(VERBS_PAST)),
        }
    }

    /// Produces `n` sentences.
    pub fn take_sentences(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.next_sentence()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_phonetics::Lexicon;

    #[test]
    fn deterministic_stream() {
        let a = SentenceGenerator::new(9).take_sentences(20);
        let b = SentenceGenerator::new(9).take_sentences(20);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = SentenceGenerator::new(1).take_sentences(10);
        let b = SentenceGenerator::new(2).take_sentences(10);
        assert_ne!(a, b);
    }

    #[test]
    fn sentences_are_diverse() {
        let s = SentenceGenerator::new(3).take_sentences(100);
        let unique: std::collections::HashSet<_> = s.iter().collect();
        assert!(unique.len() > 60, "only {} unique of 100", unique.len());
    }

    #[test]
    fn every_word_pronounceable() {
        let lex = Lexicon::builtin();
        for s in SentenceGenerator::new(11).take_sentences(200) {
            for w in s.split_whitespace() {
                assert!(!lex.pronounce(w).is_empty(), "{w} in {s:?}");
            }
        }
    }
}
