#![warn(missing_docs)]

//! Synthetic speech corpus: vocabulary, sentence generation, speaker
//! sampling and dataset assembly.
//!
//! Substitutes for the LibriSpeech `dev_clean` benign set and the
//! CommonVoice samples the paper uses (DESIGN.md §2): sentences are drawn
//! deterministically from templates over a vocabulary whose pronunciations
//! live in the built-in lexicon, rendered by the formant synthesizer with
//! per-speaker variation, and optionally degraded with calibrated room
//! noise so the simulated ASRs exhibit realistic benign disagreement.
//!
//! # Examples
//!
//! ```
//! use mvp_corpus::{CorpusConfig, CorpusBuilder};
//!
//! let corpus = CorpusBuilder::new(CorpusConfig { size: 4, seed: 1, ..CorpusConfig::default() })
//!     .build();
//! assert_eq!(corpus.utterances().len(), 4);
//! assert!(corpus.utterances()[0].wave.duration_secs() > 0.3);
//! ```

pub mod dataset;
pub mod sentences;
pub mod speakers;
pub mod vocab;

pub use dataset::{CorpusBuilder, CorpusConfig, SpeechCorpus, Utterance};
pub use sentences::SentenceGenerator;
pub use speakers::SpeakerSampler;
pub use vocab::{command_phrases, homophone_sentence_pairs};
