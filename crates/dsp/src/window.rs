//! Analysis window functions.

/// A tapering window applied to each frame before the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// Hann window (the workspace default; good sidelobe suppression).
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// No tapering.
    Rectangular,
}

impl Window {
    /// The window coefficients for a frame of `len` samples.
    ///
    /// ```
    /// use mvp_dsp::Window;
    /// let w = Window::Hann.coefficients(4);
    /// assert!(w[0] < 1e-12); // Hann starts at zero
    /// ```
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        if len == 1 {
            return vec![1.0];
        }
        let denom = (len - 1) as f64;
        (0..len)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / denom;
                match self {
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Rectangular => 1.0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Rectangular] {
            let c = w.coefficients(33);
            for i in 0..c.len() {
                assert!((c[i] - c[c.len() - 1 - i]).abs() < 1e-12, "{w:?} at {i}");
            }
        }
    }

    #[test]
    fn peak_at_center() {
        let c = Window::Hann.coefficients(65);
        assert!((c[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_zero_one() {
        for w in [Window::Hann, Window::Hamming, Window::Rectangular] {
            for &v in &w.coefficients(128) {
                assert!((0.0..=1.0).contains(&v), "{w:?}: {v}");
            }
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hamming.coefficients(1), vec![1.0]);
    }
}
