#![warn(missing_docs)]

//! Signal-processing substrate: FFT, spectrograms, mel filterbanks, DCT and
//! a fully differentiable MFCC pipeline.
//!
//! Every simulated ASR in this workspace extracts MFCC features exactly as
//! the paper's Figure 2 describes (framing → windowing → FFT → mel
//! filterbank → log → DCT). The white-box attack of Carlini & Wagner
//! backpropagates its CTC loss *through* the feature extraction into the
//! waveform; [`mfcc::MfccExtractor::backward`] implements that adjoint pass
//! analytically (the paper calls this "adding the MFCC reconstruction layer
//! into the backpropagation optimization").
//!
//! # Examples
//!
//! ```
//! use mvp_dsp::mfcc::{MfccConfig, MfccExtractor};
//!
//! let extractor = MfccExtractor::new(MfccConfig::default());
//! let samples = vec![0.0f64; 1600]; // 100 ms of silence at 16 kHz
//! let feats = extractor.extract(&samples);
//! assert_eq!(feats.dim(), MfccConfig::default().n_cepstra);
//! ```

pub mod complex;
pub mod dct;
pub mod delta;
pub mod fft;
pub mod frame;
pub mod kernel;
pub mod mat;
pub mod mel;
pub mod mfcc;
pub mod spectrogram;
pub mod window;

pub use complex::Complex;
pub use mat::Mat;
pub use mfcc::{FeatureMatrix, MfccConfig, MfccExtractor, MfccScratch, StreamingMfcc};
pub use window::Window;
