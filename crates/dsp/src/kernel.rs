//! The kernel plane: tuned numeric primitives under the Mat data plane.
//!
//! Every hot loop in the workspace — spectrogram frames, MFCC
//! extraction, the acoustic-model GEMMs, CTC trellis rows, SVM kernel
//! evaluations — routes through this module. Each vectorized kernel
//! keeps its original scalar implementation alive as a *correctness
//! oracle*: `force_scalar(true)` re-routes every entry point back onto
//! the oracle so benches can time (and parity tests can pin) vectorized
//! against scalar on identical inputs.
//!
//! # Parity policy, per kernel
//!
//! | kernel                         | guarantee vs scalar oracle           |
//! |--------------------------------|--------------------------------------|
//! | [`axpy`]                       | bit-exact (independent lanes)        |
//! | [`MelFilterbank::apply_into`]  | bit-exact (skipped terms are `+0.0`) |
//! | [`DctPlan`]                    | bit-exact (same order, cached `cos`) |
//! | [`dot`], [`gemv`], [`gemm_nt`] | 4-way reassociation; small relative  |
//! |                                | error `O(n·ε)`, tested ≤ 1e-12 rel   |
//! | [`sq_dist`], [`sq_zscore_sum`] | 4-way reassociation, as above        |
//! | [`dot_i8`], [`gemm_nt_i8`]     | bit-exact (i32 integer accumulation  |
//! |                                | is associative; lanes reorder freely,|
//! |                                | runtime ISA dispatch is invisible —  |
//! |                                | including the width heuristic that   |
//! |                                | keeps AVX-512 off short rows)        |
//! | [`quantize_i8`]                | bit-exact (saturating float→int cast |
//! |                                | equals the oracle's checked clamp on |
//! |                                | every input, `NaN → 0` included)     |
//! | [`RfftPlan`]                   | different algorithm (half-size       |
//! |                                | complex FFT); error `O(n·ε)`         |
//!
//! `gemm_nt` tiles over rows and columns only — it never splits the
//! inner `k` dimension — so `gemm_nt`, `gemv` and `dot` agree *bitwise*
//! with each other on the same operands. Batch and per-row call sites
//! (e.g. `AcousticModel::logit_matrix_into` vs `logits_into`) therefore
//! stay bit-identical, which several persistence tests rely on.
//!
//! [`MelFilterbank::apply_into`]: crate::mel::MelFilterbank::apply_into
//!
//! # Threads
//!
//! [`par_rows`] spreads independent row work over scoped threads. The
//! worker count is `set_threads` (the serve engine partitions cores
//! between its ASR workers) → the `MVP_EARS_KERNEL_THREADS` env var →
//! `std::thread::available_parallelism()`. Row outputs are independent,
//! so results are bit-identical at any thread count; on a single core
//! the serial path runs with zero extra allocation.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::complex::Complex;
use crate::fft;

// ---------------------------------------------------------------------------
// Mode knobs
// ---------------------------------------------------------------------------

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Routes every kernel entry point onto its scalar oracle (`true`) or
/// back to the vectorized path (`false`). Process-global: meant for
/// single-threaded bench binaries timing scalar vs vectorized on the
/// same inputs, never for use inside the parallel test harness.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::SeqCst);
}

/// Whether [`force_scalar`] has routed kernels onto the scalar oracle.
pub fn scalar_forced() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the [`par_rows`] worker count; `0` restores the automatic
/// choice (`MVP_EARS_KERNEL_THREADS`, else available parallelism). The
/// serve engine calls this so each ASR worker gets an equal share of
/// the machine instead of oversubscribing it.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count [`par_rows`] will use for large row sets.
pub fn threads() -> usize {
    let n = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("MVP_EARS_KERNEL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
    })
}

// ---------------------------------------------------------------------------
// Scalar oracles
// ---------------------------------------------------------------------------

/// The scalar reference implementations the vectorized kernels are
/// pinned against. Kept tiny and obviously correct; parity tests and
/// `force_scalar` benches are the only intended callers outside this
/// module.
pub mod scalar {
    /// Serial left-to-right dot product.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    /// Serial squared Euclidean distance.
    pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// Serial sum of squared z-scores.
    pub fn sq_zscore_sum(x: &[f64], mean: &[f64], inv_std: &[f64]) -> f64 {
        x.iter()
            .zip(mean)
            .zip(inv_std)
            .map(|((&v, &m), &is)| {
                let z = (v - m) * is;
                z * z
            })
            .sum()
    }

    /// Serial `y += a * x`.
    pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// Serial i8 dot product with i32 accumulation. Exact: each product
    /// fits in 15 bits, so `k` up to `2^16` rows cannot overflow i32.
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        a.iter().zip(b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()
    }

    /// Serial symmetric i8 quantization — `out[i] = saturate(xs[i] /
    /// scale)` with round-to-nearest (half away from zero), clamp to
    /// `±127` and `NaN → 0`; the oracle for
    /// [`quantize_i8`](super::quantize_i8). The branchy checked form
    /// here *defines* the saturate semantics the vectorized body must
    /// reproduce bit-for-bit.
    pub fn quantize_i8(xs: &[f64], scale: f64, out: &mut [i8]) {
        for (o, &x) in out.iter_mut().zip(xs) {
            let q = x / scale;
            *o = if q.is_nan() {
                0
            } else {
                // The i64 intermediate is exact for the clamped range;
                // `try_from` keeps the no-wrap guarantee checked.
                // mvp-lint: allow(panic-path) -- the clamp to [-127, 127] makes the conversion infallible
                i8::try_from(q.round().clamp(-127.0, 127.0) as i64).expect("clamped to i8 range")
            };
        }
    }

    /// Serial i8 `C = A·Bᵀ` with i32 accumulation; the oracle for
    /// [`gemm_nt_i8`](super::gemm_nt_i8).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch between `a`, `b`, `k` and `out`.
    pub fn gemm_nt_i8(a: &[i8], m: usize, b: &[i8], n: usize, k: usize, out: &mut [i32]) {
        assert_eq!(a.len(), m * k, "gemm_nt_i8: A shape mismatch");
        assert_eq!(b.len(), n * k, "gemm_nt_i8: B shape mismatch");
        assert_eq!(out.len(), m * n, "gemm_nt_i8: output shape mismatch");
        if k == 0 {
            out.fill(0);
            return;
        }
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                out[i * n + j] = dot_i8(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane primitives
// ---------------------------------------------------------------------------

/// Dot product over four independent accumulator lanes.
///
/// Reassociates the sum (four partial sums plus a tail), so the result
/// can differ from [`scalar::dot`] by `O(n·ε)` relative error.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    if scalar_forced() {
        return scalar::dot(a, b);
    }
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(4);
    let mut cb = b[..n].chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (pa, pb) in (&mut ca).zip(&mut cb) {
        s0 += pa[0] * pb[0];
        s1 += pa[1] * pb[1];
        s2 += pa[2] * pb[2];
        s3 += pa[3] * pb[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (s0 + s2) + (s1 + s3) + tail
}

/// Squared Euclidean distance over four accumulator lanes.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    if scalar_forced() {
        return scalar::sq_dist(a, b);
    }
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(4);
    let mut cb = b[..n].chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (pa, pb) in (&mut ca).zip(&mut cb) {
        let (d0, d1, d2, d3) = (pa[0] - pb[0], pa[1] - pb[1], pa[2] - pb[2], pa[3] - pb[3]);
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    (s0 + s2) + (s1 + s3) + tail
}

/// Sum of squared z-scores `Σ ((x−mean)·inv_std)²` over four lanes;
/// the one-class scorer's inner loop.
pub fn sq_zscore_sum(x: &[f64], mean: &[f64], inv_std: &[f64]) -> f64 {
    if scalar_forced() {
        return scalar::sq_zscore_sum(x, mean, inv_std);
    }
    let n = x.len().min(mean.len()).min(inv_std.len());
    let mut cx = x[..n].chunks_exact(4);
    let mut cm = mean[..n].chunks_exact(4);
    let mut cs = inv_std[..n].chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for ((px, pm), ps) in (&mut cx).zip(&mut cm).zip(&mut cs) {
        let z0 = (px[0] - pm[0]) * ps[0];
        let z1 = (px[1] - pm[1]) * ps[1];
        let z2 = (px[2] - pm[2]) * ps[2];
        let z3 = (px[3] - pm[3]) * ps[3];
        s0 += z0 * z0;
        s1 += z1 * z1;
        s2 += z2 * z2;
        s3 += z3 * z3;
    }
    let mut tail = 0.0;
    for ((&v, &m), &is) in cx.remainder().iter().zip(cm.remainder()).zip(cs.remainder()) {
        let z = (v - m) * is;
        tail += z * z;
    }
    (s0 + s2) + (s1 + s3) + tail
}

/// `y += a * x`, unrolled four wide. Each element is an independent
/// fused update, so this is bit-exact against [`scalar::axpy`].
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    if scalar_forced() {
        return scalar::axpy(y, a, x);
    }
    let n = y.len().min(x.len());
    let mut cy = y[..n].chunks_exact_mut(4);
    let mut cx = x[..n].chunks_exact(4);
    for (py, px) in (&mut cy).zip(&mut cx) {
        py[0] += a * px[0];
        py[1] += a * px[1];
        py[2] += a * px[2];
        py[3] += a * px[3];
    }
    for (yi, &xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += a * xi;
    }
}

// ---------------------------------------------------------------------------
// GEMV / GEMM
// ---------------------------------------------------------------------------

/// `out[i] = dot(a_row_i, x)` for a row-major `a` with `n_cols` columns.
///
/// # Panics
///
/// Panics if `a.len() != out.len() * n_cols` or `x.len() != n_cols`.
pub fn gemv(a: &[f64], n_cols: usize, x: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), out.len() * n_cols, "gemv: matrix/output shape mismatch");
    assert_eq!(x.len(), n_cols, "gemv: vector length mismatch");
    for (o, row) in out.iter_mut().zip(a.chunks_exact(n_cols.max(1))) {
        *o = dot(row, x);
    }
    if n_cols == 0 {
        out.fill(0.0);
    }
}

/// Column-tile width for [`gemm_nt`]: one tile of B rows (16 × k f64)
/// stays resident in L1/L2 while every A row streams past it.
const GEMM_TILE: usize = 16;

/// `out[i·n + j] = dot(a_row_i, b_row_j)` — C = A·Bᵀ for row-major
/// `A (m×k)` and `B (n×k)`, cache-blocked over `B` rows. The inner `k`
/// loop is [`dot`] un-split, so every output element is bitwise equal
/// to the corresponding `gemv`/`dot` call on the same operands.
///
/// # Panics
///
/// Panics on any shape mismatch between `a`, `b`, `k` and `out`.
pub fn gemm_nt(a: &[f64], m: usize, b: &[f64], n: usize, k: usize, out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(out.len(), m * n, "gemm_nt: output shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let mut jb = 0;
    while jb < n {
        let j_end = (jb + GEMM_TILE).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for j in jb..j_end {
                out_row[j] = dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
        jb = j_end;
    }
}

/// Dot product of two i8 vectors, accumulating in i32. Integer addition
/// is associative, so any evaluation order is *bit-exact* against
/// [`scalar::dot_i8`] — the quantized acoustic-model path inherits the
/// vectorized-equals-oracle guarantee the f64 kernels only meet up to
/// reassociation error.
///
/// Each product fits in 15 bits (`127·127`), so overflow needs
/// `k > 2^16` — far past any acoustic-model width; debug builds would
/// still catch it as an `i32` overflow panic.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    if scalar_forced() {
        return scalar::dot_i8(a, b);
    }
    a.iter().zip(b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()
}

/// Generates one monomorphic `C = A·Bᵀ` body over pre-widened i16
/// operands, optionally compiled for a wider ISA. The i8 inputs are
/// widened to i16 *before* the hot loop so the auto-vectorizer sees the
/// `pmaddwd`/`vpmaddwd` shape (i16 × i16 → paired i32 adds) directly;
/// widening inside the loop defeats it and ends up slower than the f64
/// path. One source body, three instruction sets — bit-identical
/// results in all of them because i32 accumulation is associative.
macro_rules! gemm_i16_impl {
    ($name:ident $(, $feat:literal)?) => {
        $(#[target_feature(enable = $feat)])?
        fn $name(aw: &[i16], m: usize, bw: &[i16], n: usize, k: usize, out: &mut [i32]) {
            for i in 0..m {
                let a_row = &aw[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &bw[j * k..(j + 1) * k];
                    *o = a_row.iter().zip(b_row).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum();
                }
            }
        }
    };
}

gemm_i16_impl!(gemm_i16_portable);
#[cfg(target_arch = "x86_64")]
gemm_i16_impl!(gemm_i16_avx2, "avx2");
#[cfg(target_arch = "x86_64")]
gemm_i16_impl!(gemm_i16_avx512, "avx512bw");

/// Shortest reduction axis at which the AVX-512BW GEMM body is worth
/// dispatching. A 512-bit vector holds 32 i16 lanes; below two full
/// vectors per row the masked tail and the wider horizontal reduce cost
/// more than the extra lanes earn, and the AVX2 body wins (measured
/// 1.2–2.1× faster at the acoustic-model shapes `k = 8..39`, while
/// AVX-512 stays ahead from `k = 64` up).
const GEMM_I8_AVX512_MIN_K: usize = 64;

/// Generates one monomorphic symmetric-quantization body, optionally
/// compiled for a wider ISA: `out[i] = saturate(xs[i] / scale)`. The
/// float→int `as` cast saturates and maps `NaN` to `0` (a Rust language
/// guarantee), so the branch-free form is element-for-element identical
/// to [`scalar::quantize_i8`]'s checked arithmetic while letting the
/// auto-vectorizer emit packed divide/round/clamp/convert.
macro_rules! quantize_i8_impl {
    ($name:ident $(, $feat:literal)?) => {
        $(#[target_feature(enable = $feat)])?
        fn $name(xs: &[f64], scale: f64, out: &mut [i8]) {
            for (o, &x) in out.iter_mut().zip(xs) {
                // mvp-lint: allow(numeric-truncation) -- float→i8 `as` saturates with NaN→0 (never wraps); bit-parity with the checked oracle is pinned by quantize_i8_is_bit_exact_against_oracle
                *o = (x / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
    };
}

quantize_i8_impl!(quantize_i8_portable);
#[cfg(target_arch = "x86_64")]
quantize_i8_impl!(quantize_i8_avx2, "avx2");

/// Symmetric i8 quantization of a whole activation buffer:
/// `out[i] = saturate(xs[i] / scale)` — round to nearest (half away
/// from zero), clamp to `±127`, `NaN → 0`. This is the activation
/// ingress of the int8 acoustic-model path, hot enough to matter: the
/// quantized GEMMs only win end to end if feeding them does not cost
/// the savings back.
///
/// Bit-exact against [`scalar::quantize_i8`] on every dispatch target —
/// the saturating cast and the checked clamp agree on all inputs,
/// including non-finite ones.
///
/// # Panics
///
/// Panics if `xs` and `out` lengths differ.
pub fn quantize_i8(xs: &[f64], scale: f64, out: &mut [i8]) {
    assert_eq!(xs.len(), out.len(), "quantize_i8: shape mismatch");
    if scalar_forced() {
        return scalar::quantize_i8(xs, scale, out);
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime feature check one line up.
            return unsafe { quantize_i8_avx2(xs, scale, out) };
        }
    }
    quantize_i8_portable(xs, scale, out);
}

/// `out[i·n + j] = dot_i8(a_row_i, b_row_j)` — integer `C = A·Bᵀ` for
/// row-major i8 `A (m×k)` and `B (n×k)`.
///
/// Both operands are widened to i16 scratch up front (cost `O(mk + nk)`
/// against `O(mnk)` multiplies), then a single generic inner body runs
/// on the widest instruction set the CPU reports — AVX-512BW, AVX2, or
/// the portable baseline. i32 accumulation is associative, so every
/// dispatch target is bit-exact against [`scalar::gemm_nt_i8`] and
/// against per-element [`dot_i8`] calls on the same operands; the
/// parity tests below pin all reachable paths.
///
/// # Panics
///
/// Panics on any shape mismatch between `a`, `b`, `k` and `out`.
pub fn gemm_nt_i8(a: &[i8], m: usize, b: &[i8], n: usize, k: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "gemm_nt_i8: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt_i8: B shape mismatch");
    assert_eq!(out.len(), m * n, "gemm_nt_i8: output shape mismatch");
    if scalar_forced() {
        return scalar::gemm_nt_i8(a, m, b, n, k, out);
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0);
        return;
    }
    // mvp-lint: allow(hot-path-alloc) -- one widening copy per GEMM call, amortized over O(m*n*k) work; the i8 kernel API is scratch-free by design
    let aw: Vec<i16> = a.iter().map(|&x| i16::from(x)).collect();
    // mvp-lint: allow(hot-path-alloc) -- one widening copy per GEMM call, amortized over O(m*n*k) work; the i8 kernel API is scratch-free by design
    let bw: Vec<i16> = b.iter().map(|&x| i16::from(x)).collect();
    #[cfg(target_arch = "x86_64")]
    {
        // Rows shorter than GEMM_I8_AVX512_MIN_K lose on 512-bit lanes;
        // every target computes bit-identical i32 sums, so the width
        // choice is purely a timing decision.
        if k >= GEMM_I8_AVX512_MIN_K && std::arch::is_x86_feature_detected!("avx512bw") {
            // SAFETY: guarded by the runtime feature check one line up.
            return unsafe { gemm_i16_avx512(&aw, m, &bw, n, k, out) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime feature check one line up.
            return unsafe { gemm_i16_avx2(&aw, m, &bw, n, k, out) };
        }
    }
    gemm_i16_portable(&aw, m, &bw, n, k, out);
}

// ---------------------------------------------------------------------------
// par_rows
// ---------------------------------------------------------------------------

/// Minimum row count before [`par_rows`] spins up threads at all; below
/// this the spawn overhead dwarfs the work.
const PAR_MIN_ROWS: usize = 8;

/// Applies `f` to every `n_cols`-wide row of `data`, spreading
/// contiguous row chunks across [`threads`] scoped workers. Each worker
/// builds its own scratch state with `init`, so `f` never contends; row
/// outputs are independent, making results bit-identical at any thread
/// count. With one worker (or few rows) it runs serially in the calling
/// thread with zero allocation.
///
/// `f` receives `(state, row_index, row)`.
pub fn par_rows<S, I, F>(data: &mut [f64], n_cols: usize, init: I, f: F)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [f64]) + Sync,
{
    if n_cols == 0 || data.is_empty() {
        return;
    }
    let n_rows = data.len() / n_cols;
    let workers = threads().clamp(1, n_rows.max(1));
    if workers <= 1 || n_rows < PAR_MIN_ROWS {
        let mut state = init();
        for (r, row) in data.chunks_exact_mut(n_cols).enumerate() {
            f(&mut state, r, row);
        }
        return;
    }
    let rows_per = n_rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, chunk) in data.chunks_mut(rows_per * n_cols).enumerate() {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                for (r, row) in chunk.chunks_exact_mut(n_cols).enumerate() {
                    f(&mut state, ci * rows_per + r, row);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Real-input FFT
// ---------------------------------------------------------------------------

/// Reusable buffers for [`RfftPlan`]; one per thread of frame work.
#[derive(Debug, Clone, Default)]
pub struct RfftScratch {
    /// Half-size complex buffer for the packed transform.
    half: Vec<Complex>,
    /// Full-size buffer, used only by the scalar-oracle fallback.
    full: Vec<Complex>,
}

/// A planned real-input FFT of size `n`: forward analysis to the
/// one-sided spectrum (`n/2 + 1` bins), Hermitian synthesis back to a
/// real signal, and the normalised inverse.
///
/// Packs the `n` reals into an `n/2` complex vector, runs a half-size
/// FFT and unpacks with a precomputed twiddle table — half the
/// butterfly work of the full complex transform the scalar oracle runs.
#[derive(Debug, Clone)]
pub struct RfftPlan {
    n: usize,
    /// `tw[k] = e^{-2πik/n}` for `k = 0..=n/2`.
    tw: Vec<Complex>,
}

impl RfftPlan {
    /// Plans a transform of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> RfftPlan {
        assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
        let tau = 2.0 * std::f64::consts::PI;
        let tw = (0..=n / 2).map(|k| Complex::from_angle(-tau * k as f64 / n as f64)).collect();
        RfftPlan { n, tw }
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of one-sided spectrum bins, `n/2 + 1`.
    pub fn n_bins(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward DFT of `signal` zero-padded to `n`, writing the one-sided
    /// spectrum `S[0..=n/2]` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > n` or `out.len() != n_bins()`.
    pub fn forward(&self, signal: &[f64], scratch: &mut RfftScratch, out: &mut [Complex]) {
        assert!(
            signal.len() <= self.n,
            "signal length {} exceeds FFT size {}",
            signal.len(),
            self.n
        );
        assert_eq!(out.len(), self.n_bins(), "one-sided spectrum length mismatch");
        if scalar_forced() {
            let full = &mut scratch.full;
            full.resize(self.n, Complex::ZERO);
            for (i, z) in full.iter_mut().enumerate() {
                *z = Complex::new(signal.get(i).copied().unwrap_or(0.0), 0.0);
            }
            fft::fft(full);
            out.copy_from_slice(&full[..self.n_bins()]);
            return;
        }
        if self.n == 1 {
            out[0] = Complex::new(signal.first().copied().unwrap_or(0.0), 0.0);
            return;
        }
        let half = self.n / 2;
        let buf = &mut scratch.half;
        buf.resize(half, Complex::ZERO);
        let s = |t: usize| if t < signal.len() { signal[t] } else { 0.0 };
        for (j, z) in buf.iter_mut().enumerate() {
            *z = Complex::new(s(2 * j), s(2 * j + 1));
        }
        fft::fft(buf);
        // S[k] = Ze[k] + e^{-2πik/n}·Zo[k], where Ze/Zo are the DFTs of
        // the even/odd samples recovered from the packed transform Z.
        for (k, o) in out.iter_mut().enumerate() {
            let zk = buf[k % half];
            let zr = buf[(half - k) % half].conj();
            let ze = (zk + zr).scale(0.5);
            let d = zk - zr;
            let zo = Complex::new(d.im * 0.5, -d.re * 0.5); // (zk − zr) / 2i
            *o = ze + self.tw[k] * zo;
        }
    }

    /// Hermitian synthesis `y[t] = Σ_{k=0}^{n-1} W̃_k e^{-2πikt/n}`,
    /// where `W̃` is the Hermitian extension of the one-sided `spec`
    /// (`W̃[n−k] = conj(spec[k])`). This is the adjoint of [`forward`]:
    /// exactly the `2·Re(F z)` term the MFCC backward pass needs. The
    /// DC and Nyquist bins must already be real.
    ///
    /// [`forward`]: RfftPlan::forward
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != n_bins()` or `out.len() != n`.
    pub fn hfft(&self, spec: &[Complex], scratch: &mut RfftScratch, out: &mut [f64]) {
        self.synth_plus(spec, true, scratch, out);
    }

    /// Normalised inverse: recovers the real signal from its one-sided
    /// spectrum, `irfft(forward(x)) == x` up to `O(n·ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != n_bins()` or `out.len() != n`.
    pub fn inverse(&self, spec: &[Complex], scratch: &mut RfftScratch, out: &mut [f64]) {
        self.synth_plus(spec, false, scratch, out);
        let inv_n = 1.0 / self.n as f64;
        for y in out.iter_mut() {
            *y *= inv_n;
        }
    }

    /// Core synthesis `y[t] = Σ W̃_k e^{+2πikt/n}` (unscaled); with
    /// `conj_in` the input bins are conjugated first, turning the sum
    /// into the forward-signed Hermitian synthesis (the output is real
    /// either way).
    fn synth_plus(
        &self,
        spec: &[Complex],
        conj_in: bool,
        scratch: &mut RfftScratch,
        out: &mut [f64],
    ) {
        assert_eq!(spec.len(), self.n_bins(), "one-sided spectrum length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        let c = |z: Complex| if conj_in { z.conj() } else { z };
        if self.n == 1 {
            out[0] = spec[0].re;
            return;
        }
        if scalar_forced() {
            // Oracle: materialise the full Hermitian spectrum and run
            // the full-size unnormalised inverse-sign transform.
            let full = &mut scratch.full;
            full.resize(self.n, Complex::ZERO);
            full[0] = c(spec[0]);
            let half = self.n / 2;
            full[half] = c(spec[half]);
            for k in 1..half {
                full[k] = c(spec[k]);
                full[self.n - k] = c(spec[k]).conj();
            }
            fft::transform(full, 1.0);
            for (y, z) in out.iter_mut().zip(full.iter()) {
                *y = z.re;
            }
            return;
        }
        let half = self.n / 2;
        let buf = &mut scratch.half;
        buf.resize(half, Complex::ZERO);
        // Re-pack the one-sided spectrum into the half-size transform
        // whose inverse interleaves to the even/odd output samples.
        for (k, z) in buf.iter_mut().enumerate() {
            let a = c(spec[k]);
            let b = c(spec[half - k]).conj();
            let ze = (a + b).scale(0.5);
            let d = (a - b).scale(0.5);
            let zo = self.tw[k].conj() * d;
            // Z[k] = Ze[k] + i·Zo[k]
            *z = Complex::new(ze.re - zo.im, ze.im + zo.re);
        }
        fft::transform(buf, 1.0);
        for (j, z) in buf.iter().enumerate() {
            out[2 * j] = 2.0 * z.re;
            out[2 * j + 1] = 2.0 * z.im;
        }
    }
}

// ---------------------------------------------------------------------------
// DCT-II plan
// ---------------------------------------------------------------------------

/// A planned truncated DCT-II (`n_in` log-mel energies → `n_out`
/// cepstra) with the cosine table precomputed. Summation order matches
/// the scalar oracle in [`crate::dct`] exactly, so forward and adjoint
/// are bit-exact against `dct2_into` / `dct2_transpose_into`.
#[derive(Debug, Clone)]
pub struct DctPlan {
    n_in: usize,
    n_out: usize,
    /// `cos_table[k·n_in + i] = cos(π·k·(2i+1) / (2·n_in))`.
    cos_table: Vec<f64>,
    /// Orthonormal scale per output coefficient.
    scale: Vec<f64>,
}

impl DctPlan {
    /// Plans an `n_in → n_out` truncated orthonormal DCT-II.
    ///
    /// # Panics
    ///
    /// Panics if `n_in == 0` or `n_out > n_in`.
    pub fn new(n_in: usize, n_out: usize) -> DctPlan {
        assert!(n_in > 0, "DCT input length must be positive");
        assert!(n_out <= n_in, "cannot keep {n_out} coefficients of {n_in}");
        let mut cos_table = Vec::with_capacity(n_in * n_out);
        for k in 0..n_out {
            for i in 0..n_in {
                cos_table.push(
                    (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2 * n_in) as f64)
                        .cos(),
                );
            }
        }
        let scale = (0..n_out)
            .map(|k| if k == 0 { (1.0 / n_in as f64).sqrt() } else { (2.0 / n_in as f64).sqrt() })
            .collect();
        DctPlan { n_in, n_out, cos_table, scale }
    }

    /// Input length the plan was built for.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of retained output coefficients.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Forward DCT-II: `out[k] = s_k · Σ_i x_i cos(πk(2i+1)/2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_in()` or `out.len() != n_out()`.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n_in, "DCT input length mismatch");
        assert_eq!(out.len(), self.n_out, "DCT output length mismatch");
        if scalar_forced() {
            crate::dct::dct2_into(x, out);
            return;
        }
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.cos_table[k * self.n_in..(k + 1) * self.n_in];
            let sum: f64 = x.iter().zip(row).map(|(&xi, &c)| xi * c).sum();
            *o = self.scale[k] * sum;
        }
    }

    /// Adjoint (transpose) of [`forward_into`]: scatters `n_out`
    /// coefficient gradients back to `n_in` input gradients.
    ///
    /// [`forward_into`]: DctPlan::forward_into
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != n_out()` or `out.len() != n_in()`.
    pub fn adjoint_into(&self, grad: &[f64], out: &mut [f64]) {
        assert_eq!(grad.len(), self.n_out, "DCT gradient length mismatch");
        assert_eq!(out.len(), self.n_in, "DCT adjoint output length mismatch");
        if scalar_forced() {
            crate::dct::dct2_transpose_into(grad, out);
            return;
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o = grad
                .iter()
                .enumerate()
                .map(|(k, &g)| self.scale[k] * g * self.cos_table[k * self.n_in + i])
                .sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{dct2_into, dct2_transpose_into};
    use proptest::prelude::*;

    /// Deterministic pseudo-random fill (xorshift64*), so parity runs
    /// are seeded and reproducible without any RNG dependency.
    fn lcg_fill(seed: u64, out: &mut [f64]) {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for v in out.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        }
    }

    fn vec_seeded(seed: u64, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        lcg_fill(seed, &mut v);
        v
    }

    #[test]
    fn dot_matches_scalar_within_reassociation() {
        // Non-multiples of the lane width and degenerate lengths.
        for (seed, n) in [(1u64, 0usize), (2, 1), (3, 3), (4, 4), (5, 7), (6, 39), (7, 257)] {
            let a = vec_seeded(seed, n);
            let b = vec_seeded(seed ^ 0xABCD, n);
            let got = dot(&a, &b);
            let want = scalar::dot(&a, &b);
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            assert!((got - want).abs() <= 1e-12 * (1.0 + mag), "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn axpy_is_bit_exact() {
        for (seed, n) in [(11u64, 0usize), (12, 1), (13, 5), (14, 64), (15, 129)] {
            let x = vec_seeded(seed, n);
            let mut y = vec_seeded(seed ^ 0x55, n);
            let mut y_oracle = y.clone();
            axpy(&mut y, 0.37, &x);
            scalar::axpy(&mut y_oracle, 0.37, &x);
            assert_eq!(y, y_oracle, "n={n}");
        }
    }

    #[test]
    fn sq_dist_and_zscore_match_scalar() {
        for (seed, n) in [(21u64, 1usize), (22, 6), (23, 40), (24, 101)] {
            let a = vec_seeded(seed, n);
            let b = vec_seeded(seed ^ 0x99, n);
            let is: Vec<f64> = vec_seeded(seed ^ 0x777, n).iter().map(|v| 1.0 + v.abs()).collect();
            let d = sq_dist(&a, &b);
            let ds = scalar::sq_dist(&a, &b);
            assert!((d - ds).abs() <= 1e-12 * (1.0 + ds.abs()), "n={n}: {d} vs {ds}");
            let z = sq_zscore_sum(&a, &b, &is);
            let zs = scalar::sq_zscore_sum(&a, &b, &is);
            assert!((z - zs).abs() <= 1e-12 * (1.0 + zs.abs()), "n={n}: {z} vs {zs}");
        }
    }

    #[test]
    fn gemm_equals_gemv_equals_dot_bitwise() {
        // The internal-consistency invariant several persistence tests
        // lean on: tiling never splits k, so all three entry points
        // produce identical bits.
        for (m, n, k) in [(1usize, 1usize, 1usize), (3, 5, 7), (17, 33, 4), (2, 40, 39)] {
            let a = vec_seeded(31 + (m * n) as u64, m * k);
            let b = vec_seeded(37 + k as u64, n * k);
            let mut c = vec![0.0; m * n];
            gemm_nt(&a, m, &b, n, k, &mut c);
            for i in 0..m {
                let mut row = vec![0.0; n];
                gemv(&b, k, &a[i * k..(i + 1) * k], &mut row);
                for j in 0..n {
                    assert_eq!(c[i * n + j], row[j], "gemm vs gemv at ({i},{j})");
                    assert_eq!(c[i * n + j], dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]));
                }
            }
        }
    }

    #[test]
    fn gemm_matches_scalar_oracle() {
        for (m, n, k) in [(0usize, 3usize, 4usize), (3, 0, 4), (3, 4, 0), (5, 19, 23), (20, 20, 1)]
        {
            let a = vec_seeded(41 + m as u64, m * k);
            let b = vec_seeded(43 + n as u64, n * k);
            let mut c = vec![0.0; m * n];
            gemm_nt(&a, m, &b, n, k, &mut c);
            for i in 0..m {
                for j in 0..n {
                    let want = scalar::dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    let mag: f64 = a[i * k..(i + 1) * k]
                        .iter()
                        .zip(&b[j * k..(j + 1) * k])
                        .map(|(x, y)| (x * y).abs())
                        .sum();
                    assert!(
                        (c[i * n + j] - want).abs() <= 1e-12 * (1.0 + mag),
                        "({i},{j}) of {m}x{n}x{k}"
                    );
                }
            }
        }
    }

    /// Deterministic i8 fill from the same xorshift stream.
    fn i8_seeded(seed: u64, n: usize) -> Vec<i8> {
        vec_seeded(seed, n).iter().map(|v| (v * 127.0).round().clamp(-127.0, 127.0) as i8).collect()
    }

    #[test]
    fn dot_i8_is_bit_exact_against_oracle() {
        for (seed, n) in [(61u64, 0usize), (62, 1), (63, 3), (64, 4), (65, 39), (66, 257)] {
            let a = i8_seeded(seed, n);
            let b = i8_seeded(seed ^ 0x5A5A, n);
            assert_eq!(dot_i8(&a, &b), scalar::dot_i8(&a, &b), "n={n}");
        }
    }

    #[test]
    fn gemm_i8_equals_dot_i8_and_scalar_oracle() {
        // Same invariant as the f64 GEMM, but *exact*: integer
        // accumulation makes tiling and lane order invisible.
        // Shapes straddle GEMM_I8_AVX512_MIN_K so both sides of the
        // width dispatch run (63/64/65 pin the cutoff boundary).
        for (m, n, k) in [
            (0usize, 3usize, 4usize),
            (3, 4, 0),
            (1, 1, 1),
            (5, 19, 23),
            (17, 33, 4),
            (7, 11, 63),
            (7, 11, 64),
            (7, 11, 65),
        ] {
            let a = i8_seeded(71 + m as u64, m * k);
            let b = i8_seeded(73 + n as u64, n * k);
            let mut c = vec![0i32; m * n];
            let mut want = vec![0i32; m * n];
            gemm_nt_i8(&a, m, &b, n, k, &mut c);
            scalar::gemm_nt_i8(&a, m, &b, n, k, &mut want);
            assert_eq!(c, want, "{m}x{n}x{k}");
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        c[i * n + j],
                        dot_i8(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]),
                        "({i},{j}) of {m}x{n}x{k}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_i8_is_bit_exact_against_oracle() {
        // Edge inputs first: both half boundaries, saturation on both
        // sides, and every non-finite class must land exactly where the
        // checked oracle puts them.
        let edges = [
            0.0,
            -0.0,
            0.49,
            0.5,
            0.51,
            -0.5,
            -0.51,
            126.49,
            126.5,
            127.0,
            127.49,
            128.0,
            300.0,
            -300.0,
            1e300,
            -1e300,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for scale in [1.0, 0.031, 7.5] {
            let mut got = vec![0i8; edges.len()];
            let mut want = vec![0i8; edges.len()];
            quantize_i8(&edges, scale, &mut got);
            scalar::quantize_i8(&edges, scale, &mut want);
            assert_eq!(got, want, "edges at scale {scale}");
        }
        // Dense random sweep across lengths that exercise every lane
        // position of the vectorized body.
        for (seed, n) in [(91u64, 1usize), (92, 3), (93, 4), (94, 17), (95, 64), (96, 403)] {
            let xs: Vec<f64> = vec_seeded(seed, n).iter().map(|v| v * 9.0).collect();
            let mut got = vec![0i8; n];
            let mut want = vec![0i8; n];
            quantize_i8(&xs, 0.031, &mut got);
            scalar::quantize_i8(&xs, 0.031, &mut want);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn dot_i8_extremes_do_not_overflow() {
        // Worst case ±127·±127 across a wide row stays well inside i32.
        let a = vec![i8::MIN + 1; 4096];
        let b = vec![127i8; 4096];
        assert_eq!(dot_i8(&a, &b), -127 * 127 * 4096);
        assert_eq!(scalar::dot_i8(&a, &b), -127 * 127 * 4096);
    }

    #[test]
    fn rfft_matches_full_fft_oracle() {
        // Degenerate and non-trivial power-of-two sizes, with the input
        // shorter than the transform (the zero-padded framing case).
        for (seed, n, sig_len) in
            [(51u64, 1usize, 1usize), (52, 2, 2), (53, 8, 5), (54, 64, 64), (55, 512, 400)]
        {
            let x = vec_seeded(seed, sig_len);
            let plan = RfftPlan::new(n);
            let mut scratch = RfftScratch::default();
            let mut got = vec![Complex::ZERO; plan.n_bins()];
            plan.forward(&x, &mut scratch, &mut got);
            let full = fft::rfft(&x, n);
            let scale: f64 = x.iter().map(|v| v.abs()).sum::<f64>() + 1.0;
            for (k, (g, w)) in got.iter().zip(&full).enumerate() {
                assert!(
                    (g.re - w.re).abs() <= 1e-12 * n as f64 * scale
                        && (g.im - w.im).abs() <= 1e-12 * n as f64 * scale,
                    "n={n} bin {k}: {g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn irfft_round_trips() {
        for (seed, n) in [(61u64, 2usize), (62, 16), (63, 256)] {
            let x = vec_seeded(seed, n);
            let plan = RfftPlan::new(n);
            let mut scratch = RfftScratch::default();
            let mut spec = vec![Complex::ZERO; plan.n_bins()];
            plan.forward(&x, &mut scratch, &mut spec);
            let mut back = vec![0.0; n];
            plan.inverse(&spec, &mut scratch, &mut back);
            for (t, (&g, &w)) in back.iter().zip(&x).enumerate() {
                assert!((g - w).abs() <= 1e-10 * n as f64, "n={n} t={t}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn hfft_matches_oracle_synthesis() {
        for (seed, n) in [(71u64, 4usize), (72, 32), (73, 128)] {
            let plan = RfftPlan::new(n);
            let mut scratch = RfftScratch::default();
            let mut spec: Vec<Complex> = (0..plan.n_bins())
                .map(|k| {
                    let v = vec_seeded(seed + k as u64, 2);
                    Complex::new(v[0], v[1])
                })
                .collect();
            // Hermitian synthesis requires real DC/Nyquist bins.
            spec[0].im = 0.0;
            let last = plan.n_bins() - 1;
            spec[last].im = 0.0;
            let mut got = vec![0.0; n];
            plan.hfft(&spec, &mut scratch, &mut got);
            // Oracle: y[t] = 2·Re(full FFT of the one-sided spectrum
            // laid out as a zero-extended buffer), minus the
            // double-counted DC/Nyquist halves — equivalently, direct
            // evaluation of the Hermitian sum.
            for (t, &g) in got.iter().enumerate() {
                let mut want = 0.0;
                for (k, z) in spec.iter().enumerate() {
                    let w = Complex::from_angle(
                        -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64,
                    );
                    let term = *z * w;
                    want += if k == 0 || k == last { term.re } else { 2.0 * term.re };
                }
                assert!((g - want).abs() <= 1e-9 * n as f64, "n={n} t={t}: {g} vs {want}");
            }
        }
    }

    #[test]
    fn dct_plan_is_bit_exact_against_oracle() {
        for (n_in, n_out) in [(1usize, 1usize), (5, 3), (26, 13), (26, 26), (40, 1)] {
            let plan = DctPlan::new(n_in, n_out);
            let x = vec_seeded(81 + n_in as u64, n_in);
            let mut got = vec![0.0; n_out];
            let mut want = vec![0.0; n_out];
            plan.forward_into(&x, &mut got);
            dct2_into(&x, &mut want);
            assert_eq!(got, want, "forward {n_in}->{n_out}");

            let g = vec_seeded(83 + n_out as u64, n_out);
            let mut agot = vec![0.0; n_in];
            let mut awant = vec![0.0; n_in];
            plan.adjoint_into(&g, &mut agot);
            dct2_transpose_into(&g, &mut awant);
            assert_eq!(agot, awant, "adjoint {n_in}->{n_out}");
        }
    }

    #[test]
    fn par_rows_is_thread_count_invariant() {
        let n_cols = 17;
        let n_rows = 40;
        let mut serial = vec_seeded(91, n_rows * n_cols);
        let mut parallel = serial.clone();
        let work = |state: &mut Vec<f64>, r: usize, row: &mut [f64]| {
            state.resize(n_cols, 0.0);
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v * 3.0).sin() + r as f64 * 0.01 + j as f64;
            }
        };
        // Serial reference in the calling thread.
        {
            let mut state = Vec::new();
            for (r, row) in serial.chunks_exact_mut(n_cols).enumerate() {
                work(&mut state, r, row);
            }
        }
        par_rows(&mut parallel, n_cols, Vec::new, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_rows_handles_degenerate_shapes() {
        let mut empty: Vec<f64> = Vec::new();
        par_rows(&mut empty, 4, || (), |_, _, _| panic!("no rows"));
        let mut one = vec![1.0, 2.0, 3.0];
        par_rows(
            &mut one,
            3,
            || (),
            |_, r, row| {
                assert_eq!(r, 0);
                row[0] += 1.0;
            },
        );
        assert_eq!(one[0], 2.0);
    }

    proptest! {
        #[test]
        fn dot_parity_property(raw in proptest::collection::vec(-1e3f64..1e3, 0..64)) {
            let m = raw.len() / 2;
            let (a, b) = (&raw[..m], &raw[m..2 * m]);
            let got = dot(a, b);
            let want = scalar::dot(a, b);
            let mag: f64 = a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum();
            prop_assert!((got - want).abs() <= 1e-12 * (1.0 + mag));
        }

        #[test]
        fn rfft_forward_parity_property(raw in proptest::collection::vec(-1.0f64..1.0, 0..48)) {
            let n = 64;
            let plan = RfftPlan::new(n);
            let mut scratch = RfftScratch::default();
            let mut got = vec![Complex::ZERO; plan.n_bins()];
            plan.forward(&raw, &mut scratch, &mut got);
            let full = fft::rfft(&raw, n);
            for (g, w) in got.iter().zip(&full) {
                prop_assert!((g.re - w.re).abs() <= 1e-10 && (g.im - w.im).abs() <= 1e-10);
            }
        }
    }
}
