//! Short-time Fourier transform and spectrogram computation.
//!
//! The paper's Figure 2 shows the spectrogram as the intermediate between
//! the waveform and the acoustic features; this module exposes it directly
//! for inspection, visualisation and spectral analysis (the MFCC pipeline
//! in [`crate::mfcc`] embeds the same computation).

use crate::complex::Complex;
use crate::frame::frames;
use crate::kernel::{RfftPlan, RfftScratch};
use crate::window::Window;

/// A magnitude or power spectrogram: `n_frames × n_bins` with
/// `n_bins = n_fft / 2 + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    data: Vec<f64>,
    n_frames: usize,
    n_bins: usize,
    /// Hz covered by one bin.
    bin_hz: f64,
}

impl Spectrogram {
    /// Number of analysis frames.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Number of frequency bins.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Width of one frequency bin in Hz.
    pub fn bin_hz(&self) -> f64 {
        self.bin_hz
    }

    /// The spectrum of frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= n_frames`.
    pub fn frame(&self, t: usize) -> &[f64] {
        &self.data[t * self.n_bins..(t + 1) * self.n_bins]
    }

    /// The frequency (Hz) with the most energy in frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= n_frames`.
    pub fn peak_frequency(&self, t: usize) -> f64 {
        let frame = self.frame(t);
        let (idx, _) =
            frame.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty frame");
        idx as f64 * self.bin_hz
    }

    /// Total energy of frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= n_frames`.
    pub fn frame_energy(&self, t: usize) -> f64 {
        self.frame(t).iter().sum()
    }
}

/// Computes the power spectrogram of `samples`.
///
/// # Panics
///
/// Panics if `n_fft` is not a power of two, `frame_len > n_fft`, or
/// `frame_len`/`hop` is zero.
pub fn spectrogram(
    samples: &[f64],
    sample_rate: u32,
    frame_len: usize,
    hop: usize,
    n_fft: usize,
    window: Window,
) -> Spectrogram {
    assert!(n_fft.is_power_of_two(), "n_fft must be a power of two");
    assert!(frame_len <= n_fft, "frame longer than FFT size");
    let coeffs = window.coefficients(frame_len);
    let n_bins = n_fft / 2 + 1;
    let framed = frames(samples, frame_len, hop);
    let plan = RfftPlan::new(n_fft);
    let mut scratch = RfftScratch::default();
    let mut windowed = vec![0.0; frame_len];
    let mut spec = vec![Complex::ZERO; n_bins];
    let mut data = Vec::with_capacity(framed.n_rows() * n_bins);
    for frame in framed.rows() {
        for ((w, &s), &c) in windowed.iter_mut().zip(frame).zip(&coeffs) {
            *w = s * c;
        }
        plan.forward(&windowed, &mut scratch, &mut spec);
        data.extend(spec.iter().map(|z| z.norm_sq()));
    }
    Spectrogram {
        n_frames: framed.n_rows(),
        n_bins,
        bin_hz: sample_rate as f64 / n_fft as f64,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(hz: f64, rate: u32, n: usize) -> Vec<f64> {
        (0..n).map(|i| (std::f64::consts::TAU * hz * i as f64 / rate as f64).sin()).collect()
    }

    #[test]
    fn pure_tone_peaks_at_its_frequency() {
        let s = spectrogram(&tone(1000.0, 16_000, 4_000), 16_000, 400, 160, 512, Window::Hann);
        for t in 1..s.n_frames() - 2 {
            let peak = s.peak_frequency(t);
            assert!((peak - 1000.0).abs() < s.bin_hz() * 1.5, "frame {t}: {peak} Hz");
        }
    }

    #[test]
    fn shape_and_bin_width() {
        let s = spectrogram(&vec![0.0; 1600], 16_000, 400, 160, 512, Window::Hann);
        assert_eq!(s.n_bins(), 257);
        assert!((s.bin_hz() - 31.25).abs() < 1e-9);
        assert!(s.n_frames() >= 8);
    }

    #[test]
    fn silence_has_no_energy() {
        let s = spectrogram(&vec![0.0; 800], 8_000, 256, 128, 256, Window::Hamming);
        for t in 0..s.n_frames() {
            assert!(s.frame_energy(t) < 1e-12);
        }
    }

    #[test]
    fn louder_signal_more_energy() {
        let quiet: Vec<f64> = tone(500.0, 8_000, 1_000).iter().map(|v| v * 0.1).collect();
        let loud = tone(500.0, 8_000, 1_000);
        let sq = spectrogram(&quiet, 8_000, 256, 128, 256, Window::Hann);
        let sl = spectrogram(&loud, 8_000, 256, 128, 256, Window::Hann);
        assert!(sl.frame_energy(2) > 50.0 * sq.frame_energy(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_fft_size_rejected() {
        spectrogram(&[0.0; 100], 8_000, 50, 25, 100, Window::Hann);
    }
}
