//! A minimal complex-number type for the FFT.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// ```
/// use mvp_dsp::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Constructs `re + i·im`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Unit phasor `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * Complex::from(1.0), a);
        assert_eq!((-a) + a, Complex::ZERO);
    }

    #[test]
    fn conjugate_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn phasor_unit_circle() {
        for k in 0..8 {
            let z = Complex::from_angle(std::f64::consts::PI * k as f64 / 4.0);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }
}
