//! A contiguous row-major `f64` matrix — the one carrier type of the
//! numeric data plane.
//!
//! Every layer of the pipeline (framing, MFCC, acoustic-model logits, CTC
//! gradients, classifier datasets) moves dense `rows × cols` blocks of
//! `f64`. [`Mat`] stores them in a single allocation so that hot loops walk
//! one cache-friendly buffer instead of chasing a `Vec` of row pointers,
//! and so that scratch-plan call sites can reuse the allocation across
//! calls ([`Mat::reset`]).
//!
//! `mvp_dsp::mfcc::FeatureMatrix` is an alias of this type, kept for
//! continuity with the original feature-extraction API.

/// A dense `n_rows × n_cols` matrix of `f64` in row-major order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mat {
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl Mat {
    /// A zero-filled `n_rows × n_cols` matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Mat {
        Mat { data: vec![0.0; n_rows * n_cols], n_rows, n_cols }
    }

    /// Builds a matrix from rows of equal length.
    ///
    /// Kept for tests and one-off construction; steady-state code should
    /// write rows in place via [`row_mut`](Self::row_mut) or
    /// [`push_row`](Self::push_row).
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `n_cols`.
    // mvp-lint: allow(nested-vec-f64) -- the one bridge constructor from row-per-allocation data; rows are flattened into the contiguous buffer immediately
    pub fn from_rows(rows: Vec<Vec<f64>>, n_cols: usize) -> Mat {
        let n_rows = rows.len();
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged feature rows");
            data.extend(r);
        }
        Mat { data, n_rows, n_cols }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len()` is a multiple of `n_cols`
    /// (an empty buffer with `n_cols == 0` is the empty matrix).
    pub fn from_vec(data: Vec<f64>, n_cols: usize) -> Mat {
        let n_rows = if n_cols == 0 {
            assert!(data.is_empty(), "zero-width matrix must be empty");
            0
        } else {
            assert!(data.len().is_multiple_of(n_cols), "buffer not a whole number of rows");
            data.len() / n_cols
        };
        Mat { data, n_rows, n_cols }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of rows — feature-matrix alias of [`n_rows`](Self::n_rows).
    pub fn n_frames(&self) -> usize {
        self.n_rows
    }

    /// Number of columns — feature-matrix alias of [`n_cols`](Self::n_cols).
    pub fn dim(&self) -> usize {
        self.n_cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n_rows, "row {i} out of range ({} rows)", self.n_rows);
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable view of the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.n_rows, "row {i} out of range ({} rows)", self.n_rows);
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols.max(1)).take(self.n_rows)
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Appends a row, adopting its width if the matrix is still `0 × 0`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the established column count.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.n_rows == 0 && self.n_cols == 0 {
            self.n_cols = row.len();
        }
        assert_eq!(row.len(), self.n_cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Resizes to `n_rows × n_cols`, reusing the existing allocation, and
    /// zero-fills the contents. The scratch-plan entry point: callers that
    /// own a long-lived `Mat` reset it per work item without reallocating
    /// once it has reached its steady-state size.
    pub fn reset(&mut self, n_rows: usize, n_cols: usize) {
        self.n_rows = n_rows;
        self.n_cols = n_cols;
        self.data.clear();
        self.data.resize(n_rows * n_cols, 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Maps each row through `f`, which writes the `out_cols`-wide output
    /// row in place — a single output allocation, no per-row `Vec`s.
    pub fn map_rows(&self, out_cols: usize, mut f: impl FnMut(&[f64], &mut [f64])) -> Mat {
        let mut out = Mat::zeros(self.n_rows, out_cols);
        for i in 0..self.n_rows {
            f(self.row(i), out.row_mut(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Mat::zeros(3, 2);
        assert_eq!((m.n_rows(), m.n_cols()), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Mat::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(m.row(1), &[5.0, 6.0]);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn push_row_adopts_width() {
        let mut m = Mat::default();
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!((m.n_rows(), m.n_cols()), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_rejects_width_mismatch() {
        let mut m = Mat::zeros(0, 2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut m = Mat::zeros(4, 8);
        let cap = m.as_slice().len();
        m.row_mut(0)[0] = 7.0;
        m.reset(2, 8);
        assert_eq!((m.n_rows(), m.n_cols()), (2, 8));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(m.as_slice().len() <= cap);
    }

    #[test]
    fn from_vec_infers_rows() {
        let m = Mat::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn from_vec_rejects_partial_rows() {
        Mat::from_vec(vec![1.0, 2.0, 3.0], 2);
    }

    proptest! {
        #[test]
        fn from_rows_round_trips_through_row_views(
            rows in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 5),
                0..12,
            ),
        ) {
            let m = Mat::from_rows(rows.clone(), 5);
            prop_assert_eq!(m.n_rows(), rows.len());
            for (i, r) in rows.iter().enumerate() {
                prop_assert_eq!(m.row(i), r.as_slice());
            }
            let collected: Vec<Vec<f64>> = m.rows().map(<[f64]>::to_vec).collect();
            prop_assert_eq!(collected, rows);
        }

        #[test]
        fn ragged_rows_rejected(
            good in proptest::collection::vec(-1.0f64..1.0, 4),
            extra in proptest::collection::vec(-1.0f64..1.0, 1..5),
        ) {
            // A second row longer than the first is always ragged.
            let mut bad = good.clone();
            bad.extend_from_slice(&extra);
            let result = std::panic::catch_unwind(|| {
                Mat::from_rows(vec![good.clone(), bad.clone()], 4)
            });
            prop_assert!(result.is_err());
        }

        #[test]
        fn map_rows_matches_naive_nested_path(
            rows in proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, 3),
                1..10,
            ),
        ) {
            let m = Mat::from_rows(rows.clone(), 3);
            // Arbitrary per-row transform: prefix sums.
            let mapped = m.map_rows(3, |r, out| {
                let mut acc = 0.0;
                for (o, &v) in out.iter_mut().zip(r) {
                    acc += v;
                    *o = acc;
                }
            });
            let naive: Vec<Vec<f64>> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .scan(0.0, |acc, &v| {
                            *acc += v;
                            Some(*acc)
                        })
                        .collect()
                })
                .collect();
            for (i, r) in naive.iter().enumerate() {
                prop_assert_eq!(mapped.row(i), r.as_slice());
            }
        }
    }
}
