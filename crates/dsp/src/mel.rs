//! Mel-scale filterbank.

use crate::kernel;
use crate::mat::Mat;

/// Converts frequency in Hz to mel (O'Shaughnessy formula).
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mel to frequency in Hz (inverse of [`hz_to_mel`]).
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// A bank of triangular filters evenly spaced on the mel scale, applied to a
/// one-sided power spectrum of `n_fft / 2 + 1` bins.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    /// Row `m`, column `k` is the contribution of spectrum bin `k` to
    /// filter `m` — one flat `n_filters × n_bins` matrix.
    weights: Mat,
    n_bins: usize,
    /// Per-filter `[lo, hi)` range of non-zero weights: each triangle
    /// touches only a narrow band of bins, so the fused kernel sums
    /// just that band instead of the full spectrum.
    ranges: Vec<(usize, usize)>,
}

impl MelFilterbank {
    /// Builds a filterbank of `n_filters` triangles covering
    /// `[f_min, f_max]` Hz for an FFT of size `n_fft` at `sample_rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `n_filters == 0`, `f_min >= f_max`, or
    /// `f_max > sample_rate / 2`.
    pub fn new(n_filters: usize, n_fft: usize, sample_rate: f64, f_min: f64, f_max: f64) -> Self {
        assert!(n_filters > 0, "need at least one mel filter");
        assert!(f_min < f_max, "f_min {f_min} must be below f_max {f_max}");
        assert!(
            f_max <= sample_rate / 2.0 + 1e-9,
            "f_max {f_max} exceeds Nyquist {}",
            sample_rate / 2.0
        );
        let n_bins = n_fft / 2 + 1;
        let mel_lo = hz_to_mel(f_min);
        let mel_hi = hz_to_mel(f_max);
        // n_filters + 2 edge points define n_filters triangles.
        let edges_hz: Vec<f64> = (0..n_filters + 2)
            .map(|i| mel_to_hz(mel_lo + (mel_hi - mel_lo) * i as f64 / (n_filters + 1) as f64))
            .collect();
        let bin_hz = sample_rate / n_fft as f64;
        let mut weights = Mat::zeros(n_filters, n_bins);
        for m in 0..n_filters {
            let (lo, mid, hi) = (edges_hz[m], edges_hz[m + 1], edges_hz[m + 2]);
            for (k, w) in weights.row_mut(m).iter_mut().enumerate() {
                let f = k as f64 * bin_hz;
                if f > lo && f < hi {
                    *w = if f <= mid { (f - lo) / (mid - lo) } else { (hi - f) / (hi - mid) };
                }
            }
        }
        let ranges = (0..n_filters)
            .map(|m| {
                let row = weights.row(m);
                let lo = row.iter().position(|&w| w != 0.0).unwrap_or(0);
                let hi = row.iter().rposition(|&w| w != 0.0).map_or(lo, |i| i + 1);
                (lo, hi)
            })
            .collect();
        MelFilterbank { weights, n_bins, ranges }
    }

    /// Number of filters.
    pub fn n_filters(&self) -> usize {
        self.weights.n_rows()
    }

    /// Number of spectrum bins this bank expects (`n_fft / 2 + 1`).
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Applies the filterbank: `mel[m] = Σ_k w[m][k] · power[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `power.len() != self.n_bins()`.
    pub fn apply(&self, power: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_filters()];
        self.apply_into(power, &mut out);
        out
    }

    /// Allocation-free [`apply`](Self::apply): writes the mel energies into
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `power.len() != self.n_bins()` or
    /// `out.len() != self.n_filters()`.
    pub fn apply_into(&self, power: &[f64], out: &mut [f64]) {
        if kernel::scalar_forced() {
            return self.apply_dense_into(power, out);
        }
        assert_eq!(power.len(), self.n_bins, "power spectrum bin count");
        assert_eq!(out.len(), self.n_filters(), "mel output length");
        // Fused sparse form: every skipped term of the dense oracle is
        // exactly `w * p == +0.0`, so restricting the serial sum to the
        // non-zero band is bit-exact against `apply_dense_into`.
        for ((o, row), &(lo, hi)) in out.iter_mut().zip(self.weights.rows()).zip(&self.ranges) {
            *o = row[lo..hi].iter().zip(&power[lo..hi]).map(|(w, p)| w * p).sum();
        }
    }

    /// Dense scalar oracle for [`apply_into`](Self::apply_into): sums
    /// every bin, zero weights included. Parity tests and
    /// `kernel::force_scalar` benches are the intended callers.
    ///
    /// # Panics
    ///
    /// Panics if `power.len() != self.n_bins()` or
    /// `out.len() != self.n_filters()`.
    pub fn apply_dense_into(&self, power: &[f64], out: &mut [f64]) {
        assert_eq!(power.len(), self.n_bins, "power spectrum bin count");
        assert_eq!(out.len(), self.n_filters(), "mel output length");
        for (o, row) in out.iter_mut().zip(self.weights.rows()) {
            *o = row.iter().zip(power).map(|(w, p)| w * p).sum();
        }
    }

    /// Adjoint of [`apply`](Self::apply): maps a gradient over mel energies
    /// back to a gradient over spectrum bins.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != self.n_filters()`.
    pub fn apply_transpose(&self, grad: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_bins];
        self.apply_transpose_into(grad, &mut out);
        out
    }

    /// Allocation-free [`apply_transpose`](Self::apply_transpose),
    /// scattering only over each filter's non-zero band. `out` is
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != self.n_filters()` or
    /// `out.len() != self.n_bins()`.
    pub fn apply_transpose_into(&self, grad: &[f64], out: &mut [f64]) {
        assert_eq!(grad.len(), self.n_filters(), "mel gradient length");
        assert_eq!(out.len(), self.n_bins, "spectrum gradient length");
        out.fill(0.0);
        if kernel::scalar_forced() {
            for (row, &g) in self.weights.rows().zip(grad) {
                for (o, &w) in out.iter_mut().zip(row) {
                    *o += w * g;
                }
            }
            return;
        }
        for ((row, &g), &(lo, hi)) in self.weights.rows().zip(grad).zip(&self.ranges) {
            for (o, &w) in out[lo..hi].iter_mut().zip(&row[lo..hi]) {
                *o += w * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_scale_roundtrip() {
        for hz in [0.0, 100.0, 440.0, 1000.0, 4000.0, 8000.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6, "{hz}");
        }
        assert!((hz_to_mel(1000.0) - 999.99).abs() < 0.5); // 1 kHz ≈ 1000 mel
    }

    #[test]
    fn filters_are_nonnegative_and_cover_midband() {
        let fb = MelFilterbank::new(26, 512, 16000.0, 0.0, 8000.0);
        let mut coverage = vec![0.0; fb.n_bins()];
        for m in 0..fb.n_filters() {
            let mut one = vec![0.0; fb.n_filters()];
            one[m] = 1.0;
            for (c, w) in coverage.iter_mut().zip(fb.apply_transpose(&one)) {
                assert!(w >= 0.0);
                *c += w;
            }
        }
        // Interior bins are covered by at least one triangle.
        let interior = &coverage[4..fb.n_bins() - 4];
        assert!(interior.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn apply_pure_bin_hits_expected_filter() {
        let fb = MelFilterbank::new(10, 256, 16000.0, 0.0, 8000.0);
        let mut power = vec![0.0; fb.n_bins()];
        power[20] = 1.0; // 20 * 62.5 Hz = 1250 Hz
        let mel = fb.apply(&power);
        let total: f64 = mel.iter().sum();
        assert!(total > 0.0);
        // Energy lands in at most two adjacent filters.
        let active = mel.iter().filter(|&&m| m > 1e-12).count();
        assert!(active <= 2, "active filters: {active}");
    }

    #[test]
    fn transpose_is_adjoint() {
        let fb = MelFilterbank::new(8, 128, 8000.0, 100.0, 4000.0);
        // <A p, g> == <p, A^T g> for random-ish vectors.
        let p: Vec<f64> = (0..fb.n_bins()).map(|i| ((i * 7) % 5) as f64).collect();
        let g: Vec<f64> = (0..fb.n_filters()).map(|i| ((i * 3) % 4) as f64 - 1.0).collect();
        let lhs: f64 = fb.apply(&p).iter().zip(&g).map(|(a, b)| a * b).sum();
        let rhs: f64 = fb.apply_transpose(&g).iter().zip(&p).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn fused_apply_matches_dense_oracle_bit_exactly() {
        for (n_filters, n_fft, f_min) in [(26, 512, 20.0), (8, 128, 0.0), (40, 1024, 300.0)] {
            let fb = MelFilterbank::new(n_filters, n_fft, 16000.0, f_min, 8000.0);
            let power: Vec<f64> =
                (0..fb.n_bins()).map(|i| ((i * 31 % 17) as f64 * 0.3).sin().abs()).collect();
            let mut fused = vec![0.0; fb.n_filters()];
            let mut dense = vec![0.0; fb.n_filters()];
            fb.apply_into(&power, &mut fused);
            fb.apply_dense_into(&power, &mut dense);
            assert_eq!(fused, dense, "{n_filters} filters over {n_fft}-point FFT");

            let grad: Vec<f64> =
                (0..fb.n_filters()).map(|i| (i as f64 * 0.7).cos() - 0.3).collect();
            let mut fused_t = vec![0.0; fb.n_bins()];
            fb.apply_transpose_into(&grad, &mut fused_t);
            let mut dense_t = vec![0.0; fb.n_bins()];
            for (row, &g) in (0..fb.n_filters()).map(|m| fb.weights.row(m)).zip(&grad) {
                for (o, &w) in dense_t.iter_mut().zip(row) {
                    *o += w * g;
                }
            }
            for (a, b) in fused_t.iter().zip(&dense_t) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn fmax_beyond_nyquist_panics() {
        MelFilterbank::new(10, 256, 8000.0, 0.0, 6000.0);
    }
}
