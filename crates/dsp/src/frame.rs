//! Frame segmentation and its adjoint (overlap-add scatter).

use crate::mat::Mat;

/// Number of frames produced for `n_samples` with the given geometry.
///
/// A partial trailing frame is included and zero-padded, so any non-empty
/// signal yields at least one frame.
pub fn frame_count(n_samples: usize, frame_len: usize, hop: usize) -> usize {
    assert!(frame_len > 0 && hop > 0, "frame geometry must be positive");
    if n_samples == 0 {
        return 0;
    }
    if n_samples <= frame_len {
        return 1;
    }
    1 + (n_samples - frame_len).div_ceil(hop)
}

/// Segments `samples` into overlapping frames of `frame_len` advancing by
/// `hop`, zero-padding the final partial frame. Returns an
/// `n_frames × frame_len` matrix.
///
/// ```
/// use mvp_dsp::frame::frames;
/// let f = frames(&[1.0, 2.0, 3.0, 4.0, 5.0], 4, 2);
/// assert_eq!(f.n_rows(), 2);
/// assert_eq!(f.row(0), &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(f.row(1), &[3.0, 4.0, 5.0, 0.0]);
/// ```
///
/// # Panics
///
/// Panics if `frame_len` or `hop` is zero.
pub fn frames(samples: &[f64], frame_len: usize, hop: usize) -> Mat {
    let n = frame_count(samples.len(), frame_len, hop);
    let mut out = Mat::zeros(n, frame_len);
    for f in 0..n {
        let start = f * hop;
        if start < samples.len() {
            let end = (start + frame_len).min(samples.len());
            out.row_mut(f)[..end - start].copy_from_slice(&samples[start..end]);
        }
    }
    out
}

/// Adjoint of [`frames`]: scatters per-frame gradients back onto the sample
/// axis (overlap regions accumulate).
///
/// `frame_grads` must have the geometry (`frame_count × frame_len`) that
/// [`frames`] produced for a signal of length `n_samples`.
///
/// # Panics
///
/// Panics if the frame count is inconsistent with the geometry.
pub fn overlap_add_adjoint(frame_grads: &Mat, hop: usize, n_samples: usize) -> Vec<f64> {
    let frame_len = frame_grads.n_cols();
    assert_eq!(
        frame_grads.n_rows(),
        frame_count(n_samples, frame_len, hop),
        "frame count mismatch"
    );
    let mut out = vec![0.0; n_samples];
    for (f, grad) in frame_grads.rows().enumerate() {
        let start = f * hop;
        for (i, &g) in grad.iter().enumerate() {
            if let Some(slot) = out.get_mut(start + i) {
                *slot += g;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_fit_no_padding() {
        let f = frames(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.row(0), &[1.0, 2.0]);
        assert_eq!(f.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn empty_signal_no_frames() {
        assert!(frames(&[], 4, 2).is_empty());
        assert_eq!(frame_count(0, 4, 2), 0);
    }

    #[test]
    fn short_signal_single_frame() {
        let f = frames(&[1.0], 4, 2);
        assert_eq!(f.n_rows(), 1);
        assert_eq!(f.row(0), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn adjoint_is_transpose() {
        // <frames(x), G> == <x, overlap_add_adjoint(G)> for all x, G: the
        // defining property of an adjoint operator, checked on a basis.
        let n = 11;
        let (fl, hop) = (4, 3);
        let nf = frame_count(n, fl, hop);
        for t in 0..n {
            let mut x = vec![0.0; n];
            x[t] = 1.0;
            let fx = frames(&x, fl, hop);
            for fi in 0..nf {
                for j in 0..fl {
                    let mut g = Mat::zeros(nf, fl);
                    g.row_mut(fi)[j] = 1.0;
                    let lhs: f64 = fx.row(fi)[j];
                    let adj = overlap_add_adjoint(&g, hop, n);
                    assert!((lhs - adj[t]).abs() < 1e-15);
                }
            }
        }
    }

    proptest! {
        #[test]
        fn frames_cover_all_samples(
            samples in proptest::collection::vec(-1.0f64..1.0, 1..64),
            frame_len in 1usize..16,
            hop in 1usize..8,
        ) {
            let f = frames(&samples, frame_len, hop);
            prop_assert_eq!(f.n_rows(), frame_count(samples.len(), frame_len, hop));
            // First frame starts with the signal.
            prop_assert_eq!(f.row(0)[0], samples[0]);
            // When hops do not skip samples, the frames jointly cover the
            // whole signal.
            if hop <= frame_len {
                let last_covered = (f.n_rows() - 1) * hop + frame_len;
                prop_assert!(last_covered >= samples.len());
            }
        }

        #[test]
        fn adjoint_shape(
            n in 1usize..64,
            frame_len in 1usize..16,
            hop in 1usize..8,
        ) {
            let nf = frame_count(n, frame_len, hop);
            let mut g = Mat::zeros(nf, frame_len);
            g.fill(1.0);
            let adj = overlap_add_adjoint(&g, hop, n);
            prop_assert_eq!(adj.len(), n);
            // Each sample accumulates at most ceil(frame_len / hop) times;
            // when hops do not skip samples, also at least once.
            for &v in &adj {
                if hop <= frame_len {
                    prop_assert!(v >= 1.0 - 1e-12);
                }
                prop_assert!(v <= (frame_len.div_ceil(hop)) as f64 + 1e-12);
            }
        }
    }
}
