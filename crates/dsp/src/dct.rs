//! Orthonormal DCT-II used to decorrelate log-mel energies into cepstra.

/// DCT-II with orthonormal scaling, truncated to `n_out` coefficients.
///
/// `y_k = s_k Σ_i x_i cos(π k (2i + 1) / (2n))` where `s_0 = √(1/n)` and
/// `s_k = √(2/n)` otherwise.
///
/// # Panics
///
/// Panics if `x` is empty or `n_out > x.len()`.
pub fn dct2(x: &[f64], n_out: usize) -> Vec<f64> {
    let mut out = vec![0.0; n_out];
    dct2_into(x, &mut out);
    out
}

/// Allocation-free [`dct2`]: writes `out.len()` coefficients into `out`.
///
/// # Panics
///
/// Panics if `x` is empty or `out.len() > x.len()`.
pub fn dct2_into(x: &[f64], out: &mut [f64]) {
    let n = x.len();
    assert!(n > 0, "DCT input must be non-empty");
    assert!(out.len() <= n, "cannot produce {} coefficients from {n} inputs", out.len());
    for (k, o) in out.iter_mut().enumerate() {
        let s = if k == 0 { (1.0 / n as f64).sqrt() } else { (2.0 / n as f64).sqrt() };
        let sum: f64 = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| {
                xi * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2 * n) as f64).cos()
            })
            .sum();
        *o = s * sum;
    }
}

/// Adjoint of [`dct2`]: maps a gradient over the `n_out` coefficients back
/// to a gradient over `n_in` inputs.
///
/// # Panics
///
/// Panics if `grad.len() > n_in` or `n_in == 0`.
pub fn dct2_transpose(grad: &[f64], n_in: usize) -> Vec<f64> {
    let mut out = vec![0.0; n_in];
    dct2_transpose_into(grad, &mut out);
    out
}

/// Allocation-free [`dct2_transpose`]: writes the `out.len()`-dimensional
/// input gradient into `out`.
///
/// # Panics
///
/// Panics if `grad.len() > out.len()` or `out` is empty.
pub fn dct2_transpose_into(grad: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert!(n > 0, "DCT input dimension must be positive");
    assert!(grad.len() <= n, "gradient longer than input dimension");
    for (i, o) in out.iter_mut().enumerate() {
        *o = grad
            .iter()
            .enumerate()
            .map(|(k, &g)| {
                let s = if k == 0 { (1.0 / n as f64).sqrt() } else { (2.0 / n as f64).sqrt() };
                s * g
                    * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64 / (2 * n) as f64).cos()
            })
            .sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let x = vec![2.0; 8];
        let y = dct2(&x, 8);
        assert!((y[0] - 2.0 * 8f64.sqrt()).abs() < 1e-12);
        for &v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn orthonormal_full_transform_preserves_energy() {
        let x: Vec<f64> = (0..16).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let y = dct2(&x, 16);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn transpose_is_adjoint() {
        let n = 12;
        let k = 5;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let g: Vec<f64> = (0..k).map(|i| (i as f64 * 0.91).cos()).collect();
        let lhs: f64 = dct2(&x, k).iter().zip(&g).map(|(a, b)| a * b).sum();
        let rhs: f64 = dct2_transpose(&g, n).iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn truncation_prefix_property() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let full = dct2(&x, 10);
        let trunc = dct2(&x, 4);
        assert_eq!(&full[..4], trunc.as_slice());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_input_panics() {
        dct2(&[], 0);
    }
}
