//! Differentiable MFCC extraction.
//!
//! The forward pass implements the classic pipeline of the paper's Figure 2:
//! pre-emphasis → framing → windowing → |FFT|² → mel filterbank → log →
//! DCT-II. [`MfccExtractor::extract_with_cache`] additionally retains the
//! per-frame spectra and mel energies so that [`MfccExtractor::backward`]
//! can propagate a loss gradient from the MFCC matrix back to the raw
//! samples — the "MFCC reconstruction layer" that makes the white-box
//! Carlini & Wagner attack possible.

use crate::complex::Complex;
use crate::dct::{dct2, dct2_transpose};
use crate::fft::{fft, rfft};
use crate::frame::{frame_count, frames, overlap_add_adjoint};
use crate::mel::MelFilterbank;
use crate::window::Window;

/// Configuration of an MFCC front end.
///
/// Different ASR profiles in `mvp-asr` use different configurations — frame
/// geometry, mel resolution and cepstral order — which is one of the
/// diversity axes that makes audio AEs non-transferable across ASRs.
#[derive(Debug, Clone, PartialEq)]
pub struct MfccConfig {
    /// Sample rate in Hz.
    pub sample_rate: u32,
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop (frame advance) in samples.
    pub hop: usize,
    /// FFT size (power of two, `>= frame_len`).
    pub n_fft: usize,
    /// Number of mel filters.
    pub n_mels: usize,
    /// Number of cepstral coefficients kept (`<= n_mels`).
    pub n_cepstra: usize,
    /// Analysis window.
    pub window: Window,
    /// Lowest filterbank frequency in Hz.
    pub f_min: f64,
    /// Highest filterbank frequency in Hz (`<= sample_rate / 2`).
    pub f_max: f64,
    /// Pre-emphasis coefficient (`0` disables).
    pub pre_emphasis: f64,
    /// Floor added to mel energies before the logarithm.
    pub log_floor: f64,
}

impl Default for MfccConfig {
    /// 16 kHz, 25 ms frames, 10 ms hop, 512-point FFT, 26 mels, 13 cepstra.
    fn default() -> Self {
        MfccConfig {
            sample_rate: 16_000,
            frame_len: 400,
            hop: 160,
            n_fft: 512,
            n_mels: 26,
            n_cepstra: 13,
            window: Window::Hann,
            f_min: 0.0,
            f_max: 8_000.0,
            pre_emphasis: 0.97,
            log_floor: 1e-10,
        }
    }
}

impl MfccConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any invalid combination.
    pub fn validate(&self) {
        assert!(self.frame_len > 0 && self.hop > 0, "frame geometry must be positive");
        assert!(self.n_fft.is_power_of_two(), "n_fft {} must be a power of two", self.n_fft);
        assert!(
            self.n_fft >= self.frame_len,
            "n_fft {} smaller than frame_len {}",
            self.n_fft,
            self.frame_len
        );
        assert!(self.n_cepstra > 0 && self.n_cepstra <= self.n_mels, "n_cepstra out of range");
        assert!(self.log_floor > 0.0, "log floor must be positive");
        assert!(
            self.f_max <= self.sample_rate as f64 / 2.0 + 1e-9,
            "f_max beyond Nyquist"
        );
    }
}

/// A dense `n_frames × dim` feature matrix in row-major order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    n_frames: usize,
    dim: usize,
}

impl FeatureMatrix {
    /// Builds a matrix from rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>, dim: usize) -> FeatureMatrix {
        let n_frames = rows.len();
        let mut data = Vec::with_capacity(n_frames * dim);
        for r in rows {
            assert_eq!(r.len(), dim, "ragged feature rows");
            data.extend(r);
        }
        FeatureMatrix { data, n_frames, dim }
    }

    /// Number of frames (rows).
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Feature dimension (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th frame's features.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_frames`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim.max(1)).take(self.n_frames)
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Per-frame intermediates retained for the backward pass.
#[derive(Debug, Clone)]
pub struct MfccCache {
    /// Full complex spectrum per frame (length `n_fft`).
    spectra: Vec<Vec<Complex>>,
    /// Mel energies per frame (pre-log).
    mels: Vec<Vec<f64>>,
    /// Original signal length in samples.
    n_samples: usize,
}

/// The MFCC front end.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    cfg: MfccConfig,
    window: Vec<f64>,
    filterbank: MelFilterbank,
}

impl MfccExtractor {
    /// Builds an extractor for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`MfccConfig::validate`]).
    pub fn new(cfg: MfccConfig) -> MfccExtractor {
        cfg.validate();
        let window = cfg.window.coefficients(cfg.frame_len);
        let filterbank = MelFilterbank::new(
            cfg.n_mels,
            cfg.n_fft,
            cfg.sample_rate as f64,
            cfg.f_min,
            cfg.f_max,
        );
        MfccExtractor { cfg, window, filterbank }
    }

    /// The configuration this extractor was built with.
    pub fn config(&self) -> &MfccConfig {
        &self.cfg
    }

    /// Number of frames this extractor produces for `n_samples` samples.
    pub fn n_frames_for(&self, n_samples: usize) -> usize {
        frame_count(n_samples, self.cfg.frame_len, self.cfg.hop)
    }

    fn pre_emphasize(&self, samples: &[f64]) -> Vec<f64> {
        let a = self.cfg.pre_emphasis;
        if a == 0.0 {
            return samples.to_vec();
        }
        let mut out = Vec::with_capacity(samples.len());
        let mut prev = 0.0;
        for &s in samples {
            out.push(s - a * prev);
            prev = s;
        }
        out
    }

    /// Extracts the MFCC matrix for `samples`.
    pub fn extract(&self, samples: &[f64]) -> FeatureMatrix {
        self.extract_with_cache(samples).0
    }

    /// Extracts MFCCs and the intermediates needed by [`backward`].
    ///
    /// [`backward`]: MfccExtractor::backward
    pub fn extract_with_cache(&self, samples: &[f64]) -> (FeatureMatrix, MfccCache) {
        let cfg = &self.cfg;
        let emphasized = self.pre_emphasize(samples);
        let frames = frames(&emphasized, cfg.frame_len, cfg.hop);
        let n_bins = cfg.n_fft / 2 + 1;
        let mut rows = Vec::with_capacity(frames.len());
        let mut spectra = Vec::with_capacity(frames.len());
        let mut mels = Vec::with_capacity(frames.len());
        for frame in &frames {
            let windowed: Vec<f64> = frame.iter().zip(&self.window).map(|(s, w)| s * w).collect();
            let spec = rfft(&windowed, cfg.n_fft);
            let power: Vec<f64> = spec[..n_bins].iter().map(|z| z.norm_sq()).collect();
            let mel = self.filterbank.apply(&power);
            let logmel: Vec<f64> = mel.iter().map(|&m| (m + cfg.log_floor).ln()).collect();
            rows.push(dct2(&logmel, cfg.n_cepstra));
            spectra.push(spec);
            mels.push(mel);
        }
        (
            FeatureMatrix::from_rows(rows, cfg.n_cepstra),
            MfccCache { spectra, mels, n_samples: samples.len() },
        )
    }

    /// Backpropagates a gradient over the MFCC matrix to a gradient over
    /// the raw samples.
    ///
    /// `d_mfcc` must have the shape produced by
    /// [`extract_with_cache`](Self::extract_with_cache) for the same signal.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `d_mfcc` and `cache`.
    pub fn backward(&self, cache: &MfccCache, d_mfcc: &FeatureMatrix) -> Vec<f64> {
        let cfg = &self.cfg;
        assert_eq!(d_mfcc.n_frames(), cache.spectra.len(), "frame count mismatch");
        assert_eq!(d_mfcc.dim(), cfg.n_cepstra, "cepstral dimension mismatch");
        let n_bins = cfg.n_fft / 2 + 1;
        let mut frame_grads = Vec::with_capacity(cache.spectra.len());
        for (f, spec) in cache.spectra.iter().enumerate() {
            // DCT and log adjoints.
            let d_logmel = dct2_transpose(d_mfcc.row(f), cfg.n_mels);
            let d_mel: Vec<f64> = d_logmel
                .iter()
                .zip(&cache.mels[f])
                .map(|(g, m)| g / (m + cfg.log_floor))
                .collect();
            let d_power = self.filterbank.apply_transpose(&d_mel);
            // |X_k|² adjoint via one forward FFT:
            // dL/dx_t = 2 Re( Σ_k g_k conj(X_k) e^{-2πi kt/n} ), so build
            // Z_k = g_k conj(X_k) on the one-sided bins and DFT it.
            let mut z = vec![Complex::ZERO; cfg.n_fft];
            for k in 0..n_bins {
                z[k] = spec[k].conj().scale(d_power[k]);
            }
            fft(&mut z);
            let mut d_frame = vec![0.0; cfg.frame_len];
            for (t, d) in d_frame.iter_mut().enumerate() {
                *d = 2.0 * z[t].re * self.window[t];
            }
            frame_grads.push(d_frame);
        }
        let d_emph =
            overlap_add_adjoint(&frame_grads, cfg.frame_len, cfg.hop, cache.n_samples);
        // Pre-emphasis adjoint: y_t = x_t - a x_{t-1}.
        let a = cfg.pre_emphasis;
        if a == 0.0 {
            return d_emph;
        }
        let n = d_emph.len();
        let mut d_x = vec![0.0; n];
        for t in 0..n {
            d_x[t] = d_emph[t] - if t + 1 < n { a * d_emph[t + 1] } else { 0.0 };
        }
        d_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MfccConfig {
        MfccConfig {
            sample_rate: 8_000,
            frame_len: 64,
            hop: 32,
            n_fft: 64,
            n_mels: 8,
            n_cepstra: 5,
            window: Window::Hann,
            f_min: 50.0,
            f_max: 4_000.0,
            pre_emphasis: 0.97,
            log_floor: 1e-8,
        }
    }

    fn pseudo_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                0.4 * (2.0 * std::f64::consts::PI * 440.0 * i as f64 / 8000.0).sin()
                    + 0.2 * (2.0 * std::f64::consts::PI * 1330.0 * i as f64 / 8000.0).sin()
                    + 0.05 * (((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
            })
            .collect()
    }

    #[test]
    fn shapes_match_config() {
        let ex = MfccExtractor::new(small_cfg());
        let sig = pseudo_signal(200);
        let feats = ex.extract(&sig);
        assert_eq!(feats.dim(), 5);
        assert_eq!(feats.n_frames(), ex.n_frames_for(200));
        assert!(feats.n_frames() >= 5);
    }

    #[test]
    fn empty_signal_empty_features() {
        let ex = MfccExtractor::new(small_cfg());
        let feats = ex.extract(&[]);
        assert_eq!(feats.n_frames(), 0);
    }

    #[test]
    fn louder_tone_raises_cepstral_energy() {
        let ex = MfccExtractor::new(small_cfg());
        let quiet: Vec<f64> = pseudo_signal(256).iter().map(|s| s * 0.01).collect();
        let loud = pseudo_signal(256);
        let fq = ex.extract(&quiet);
        let fl = ex.extract(&loud);
        // c0 tracks overall log energy.
        assert!(fl.row(2)[0] > fq.row(2)[0]);
    }

    #[test]
    fn distinct_tones_produce_distinct_features() {
        let ex = MfccExtractor::new(small_cfg());
        let tone = |hz: f64| -> Vec<f64> {
            (0..256)
                .map(|i| (2.0 * std::f64::consts::PI * hz * i as f64 / 8000.0).sin())
                .collect()
        };
        let f1 = ex.extract(&tone(300.0));
        let f2 = ex.extract(&tone(2500.0));
        let d: f64 = f1
            .row(2)
            .iter()
            .zip(f2.row(2))
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(d > 1.0, "features too close: {d}");
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let ex = MfccExtractor::new(small_cfg());
        let sig = pseudo_signal(180);
        // Loss = Σ c_ij mfcc_ij with fixed pseudo-random weights.
        let weight = |i: usize, j: usize| ((i * 31 + j * 17) % 7) as f64 / 3.0 - 1.0;
        let loss = |s: &[f64]| -> f64 {
            let f = ex.extract(s);
            let mut acc = 0.0;
            for i in 0..f.n_frames() {
                for (j, &v) in f.row(i).iter().enumerate() {
                    acc += weight(i, j) * v;
                }
            }
            acc
        };
        let (feats, cache) = ex.extract_with_cache(&sig);
        let d_rows: Vec<Vec<f64>> = (0..feats.n_frames())
            .map(|i| (0..feats.dim()).map(|j| weight(i, j)).collect())
            .collect();
        let d_mfcc = FeatureMatrix::from_rows(d_rows, feats.dim());
        let grad = ex.backward(&cache, &d_mfcc);
        assert_eq!(grad.len(), sig.len());

        let eps = 1e-6;
        for &t in &[0usize, 3, 31, 32, 64, 90, 120, 150, 179] {
            let mut hi = sig.clone();
            hi[t] += eps;
            let mut lo = sig.clone();
            lo[t] -= eps;
            let fd = (loss(&hi) - loss(&lo)) / (2.0 * eps);
            let rel = (grad[t] - fd).abs() / fd.abs().max(1e-6);
            assert!(rel < 1e-4, "sample {t}: analytic {} vs fd {fd}", grad[t]);
        }
    }

    #[test]
    fn gradient_without_pre_emphasis() {
        let mut cfg = small_cfg();
        cfg.pre_emphasis = 0.0;
        let ex = MfccExtractor::new(cfg);
        let sig = pseudo_signal(128);
        let (feats, cache) = ex.extract_with_cache(&sig);
        let ones = FeatureMatrix::from_rows(
            vec![vec![1.0; feats.dim()]; feats.n_frames()],
            feats.dim(),
        );
        let grad = ex.backward(&cache, &ones);
        let loss = |s: &[f64]| ex.extract(s).as_slice().iter().sum::<f64>();
        let eps = 1e-6;
        for &t in &[1usize, 40, 100] {
            let mut hi = sig.clone();
            hi[t] += eps;
            let mut lo = sig.clone();
            lo[t] -= eps;
            let fd = (loss(&hi) - loss(&lo)) / (2.0 * eps);
            assert!((grad[t] - fd).abs() / fd.abs().max(1e-6) < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_config_rejected() {
        let mut cfg = small_cfg();
        cfg.n_fft = 100;
        MfccExtractor::new(cfg);
    }

    #[test]
    fn feature_matrix_rows_iterator() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.row(1)[1], 4.0);
    }
}
