//! Differentiable MFCC extraction.
//!
//! The forward pass implements the classic pipeline of the paper's Figure 2:
//! pre-emphasis → framing → windowing → |FFT|² → mel filterbank → log →
//! DCT-II. [`MfccExtractor::extract_with_cache`] additionally retains the
//! per-frame spectra and mel energies so that [`MfccExtractor::backward`]
//! can propagate a loss gradient from the MFCC matrix back to the raw
//! samples — the "MFCC reconstruction layer" that makes the white-box
//! Carlini & Wagner attack possible.
//!
//! The steady-state entry point is [`MfccExtractor::extract_into`], which
//! threads an [`MfccScratch`] plan through the pipeline so repeated
//! extraction (batch serving, attack inner loops) performs no per-call
//! allocation once the buffers have reached their working size.

use crate::complex::Complex;
use crate::dct::{dct2_into, dct2_transpose_into};
use crate::fft::fft;
use crate::frame::{frame_count, overlap_add_adjoint};
use crate::mat::Mat;
use crate::mel::MelFilterbank;
use crate::window::Window;

/// A dense `n_frames × dim` feature matrix — an alias of [`Mat`], kept for
/// continuity with the original feature-extraction API.
pub use crate::mat::Mat as FeatureMatrix;

/// Configuration of an MFCC front end.
///
/// Different ASR profiles in `mvp-asr` use different configurations — frame
/// geometry, mel resolution and cepstral order — which is one of the
/// diversity axes that makes audio AEs non-transferable across ASRs.
#[derive(Debug, Clone, PartialEq)]
pub struct MfccConfig {
    /// Sample rate in Hz.
    pub sample_rate: u32,
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop (frame advance) in samples.
    pub hop: usize,
    /// FFT size (power of two, `>= frame_len`).
    pub n_fft: usize,
    /// Number of mel filters.
    pub n_mels: usize,
    /// Number of cepstral coefficients kept (`<= n_mels`).
    pub n_cepstra: usize,
    /// Analysis window.
    pub window: Window,
    /// Lowest filterbank frequency in Hz.
    pub f_min: f64,
    /// Highest filterbank frequency in Hz (`<= sample_rate / 2`).
    pub f_max: f64,
    /// Pre-emphasis coefficient (`0` disables).
    pub pre_emphasis: f64,
    /// Floor added to mel energies before the logarithm.
    pub log_floor: f64,
}

impl Default for MfccConfig {
    /// 16 kHz, 25 ms frames, 10 ms hop, 512-point FFT, 26 mels, 13 cepstra.
    fn default() -> Self {
        MfccConfig {
            sample_rate: 16_000,
            frame_len: 400,
            hop: 160,
            n_fft: 512,
            n_mels: 26,
            n_cepstra: 13,
            window: Window::Hann,
            f_min: 0.0,
            f_max: 8_000.0,
            pre_emphasis: 0.97,
            log_floor: 1e-10,
        }
    }
}

impl MfccConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any invalid combination.
    pub fn validate(&self) {
        assert!(self.frame_len > 0 && self.hop > 0, "frame geometry must be positive");
        assert!(self.n_fft.is_power_of_two(), "n_fft {} must be a power of two", self.n_fft);
        assert!(
            self.n_fft >= self.frame_len,
            "n_fft {} smaller than frame_len {}",
            self.n_fft,
            self.frame_len
        );
        assert!(self.n_cepstra > 0 && self.n_cepstra <= self.n_mels, "n_cepstra out of range");
        assert!(self.log_floor > 0.0, "log floor must be positive");
        assert!(self.f_max <= self.sample_rate as f64 / 2.0 + 1e-9, "f_max beyond Nyquist");
    }
}

/// Per-frame intermediates retained for the backward pass.
#[derive(Debug, Clone)]
pub struct MfccCache {
    /// Full complex spectra, one `n_fft`-length segment per frame.
    spectra: Vec<Complex>,
    /// Spectrum stride (`n_fft`).
    n_fft: usize,
    /// Mel energies per frame (pre-log), `n_frames × n_mels`.
    mels: Mat,
    /// Original signal length in samples.
    n_samples: usize,
}

impl MfccCache {
    fn n_frames(&self) -> usize {
        self.mels.n_rows()
    }

    fn spectrum(&self, f: usize) -> &[Complex] {
        &self.spectra[f * self.n_fft..(f + 1) * self.n_fft]
    }
}

/// Reusable workspace for [`MfccExtractor::extract_into`].
///
/// Holds the pre-emphasis buffer, FFT frame buffer and mel/DCT temporaries.
/// Buffers grow to the working size on first use and are reused verbatim
/// afterwards, so repeated extraction allocates nothing in steady state.
/// A scratch built for one extractor geometry may be reused with another;
/// the buffers simply resize once.
#[derive(Debug, Clone, Default)]
pub struct MfccScratch {
    emphasized: Vec<f64>,
    fft: Vec<Complex>,
    power: Vec<f64>,
    mel: Vec<f64>,
    logmel: Vec<f64>,
}

/// The MFCC front end.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    cfg: MfccConfig,
    window: Vec<f64>,
    filterbank: MelFilterbank,
}

impl MfccExtractor {
    /// Builds an extractor for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`MfccConfig::validate`]).
    pub fn new(cfg: MfccConfig) -> MfccExtractor {
        cfg.validate();
        let window = cfg.window.coefficients(cfg.frame_len);
        let filterbank =
            MelFilterbank::new(cfg.n_mels, cfg.n_fft, cfg.sample_rate as f64, cfg.f_min, cfg.f_max);
        MfccExtractor { cfg, window, filterbank }
    }

    /// The configuration this extractor was built with.
    pub fn config(&self) -> &MfccConfig {
        &self.cfg
    }

    /// Number of frames this extractor produces for `n_samples` samples.
    pub fn n_frames_for(&self, n_samples: usize) -> usize {
        frame_count(n_samples, self.cfg.frame_len, self.cfg.hop)
    }

    fn pre_emphasize_into(&self, samples: &[f64], out: &mut Vec<f64>) {
        let a = self.cfg.pre_emphasis;
        out.clear();
        out.reserve(samples.len());
        if a == 0.0 {
            out.extend_from_slice(samples);
            return;
        }
        let mut prev = 0.0;
        for &s in samples {
            out.push(s - a * prev);
            prev = s;
        }
    }

    /// Extracts the MFCC matrix for `samples`.
    pub fn extract(&self, samples: &[f64]) -> FeatureMatrix {
        let mut scratch = MfccScratch::default();
        let mut out = FeatureMatrix::default();
        self.extract_into(samples, &mut scratch, &mut out);
        out
    }

    /// Extracts MFCCs into `out`, reusing the buffers in `scratch`.
    ///
    /// `out` is resized to `n_frames × n_cepstra`; neither it nor `scratch`
    /// allocates once both have reached their steady-state size.
    pub fn extract_into(
        &self,
        samples: &[f64],
        scratch: &mut MfccScratch,
        out: &mut FeatureMatrix,
    ) {
        self.forward(samples, scratch, out, None);
    }

    /// Extracts MFCCs and the intermediates needed by [`backward`].
    ///
    /// [`backward`]: MfccExtractor::backward
    pub fn extract_with_cache(&self, samples: &[f64]) -> (FeatureMatrix, MfccCache) {
        let mut scratch = MfccScratch::default();
        let mut out = FeatureMatrix::default();
        let mut cache = MfccCache {
            spectra: Vec::new(),
            n_fft: self.cfg.n_fft,
            mels: Mat::default(),
            n_samples: samples.len(),
        };
        self.forward(samples, &mut scratch, &mut out, Some(&mut cache));
        (out, cache)
    }

    /// Shared forward pass; fills `cache` when the caller needs gradients.
    fn forward(
        &self,
        samples: &[f64],
        scratch: &mut MfccScratch,
        out: &mut FeatureMatrix,
        mut cache: Option<&mut MfccCache>,
    ) {
        let cfg = &self.cfg;
        let n_frames = self.n_frames_for(samples.len());
        let n_bins = cfg.n_fft / 2 + 1;
        self.pre_emphasize_into(samples, &mut scratch.emphasized);
        out.reset(n_frames, cfg.n_cepstra);
        scratch.fft.resize(cfg.n_fft, Complex::ZERO);
        scratch.power.resize(n_bins, 0.0);
        scratch.mel.resize(cfg.n_mels, 0.0);
        scratch.logmel.resize(cfg.n_mels, 0.0);
        if let Some(c) = cache.as_deref_mut() {
            c.n_fft = cfg.n_fft;
            c.n_samples = samples.len();
            c.spectra.clear();
            c.spectra.reserve(n_frames * cfg.n_fft);
            c.mels.reset(n_frames, cfg.n_mels);
        }
        let emphasized = &scratch.emphasized;
        for f in 0..n_frames {
            // Windowed frame straight into the FFT buffer (zero-padded).
            let start = f * cfg.hop;
            let end = (start + cfg.frame_len).min(emphasized.len());
            for (t, z) in scratch.fft.iter_mut().enumerate() {
                let s = if t < end.saturating_sub(start) { emphasized[start + t] } else { 0.0 };
                let w = if t < cfg.frame_len { self.window[t] } else { 0.0 };
                *z = Complex::new(s * w, 0.0);
            }
            fft(&mut scratch.fft);
            for (p, z) in scratch.power.iter_mut().zip(&scratch.fft) {
                *p = z.norm_sq();
            }
            self.filterbank.apply_into(&scratch.power, &mut scratch.mel);
            for (l, &m) in scratch.logmel.iter_mut().zip(&scratch.mel) {
                *l = (m + cfg.log_floor).ln();
            }
            dct2_into(&scratch.logmel, out.row_mut(f));
            if let Some(c) = cache.as_deref_mut() {
                c.spectra.extend_from_slice(&scratch.fft);
                c.mels.row_mut(f).copy_from_slice(&scratch.mel);
            }
        }
    }

    /// Backpropagates a gradient over the MFCC matrix to a gradient over
    /// the raw samples.
    ///
    /// `d_mfcc` must have the shape produced by
    /// [`extract_with_cache`](Self::extract_with_cache) for the same signal.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `d_mfcc` and `cache`.
    pub fn backward(&self, cache: &MfccCache, d_mfcc: &FeatureMatrix) -> Vec<f64> {
        let cfg = &self.cfg;
        assert_eq!(d_mfcc.n_frames(), cache.n_frames(), "frame count mismatch");
        assert_eq!(d_mfcc.dim(), cfg.n_cepstra, "cepstral dimension mismatch");
        let n_bins = cfg.n_fft / 2 + 1;
        let mut frame_grads = Mat::zeros(cache.n_frames(), cfg.frame_len);
        let mut d_logmel = vec![0.0; cfg.n_mels];
        let mut d_mel = vec![0.0; cfg.n_mels];
        let mut z = vec![Complex::ZERO; cfg.n_fft];
        for f in 0..cache.n_frames() {
            let spec = cache.spectrum(f);
            // DCT and log adjoints.
            dct2_transpose_into(d_mfcc.row(f), &mut d_logmel);
            for ((d, &g), &m) in d_mel.iter_mut().zip(&d_logmel).zip(cache.mels.row(f)) {
                *d = g / (m + cfg.log_floor);
            }
            let d_power = self.filterbank.apply_transpose(&d_mel);
            // |X_k|² adjoint via one forward FFT:
            // dL/dx_t = 2 Re( Σ_k g_k conj(X_k) e^{-2πi kt/n} ), so build
            // Z_k = g_k conj(X_k) on the one-sided bins and DFT it.
            z.fill(Complex::ZERO);
            for k in 0..n_bins {
                z[k] = spec[k].conj().scale(d_power[k]);
            }
            fft(&mut z);
            for (t, d) in frame_grads.row_mut(f).iter_mut().enumerate() {
                *d = 2.0 * z[t].re * self.window[t];
            }
        }
        let d_emph = overlap_add_adjoint(&frame_grads, cfg.hop, cache.n_samples);
        // Pre-emphasis adjoint: y_t = x_t - a x_{t-1}.
        let a = cfg.pre_emphasis;
        if a == 0.0 {
            return d_emph;
        }
        let n = d_emph.len();
        let mut d_x = vec![0.0; n];
        for t in 0..n {
            d_x[t] = d_emph[t] - if t + 1 < n { a * d_emph[t + 1] } else { 0.0 };
        }
        d_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MfccConfig {
        MfccConfig {
            sample_rate: 8_000,
            frame_len: 64,
            hop: 32,
            n_fft: 64,
            n_mels: 8,
            n_cepstra: 5,
            window: Window::Hann,
            f_min: 50.0,
            f_max: 4_000.0,
            pre_emphasis: 0.97,
            log_floor: 1e-8,
        }
    }

    fn pseudo_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                0.4 * (2.0 * std::f64::consts::PI * 440.0 * i as f64 / 8000.0).sin()
                    + 0.2 * (2.0 * std::f64::consts::PI * 1330.0 * i as f64 / 8000.0).sin()
                    + 0.05 * (((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
            })
            .collect()
    }

    #[test]
    fn shapes_match_config() {
        let ex = MfccExtractor::new(small_cfg());
        let sig = pseudo_signal(200);
        let feats = ex.extract(&sig);
        assert_eq!(feats.dim(), 5);
        assert_eq!(feats.n_frames(), ex.n_frames_for(200));
        assert!(feats.n_frames() >= 5);
    }

    #[test]
    fn empty_signal_empty_features() {
        let ex = MfccExtractor::new(small_cfg());
        let feats = ex.extract(&[]);
        assert_eq!(feats.n_frames(), 0);
    }

    #[test]
    fn louder_tone_raises_cepstral_energy() {
        let ex = MfccExtractor::new(small_cfg());
        let quiet: Vec<f64> = pseudo_signal(256).iter().map(|s| s * 0.01).collect();
        let loud = pseudo_signal(256);
        let fq = ex.extract(&quiet);
        let fl = ex.extract(&loud);
        // c0 tracks overall log energy.
        assert!(fl.row(2)[0] > fq.row(2)[0]);
    }

    #[test]
    fn distinct_tones_produce_distinct_features() {
        let ex = MfccExtractor::new(small_cfg());
        let tone = |hz: f64| -> Vec<f64> {
            (0..256).map(|i| (2.0 * std::f64::consts::PI * hz * i as f64 / 8000.0).sin()).collect()
        };
        let f1 = ex.extract(&tone(300.0));
        let f2 = ex.extract(&tone(2500.0));
        let d: f64 =
            f1.row(2).iter().zip(f2.row(2)).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        assert!(d > 1.0, "features too close: {d}");
    }

    #[test]
    fn scratch_reuse_is_exact() {
        // Two different signals through the same scratch, interleaved with
        // the allocating path: results must be bit-identical.
        let ex = MfccExtractor::new(small_cfg());
        let a = pseudo_signal(200);
        let b: Vec<f64> = pseudo_signal(300).iter().map(|s| s * 0.5).collect();
        let mut scratch = MfccScratch::default();
        let mut out = FeatureMatrix::default();
        ex.extract_into(&a, &mut scratch, &mut out);
        assert_eq!(out, ex.extract(&a));
        ex.extract_into(&b, &mut scratch, &mut out);
        assert_eq!(out, ex.extract(&b));
        ex.extract_into(&a, &mut scratch, &mut out);
        assert_eq!(out, ex.extract(&a));
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let ex = MfccExtractor::new(small_cfg());
        let sig = pseudo_signal(180);
        // Loss = Σ c_ij mfcc_ij with fixed pseudo-random weights.
        let weight = |i: usize, j: usize| ((i * 31 + j * 17) % 7) as f64 / 3.0 - 1.0;
        let loss = |s: &[f64]| -> f64 {
            let f = ex.extract(s);
            let mut acc = 0.0;
            for i in 0..f.n_frames() {
                for (j, &v) in f.row(i).iter().enumerate() {
                    acc += weight(i, j) * v;
                }
            }
            acc
        };
        let (feats, cache) = ex.extract_with_cache(&sig);
        let d_rows: Vec<Vec<f64>> = (0..feats.n_frames())
            .map(|i| (0..feats.dim()).map(|j| weight(i, j)).collect())
            .collect();
        let d_mfcc = FeatureMatrix::from_rows(d_rows, feats.dim());
        let grad = ex.backward(&cache, &d_mfcc);
        assert_eq!(grad.len(), sig.len());

        let eps = 1e-6;
        for &t in &[0usize, 3, 31, 32, 64, 90, 120, 150, 179] {
            let mut hi = sig.clone();
            hi[t] += eps;
            let mut lo = sig.clone();
            lo[t] -= eps;
            let fd = (loss(&hi) - loss(&lo)) / (2.0 * eps);
            let rel = (grad[t] - fd).abs() / fd.abs().max(1e-6);
            assert!(rel < 1e-4, "sample {t}: analytic {} vs fd {fd}", grad[t]);
        }
    }

    #[test]
    fn gradient_without_pre_emphasis() {
        let mut cfg = small_cfg();
        cfg.pre_emphasis = 0.0;
        let ex = MfccExtractor::new(cfg);
        let sig = pseudo_signal(128);
        let (feats, cache) = ex.extract_with_cache(&sig);
        let ones =
            FeatureMatrix::from_rows(vec![vec![1.0; feats.dim()]; feats.n_frames()], feats.dim());
        let grad = ex.backward(&cache, &ones);
        let loss = |s: &[f64]| ex.extract(s).as_slice().iter().sum::<f64>();
        let eps = 1e-6;
        for &t in &[1usize, 40, 100] {
            let mut hi = sig.clone();
            hi[t] += eps;
            let mut lo = sig.clone();
            lo[t] -= eps;
            let fd = (loss(&hi) - loss(&lo)) / (2.0 * eps);
            assert!((grad[t] - fd).abs() / fd.abs().max(1e-6) < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_config_rejected() {
        let mut cfg = small_cfg();
        cfg.n_fft = 100;
        MfccExtractor::new(cfg);
    }

    #[test]
    fn feature_matrix_rows_iterator() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.row(1)[1], 4.0);
    }
}
