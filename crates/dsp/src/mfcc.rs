//! Differentiable MFCC extraction.
//!
//! The forward pass implements the classic pipeline of the paper's Figure 2:
//! pre-emphasis → framing → windowing → |FFT|² → mel filterbank → log →
//! DCT-II. [`MfccExtractor::extract_with_cache`] additionally retains the
//! per-frame spectra and mel energies so that [`MfccExtractor::backward`]
//! can propagate a loss gradient from the MFCC matrix back to the raw
//! samples — the "MFCC reconstruction layer" that makes the white-box
//! Carlini & Wagner attack possible.
//!
//! The steady-state entry point is [`MfccExtractor::extract_into`], which
//! threads an [`MfccScratch`] plan through the pipeline so repeated
//! extraction (batch serving, attack inner loops) performs no per-call
//! allocation once the buffers have reached their working size.
//!
//! [`StreamingMfcc`] is the incremental face of the same pipeline: it
//! accepts arbitrary sample chunks, carries the pre-emphasis state and the
//! overlap ring across chunk boundaries, and emits each MFCC row the moment
//! its analysis window is complete. The one-shot serial path is literally
//! "one big chunk + flush" through this state machine, so chunked and batch
//! extraction are byte-identical by construction.

use crate::complex::Complex;
use crate::frame::{frame_count, overlap_add_adjoint};
use crate::kernel::{self, DctPlan, RfftPlan, RfftScratch};
use crate::mat::Mat;
use crate::mel::MelFilterbank;
use crate::window::Window;

/// A dense `n_frames × dim` feature matrix — an alias of [`Mat`], kept for
/// continuity with the original feature-extraction API.
pub use crate::mat::Mat as FeatureMatrix;

/// Configuration of an MFCC front end.
///
/// Different ASR profiles in `mvp-asr` use different configurations — frame
/// geometry, mel resolution and cepstral order — which is one of the
/// diversity axes that makes audio AEs non-transferable across ASRs.
#[derive(Debug, Clone, PartialEq)]
pub struct MfccConfig {
    /// Sample rate in Hz.
    pub sample_rate: u32,
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop (frame advance) in samples.
    pub hop: usize,
    /// FFT size (power of two, `>= frame_len`).
    pub n_fft: usize,
    /// Number of mel filters.
    pub n_mels: usize,
    /// Number of cepstral coefficients kept (`<= n_mels`).
    pub n_cepstra: usize,
    /// Analysis window.
    pub window: Window,
    /// Lowest filterbank frequency in Hz.
    pub f_min: f64,
    /// Highest filterbank frequency in Hz (`<= sample_rate / 2`).
    pub f_max: f64,
    /// Pre-emphasis coefficient (`0` disables).
    pub pre_emphasis: f64,
    /// Floor added to mel energies before the logarithm.
    pub log_floor: f64,
}

impl Default for MfccConfig {
    /// 16 kHz, 25 ms frames, 10 ms hop, 512-point FFT, 26 mels, 13 cepstra.
    fn default() -> Self {
        MfccConfig {
            sample_rate: 16_000,
            frame_len: 400,
            hop: 160,
            n_fft: 512,
            n_mels: 26,
            n_cepstra: 13,
            window: Window::Hann,
            f_min: 0.0,
            f_max: 8_000.0,
            pre_emphasis: 0.97,
            log_floor: 1e-10,
        }
    }
}

impl MfccConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any invalid combination.
    pub fn validate(&self) {
        assert!(self.frame_len > 0 && self.hop > 0, "frame geometry must be positive");
        assert!(self.n_fft.is_power_of_two(), "n_fft {} must be a power of two", self.n_fft);
        assert!(
            self.n_fft >= self.frame_len,
            "n_fft {} smaller than frame_len {}",
            self.n_fft,
            self.frame_len
        );
        assert!(self.n_cepstra > 0 && self.n_cepstra <= self.n_mels, "n_cepstra out of range");
        assert!(self.log_floor > 0.0, "log floor must be positive");
        assert!(self.f_max <= self.sample_rate as f64 / 2.0 + 1e-9, "f_max beyond Nyquist");
    }
}

/// Per-frame intermediates retained for the backward pass.
#[derive(Debug, Clone)]
pub struct MfccCache {
    /// One-sided complex spectra, one `n_fft/2 + 1`-length segment per
    /// frame (the real-input FFT never materialises the mirrored half).
    spectra: Vec<Complex>,
    /// FFT size the spectra were produced with.
    n_fft: usize,
    /// Mel energies per frame (pre-log), `n_frames × n_mels`.
    mels: Mat,
    /// Original signal length in samples.
    n_samples: usize,
}

impl MfccCache {
    fn n_frames(&self) -> usize {
        self.mels.n_rows()
    }

    fn n_bins(&self) -> usize {
        self.n_fft / 2 + 1
    }

    fn spectrum(&self, f: usize) -> &[Complex] {
        let n_bins = self.n_bins();
        &self.spectra[f * n_bins..(f + 1) * n_bins]
    }
}

/// Reusable workspace for [`MfccExtractor::extract_into`].
///
/// Holds the pre-emphasis buffer, FFT frame buffer and mel/DCT temporaries.
/// Buffers grow to the working size on first use and are reused verbatim
/// afterwards, so repeated extraction allocates nothing in steady state.
/// A scratch built for one extractor geometry may be reused with another;
/// the buffers simply resize once.
#[derive(Debug, Clone, Default)]
pub struct MfccScratch {
    emphasized: Vec<f64>,
    bufs: FrameBufs,
    stream: StreamingMfcc,
}

/// Per-frame working buffers; [`kernel::par_rows`] workers each own one
/// so parallel frame extraction never contends.
#[derive(Debug, Clone, Default)]
struct FrameBufs {
    windowed: Vec<f64>,
    spec: Vec<Complex>,
    power: Vec<f64>,
    mel: Vec<f64>,
    logmel: Vec<f64>,
    rfft: RfftScratch,
}

/// The MFCC front end.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    cfg: MfccConfig,
    window: Vec<f64>,
    filterbank: MelFilterbank,
    plan: RfftPlan,
    dct: DctPlan,
}

impl MfccExtractor {
    /// Builds an extractor for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`MfccConfig::validate`]).
    pub fn new(cfg: MfccConfig) -> MfccExtractor {
        cfg.validate();
        let window = cfg.window.coefficients(cfg.frame_len);
        let filterbank =
            MelFilterbank::new(cfg.n_mels, cfg.n_fft, cfg.sample_rate as f64, cfg.f_min, cfg.f_max);
        let plan = RfftPlan::new(cfg.n_fft);
        let dct = DctPlan::new(cfg.n_mels, cfg.n_cepstra);
        MfccExtractor { cfg, window, filterbank, plan, dct }
    }

    /// The configuration this extractor was built with.
    pub fn config(&self) -> &MfccConfig {
        &self.cfg
    }

    /// Number of frames this extractor produces for `n_samples` samples.
    pub fn n_frames_for(&self, n_samples: usize) -> usize {
        frame_count(n_samples, self.cfg.frame_len, self.cfg.hop)
    }

    fn pre_emphasize_into(&self, samples: &[f64], out: &mut Vec<f64>) {
        let a = self.cfg.pre_emphasis;
        out.clear();
        out.reserve(samples.len());
        if a == 0.0 {
            out.extend_from_slice(samples);
            return;
        }
        let mut prev = 0.0;
        for &s in samples {
            out.push(s - a * prev);
            prev = s;
        }
    }

    /// Extracts the MFCC matrix for `samples`.
    pub fn extract(&self, samples: &[f64]) -> FeatureMatrix {
        let mut scratch = MfccScratch::default();
        let mut out = FeatureMatrix::default();
        self.extract_into(samples, &mut scratch, &mut out);
        out
    }

    /// Extracts MFCCs into `out`, reusing the buffers in `scratch`.
    ///
    /// `out` is resized to `n_frames × n_cepstra`; neither it nor `scratch`
    /// allocates once both have reached their steady-state size.
    pub fn extract_into(
        &self,
        samples: &[f64],
        scratch: &mut MfccScratch,
        out: &mut FeatureMatrix,
    ) {
        self.forward(samples, scratch, out, None);
    }

    /// Extracts MFCCs and the intermediates needed by [`backward`].
    ///
    /// [`backward`]: MfccExtractor::backward
    pub fn extract_with_cache(&self, samples: &[f64]) -> (FeatureMatrix, MfccCache) {
        let mut scratch = MfccScratch::default();
        let mut out = FeatureMatrix::default();
        let mut cache = MfccCache {
            spectra: Vec::new(),
            n_fft: self.cfg.n_fft,
            mels: Mat::default(),
            n_samples: samples.len(),
        };
        self.forward(samples, &mut scratch, &mut out, Some(&mut cache));
        (out, cache)
    }

    /// One frame of the pipeline: window → real FFT → power → mel → log
    /// → DCT. Leaves the frame's one-sided spectrum in `bufs.spec` and
    /// its mel energies in `bufs.mel` for a cache-filling caller.
    fn frame_forward(
        &self,
        emphasized: &[f64],
        f: usize,
        bufs: &mut FrameBufs,
        out_row: &mut [f64],
    ) {
        let cfg = &self.cfg;
        let start = (f * cfg.hop).min(emphasized.len());
        let end = (start + cfg.frame_len).min(emphasized.len());
        self.frame_forward_slice(&emphasized[start..end], bufs, out_row);
    }

    /// [`frame_forward`](Self::frame_forward) on an explicit window slice:
    /// `frame` holds the first `frame.len() <= frame_len` emphasized samples
    /// of the window; the remainder is zero-padded. The streaming path calls
    /// this directly against its carry-over ring.
    fn frame_forward_slice(&self, frame: &[f64], bufs: &mut FrameBufs, out_row: &mut [f64]) {
        let cfg = &self.cfg;
        let n_bins = cfg.n_fft / 2 + 1;
        bufs.windowed.resize(cfg.frame_len, 0.0);
        for (t, w) in bufs.windowed.iter_mut().enumerate() {
            let s = if t < frame.len() { frame[t] } else { 0.0 };
            *w = s * self.window[t];
        }
        bufs.spec.resize(n_bins, Complex::ZERO);
        self.plan.forward(&bufs.windowed, &mut bufs.rfft, &mut bufs.spec);
        bufs.power.resize(n_bins, 0.0);
        for (p, z) in bufs.power.iter_mut().zip(&bufs.spec) {
            *p = z.norm_sq();
        }
        bufs.mel.resize(cfg.n_mels, 0.0);
        self.filterbank.apply_into(&bufs.power, &mut bufs.mel);
        bufs.logmel.resize(cfg.n_mels, 0.0);
        for (l, &m) in bufs.logmel.iter_mut().zip(&bufs.mel) {
            *l = (m + cfg.log_floor).ln();
        }
        self.dct.forward_into(&bufs.logmel, out_row);
    }

    /// Shared forward pass; fills `cache` when the caller needs gradients.
    ///
    /// Frames are independent, so the uncached path fans them out over
    /// [`kernel::par_rows`] workers (each with its own [`FrameBufs`]);
    /// results are bit-identical at any worker count. On one worker the
    /// signal runs through [`StreamingMfcc`] as one big chunk plus a flush —
    /// the same state machine chunked callers drive — so the one-shot and
    /// streaming paths cannot drift apart. The cache-filling loop stays
    /// serial in the caller's scratch with zero steady-state allocation.
    fn forward(
        &self,
        samples: &[f64],
        scratch: &mut MfccScratch,
        out: &mut FeatureMatrix,
        mut cache: Option<&mut MfccCache>,
    ) {
        let cfg = &self.cfg;
        let n_frames = self.n_frames_for(samples.len());
        let n_bins = cfg.n_fft / 2 + 1;
        if let Some(c) = cache.as_deref_mut() {
            self.pre_emphasize_into(samples, &mut scratch.emphasized);
            out.reset(n_frames, cfg.n_cepstra);
            c.n_fft = cfg.n_fft;
            c.n_samples = samples.len();
            c.spectra.clear();
            c.spectra.resize(n_frames * n_bins, Complex::ZERO);
            c.mels.reset(n_frames, cfg.n_mels);
            let bufs = &mut scratch.bufs;
            for f in 0..n_frames {
                self.frame_forward(&scratch.emphasized, f, bufs, out.row_mut(f));
                c.spectra[f * n_bins..(f + 1) * n_bins].copy_from_slice(&bufs.spec);
                c.mels.row_mut(f).copy_from_slice(&bufs.mel);
            }
        } else if kernel::threads() > 1 && n_frames > 1 {
            self.pre_emphasize_into(samples, &mut scratch.emphasized);
            out.reset(n_frames, cfg.n_cepstra);
            let emphasized = &scratch.emphasized;
            kernel::par_rows(
                out.as_mut_slice(),
                cfg.n_cepstra,
                FrameBufs::default,
                |bufs, f, row| {
                    self.frame_forward(emphasized, f, bufs, row);
                },
            );
        } else {
            let stream = &mut scratch.stream;
            stream.reset();
            out.reset(0, cfg.n_cepstra);
            stream.push(self, samples, out);
            stream.finish(self, out);
        }
    }

    /// Backpropagates a gradient over the MFCC matrix to a gradient over
    /// the raw samples.
    ///
    /// `d_mfcc` must have the shape produced by
    /// [`extract_with_cache`](Self::extract_with_cache) for the same signal.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `d_mfcc` and `cache`.
    pub fn backward(&self, cache: &MfccCache, d_mfcc: &FeatureMatrix) -> Vec<f64> {
        let cfg = &self.cfg;
        assert_eq!(d_mfcc.n_frames(), cache.n_frames(), "frame count mismatch");
        assert_eq!(d_mfcc.dim(), cfg.n_cepstra, "cepstral dimension mismatch");
        let n_bins = cfg.n_fft / 2 + 1;
        let mut frame_grads = Mat::zeros(cache.n_frames(), cfg.frame_len);
        let mut d_logmel = vec![0.0; cfg.n_mels];
        let mut d_mel = vec![0.0; cfg.n_mels];
        let mut d_power = vec![0.0; n_bins];
        let mut w_os = vec![Complex::ZERO; n_bins];
        let mut d_frame = vec![0.0; cfg.n_fft];
        let mut rfft_scratch = RfftScratch::default();
        for f in 0..cache.n_frames() {
            let spec = cache.spectrum(f);
            // DCT and log adjoints.
            self.dct.adjoint_into(d_mfcc.row(f), &mut d_logmel);
            for ((d, &g), &m) in d_mel.iter_mut().zip(&d_logmel).zip(cache.mels.row(f)) {
                *d = g / (m + cfg.log_floor);
            }
            self.filterbank.apply_transpose_into(&d_mel, &mut d_power);
            // |X_k|² adjoint via one Hermitian synthesis:
            // dL/dx_t = 2 Re( Σ_{k=0}^{n/2} g_k conj(X_k) e^{-2πi kt/n} ).
            // `hfft` sums the interior bins twice (once mirrored), which
            // supplies exactly the factor 2; the DC and Nyquist bins only
            // appear once, so they are pre-doubled to keep the historical
            // one-sided convention of this adjoint.
            for ((w, &z), &g) in w_os.iter_mut().zip(spec).zip(d_power.iter()) {
                *w = z.conj().scale(g);
            }
            w_os[0] = Complex::new(2.0 * w_os[0].re, 0.0);
            let last = n_bins - 1;
            w_os[last] = Complex::new(2.0 * w_os[last].re, 0.0);
            self.plan.hfft(&w_os, &mut rfft_scratch, &mut d_frame);
            for (d, (&h, &w)) in
                frame_grads.row_mut(f).iter_mut().zip(d_frame.iter().zip(&self.window))
            {
                *d = h * w;
            }
        }
        let d_emph = overlap_add_adjoint(&frame_grads, cfg.hop, cache.n_samples);
        // Pre-emphasis adjoint: y_t = x_t - a x_{t-1}.
        let a = cfg.pre_emphasis;
        if a == 0.0 {
            return d_emph;
        }
        let n = d_emph.len();
        let mut d_x = vec![0.0; n];
        for t in 0..n {
            d_x[t] = d_emph[t] - if t + 1 < n { a * d_emph[t + 1] } else { 0.0 };
        }
        d_x
    }
}

/// Incremental MFCC extraction over arbitrary sample chunks.
///
/// Feed raw samples with [`push`](Self::push) in chunks of any size (down
/// to a single sample); each call appends every MFCC row whose analysis
/// window is complete to the output matrix. [`finish`](Self::finish) emits
/// the trailing zero-padded frames so the row count equals
/// [`MfccExtractor::n_frames_for`] of the total sample count, then resets
/// the state for the next utterance.
///
/// The state carried across chunk boundaries is exactly what framing
/// overlap requires: the pre-emphasis predecessor sample and a ring of
/// emphasized samples not yet consumed by an emitted frame. Output is
/// byte-identical to [`MfccExtractor::extract_into`] for every chunking of
/// the same signal — the one-shot serial path *is* one big `push` plus
/// `finish` through this type.
#[derive(Debug, Clone, Default)]
pub struct StreamingMfcc {
    /// Emphasized samples still needed by future frames; `ring[0]` holds
    /// absolute sample index `ring_start`.
    ring: Vec<f64>,
    ring_start: usize,
    /// Total raw samples pushed so far.
    n_samples: usize,
    /// Pre-emphasis carry: the last raw sample of the previous chunk.
    prev_raw: f64,
    /// Index of the next frame to emit.
    next_frame: usize,
    row: Vec<f64>,
    bufs: FrameBufs,
}

impl StreamingMfcc {
    /// Clears all carried state, ready for a fresh utterance. Buffers keep
    /// their capacity, so a long-lived stream allocates nothing in steady
    /// state.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.ring_start = 0;
        self.n_samples = 0;
        self.prev_raw = 0.0;
        self.next_frame = 0;
    }

    /// Total raw samples pushed since the last reset.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of MFCC rows emitted since the last reset.
    pub fn frames_emitted(&self) -> usize {
        self.next_frame
    }

    /// Feeds `chunk` and appends every newly completed MFCC row to `out`.
    ///
    /// `out` accumulates across calls: start an utterance with
    /// `out.reset(0, n_cepstra)` (or an empty matrix) and rows arrive via
    /// [`Mat::push_row`]. Frame `f` is emitted as soon as
    /// `f·hop + frame_len` samples have been seen.
    pub fn push(&mut self, ex: &MfccExtractor, chunk: &[f64], out: &mut FeatureMatrix) {
        let cfg = &ex.cfg;
        // Streamed pre-emphasis: identical to the batch pass because the
        // predecessor sample is carried across chunk boundaries.
        let a = cfg.pre_emphasis;
        self.ring.reserve(chunk.len());
        if a == 0.0 {
            self.ring.extend_from_slice(chunk);
        } else {
            let mut prev = self.prev_raw;
            for &s in chunk {
                self.ring.push(s - a * prev);
                prev = s;
            }
        }
        if let Some(&last) = chunk.last() {
            self.prev_raw = last;
        }
        self.n_samples += chunk.len();
        self.row.resize(cfg.n_cepstra, 0.0);
        while self.next_frame * cfg.hop + cfg.frame_len <= self.n_samples {
            let rel = self.next_frame * cfg.hop - self.ring_start;
            ex.frame_forward_slice(
                &self.ring[rel..rel + cfg.frame_len],
                &mut self.bufs,
                &mut self.row,
            );
            out.push_row(&self.row);
            self.next_frame += 1;
        }
        // Drop the prefix no future frame can read. The ring never starts
        // past the buffered extent even when hop > frame_len leaves a gap
        // before the next frame's window.
        let consumed = (self.next_frame * cfg.hop).min(self.ring_start + self.ring.len());
        let k = consumed - self.ring_start;
        if k > 0 {
            self.ring.drain(..k);
            self.ring_start = consumed;
        }
    }

    /// Emits the remaining zero-padded partial frames and resets the state
    /// for the next utterance.
    ///
    /// After this call `out` holds exactly
    /// [`n_frames_for`](MfccExtractor::n_frames_for)`(n_samples)` rows in
    /// total, matching the batch extractor's framing of the full signal.
    pub fn finish(&mut self, ex: &MfccExtractor, out: &mut FeatureMatrix) {
        let cfg = &ex.cfg;
        let total = ex.n_frames_for(self.n_samples);
        self.row.resize(cfg.n_cepstra, 0.0);
        while self.next_frame < total {
            // Trailing frames read a short (possibly empty, when hop >
            // frame_len strands a window past the end) slice of the ring.
            let rel = (self.next_frame * cfg.hop - self.ring_start).min(self.ring.len());
            let end = (rel + cfg.frame_len).min(self.ring.len());
            ex.frame_forward_slice(&self.ring[rel..end], &mut self.bufs, &mut self.row);
            out.push_row(&self.row);
            self.next_frame += 1;
        }
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MfccConfig {
        MfccConfig {
            sample_rate: 8_000,
            frame_len: 64,
            hop: 32,
            n_fft: 64,
            n_mels: 8,
            n_cepstra: 5,
            window: Window::Hann,
            f_min: 50.0,
            f_max: 4_000.0,
            pre_emphasis: 0.97,
            log_floor: 1e-8,
        }
    }

    fn pseudo_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                0.4 * (2.0 * std::f64::consts::PI * 440.0 * i as f64 / 8000.0).sin()
                    + 0.2 * (2.0 * std::f64::consts::PI * 1330.0 * i as f64 / 8000.0).sin()
                    + 0.05 * (((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
            })
            .collect()
    }

    #[test]
    fn shapes_match_config() {
        let ex = MfccExtractor::new(small_cfg());
        let sig = pseudo_signal(200);
        let feats = ex.extract(&sig);
        assert_eq!(feats.dim(), 5);
        assert_eq!(feats.n_frames(), ex.n_frames_for(200));
        assert!(feats.n_frames() >= 5);
    }

    #[test]
    fn empty_signal_empty_features() {
        let ex = MfccExtractor::new(small_cfg());
        let feats = ex.extract(&[]);
        assert_eq!(feats.n_frames(), 0);
    }

    #[test]
    fn louder_tone_raises_cepstral_energy() {
        let ex = MfccExtractor::new(small_cfg());
        let quiet: Vec<f64> = pseudo_signal(256).iter().map(|s| s * 0.01).collect();
        let loud = pseudo_signal(256);
        let fq = ex.extract(&quiet);
        let fl = ex.extract(&loud);
        // c0 tracks overall log energy.
        assert!(fl.row(2)[0] > fq.row(2)[0]);
    }

    #[test]
    fn distinct_tones_produce_distinct_features() {
        let ex = MfccExtractor::new(small_cfg());
        let tone = |hz: f64| -> Vec<f64> {
            (0..256).map(|i| (2.0 * std::f64::consts::PI * hz * i as f64 / 8000.0).sin()).collect()
        };
        let f1 = ex.extract(&tone(300.0));
        let f2 = ex.extract(&tone(2500.0));
        let d: f64 =
            f1.row(2).iter().zip(f2.row(2)).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        assert!(d > 1.0, "features too close: {d}");
    }

    #[test]
    fn scratch_reuse_is_exact() {
        // Two different signals through the same scratch, interleaved with
        // the allocating path: results must be bit-identical.
        let ex = MfccExtractor::new(small_cfg());
        let a = pseudo_signal(200);
        let b: Vec<f64> = pseudo_signal(300).iter().map(|s| s * 0.5).collect();
        let mut scratch = MfccScratch::default();
        let mut out = FeatureMatrix::default();
        ex.extract_into(&a, &mut scratch, &mut out);
        assert_eq!(out, ex.extract(&a));
        ex.extract_into(&b, &mut scratch, &mut out);
        assert_eq!(out, ex.extract(&b));
        ex.extract_into(&a, &mut scratch, &mut out);
        assert_eq!(out, ex.extract(&a));
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let ex = MfccExtractor::new(small_cfg());
        let sig = pseudo_signal(180);
        // Loss = Σ c_ij mfcc_ij with fixed pseudo-random weights.
        let weight = |i: usize, j: usize| ((i * 31 + j * 17) % 7) as f64 / 3.0 - 1.0;
        let loss = |s: &[f64]| -> f64 {
            let f = ex.extract(s);
            let mut acc = 0.0;
            for i in 0..f.n_frames() {
                for (j, &v) in f.row(i).iter().enumerate() {
                    acc += weight(i, j) * v;
                }
            }
            acc
        };
        let (feats, cache) = ex.extract_with_cache(&sig);
        let d_rows: Vec<Vec<f64>> = (0..feats.n_frames())
            .map(|i| (0..feats.dim()).map(|j| weight(i, j)).collect())
            .collect();
        let d_mfcc = FeatureMatrix::from_rows(d_rows, feats.dim());
        let grad = ex.backward(&cache, &d_mfcc);
        assert_eq!(grad.len(), sig.len());

        let eps = 1e-6;
        for &t in &[0usize, 3, 31, 32, 64, 90, 120, 150, 179] {
            let mut hi = sig.clone();
            hi[t] += eps;
            let mut lo = sig.clone();
            lo[t] -= eps;
            let fd = (loss(&hi) - loss(&lo)) / (2.0 * eps);
            let rel = (grad[t] - fd).abs() / fd.abs().max(1e-6);
            assert!(rel < 1e-4, "sample {t}: analytic {} vs fd {fd}", grad[t]);
        }
    }

    #[test]
    fn gradient_without_pre_emphasis() {
        let mut cfg = small_cfg();
        cfg.pre_emphasis = 0.0;
        let ex = MfccExtractor::new(cfg);
        let sig = pseudo_signal(128);
        let (feats, cache) = ex.extract_with_cache(&sig);
        let ones =
            FeatureMatrix::from_rows(vec![vec![1.0; feats.dim()]; feats.n_frames()], feats.dim());
        let grad = ex.backward(&cache, &ones);
        let loss = |s: &[f64]| ex.extract(s).as_slice().iter().sum::<f64>();
        let eps = 1e-6;
        for &t in &[1usize, 40, 100] {
            let mut hi = sig.clone();
            hi[t] += eps;
            let mut lo = sig.clone();
            lo[t] -= eps;
            let fd = (loss(&hi) - loss(&lo)) / (2.0 * eps);
            assert!((grad[t] - fd).abs() / fd.abs().max(1e-6) < 1e-4);
        }
    }

    /// Splits `sig` at the given chunk lengths and runs it through a
    /// [`StreamingMfcc`], returning the accumulated matrix.
    fn stream_in_chunks(ex: &MfccExtractor, sig: &[f64], chunks: &[usize]) -> FeatureMatrix {
        let mut st = StreamingMfcc::default();
        let mut out = FeatureMatrix::default();
        out.reset(0, ex.config().n_cepstra);
        let mut pos = 0;
        for &len in chunks {
            let end = (pos + len).min(sig.len());
            st.push(ex, &sig[pos..end], &mut out);
            pos = end;
        }
        st.push(ex, &sig[pos..], &mut out);
        st.finish(ex, &mut out);
        out
    }

    #[test]
    fn streaming_matches_one_shot_bitwise() {
        let ex = MfccExtractor::new(small_cfg());
        let sig = pseudo_signal(317);
        let reference = ex.extract(&sig);
        // One big chunk, tiny fixed chunks, single samples, and a lopsided
        // split: every chunking must reproduce the batch result exactly.
        for chunks in [vec![sig.len()], vec![7; 64], vec![1; sig.len()], vec![300, 1, 16]] {
            assert_eq!(stream_in_chunks(&ex, &sig, &chunks), reference);
        }
    }

    #[test]
    fn streaming_matches_one_shot_on_random_boundaries() {
        let ex = MfccExtractor::new(small_cfg());
        for (trial, &n) in [0usize, 1, 31, 64, 65, 200, 411].iter().enumerate() {
            let sig = pseudo_signal(n);
            let reference = ex.extract(&sig);
            // Deterministic xorshift chunk lengths in 1..=47, fresh per trial.
            let mut seed = 0x9E37_79B9u64.wrapping_add(trial as u64 * 0x517C_C1B7);
            let mut chunks = Vec::new();
            let mut covered = 0;
            while covered < n {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let len = 1 + (seed % 47) as usize;
                chunks.push(len);
                covered += len;
            }
            assert_eq!(stream_in_chunks(&ex, &sig, &chunks), reference, "n={n} trial={trial}");
        }
    }

    #[test]
    fn streaming_handles_hop_larger_than_frame() {
        // hop > frame_len strands analysis windows past the signal end;
        // the stream must still agree with the batch framing.
        let mut cfg = small_cfg();
        cfg.frame_len = 24;
        cfg.hop = 40;
        cfg.n_fft = 32;
        let ex = MfccExtractor::new(cfg);
        for n in [0usize, 3, 24, 25, 63, 64, 65, 200] {
            let sig = pseudo_signal(n);
            assert_eq!(stream_in_chunks(&ex, &sig, &[5; 50]), ex.extract(&sig), "n={n}");
        }
    }

    #[test]
    fn stream_reuse_across_utterances_is_exact() {
        // finish() must clear the pre-emphasis and ring carry so a reused
        // stream starts the next utterance from silence, like the batch path.
        let ex = MfccExtractor::new(small_cfg());
        let a = pseudo_signal(200);
        let b: Vec<f64> = pseudo_signal(150).iter().map(|s| s * -0.3).collect();
        let mut st = StreamingMfcc::default();
        let mut out = FeatureMatrix::default();
        for sig in [&a[..], &b[..], &a[..]] {
            out.reset(0, ex.config().n_cepstra);
            for chunk in sig.chunks(13) {
                st.push(&ex, chunk, &mut out);
            }
            st.finish(&ex, &mut out);
            assert_eq!(out, ex.extract(sig));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_config_rejected() {
        let mut cfg = small_cfg();
        cfg.n_fft = 100;
        MfccExtractor::new(cfg);
    }

    #[test]
    fn feature_matrix_rows_iterator() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.row(1)[1], 4.0);
    }
}
