//! Iterative radix-2 Cooley–Tukey FFT.

use crate::complex::Complex;

/// In-place forward FFT.
///
/// Computes `X_k = Σ_t x_t e^{-2πi kt / n}` (no normalisation).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// In-place inverse FFT, normalised by `1/n` so that `ifft(fft(x)) == x`.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(1.0 / n);
    }
}

/// Raw in-place radix-2 transform with explicit kernel sign and no
/// normalisation; `sign = -1.0` is the forward DFT, `sign = 1.0` the
/// unnormalised inverse. The kernel plane drives this directly for its
/// half-size real-input transforms.
pub(crate) fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::from(1.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal zero-padded to `n_fft`, returning the full
/// complex spectrum (length `n_fft`).
///
/// # Panics
///
/// Panics if `n_fft` is not a power of two or `signal.len() > n_fft`.
pub fn rfft(signal: &[f64], n_fft: usize) -> Vec<Complex> {
    assert!(signal.len() <= n_fft, "signal length {} exceeds FFT size {n_fft}", signal.len());
    let mut buf = vec![Complex::ZERO; n_fft];
    for (b, &s) in buf.iter_mut().zip(signal) {
        b.re = s;
    }
    fft(&mut buf);
    buf
}

/// Reference `O(n²)` DFT used for verification in tests and benches.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in data.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                acc += x * Complex::from_angle(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex, b: Complex, eps: f64) -> bool {
        (a.re - b.re).abs() < eps && (a.im - b.im).abs() < eps
    }

    #[test]
    fn matches_naive_dft() {
        let data: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        let expected = dft_naive(&data);
        let mut got = data.clone();
        fft(&mut got);
        for (g, e) in got.iter().zip(&expected) {
            assert!(close(*g, *e, 1e-9), "{g:?} vs {e:?}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::from(1.0);
        fft(&mut data);
        for z in &data {
            assert!(close(*z, Complex::from(1.0), 1e-12));
        }
    }

    #[test]
    fn pure_tone_single_bin() {
        let n = 128;
        let k0 = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|t| Complex::from_angle(2.0 * std::f64::consts::PI * (k0 * t) as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-8);
            } else {
                assert!(z.abs() < 1e-8, "leak at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    fn parseval_theorem() {
        let data: Vec<Complex> =
            (0..256).map(|i| Complex::new(((i * 37) % 11) as f64 - 5.0, 0.0)).collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sq()).sum();
        let mut spec = data.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    proptest! {
        #[test]
        fn ifft_inverts_fft(raw in proptest::collection::vec(-1.0f64..1.0, 32)) {
            let data: Vec<Complex> = raw.iter().map(|&r| Complex::from(r)).collect();
            let mut buf = data.clone();
            fft(&mut buf);
            ifft(&mut buf);
            for (a, b) in buf.iter().zip(&data) {
                prop_assert!(close(*a, *b, 1e-10));
            }
        }

        #[test]
        fn linearity(a in proptest::collection::vec(-1.0f64..1.0, 16),
                     b in proptest::collection::vec(-1.0f64..1.0, 16)) {
            let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::from(x)).collect();
            let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::from(x)).collect();
            let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| Complex::from(x + y)).collect();
            fft(&mut fa); fft(&mut fb); fft(&mut fab);
            for i in 0..16 {
                prop_assert!(close(fa[i] + fb[i], fab[i], 1e-9));
            }
        }
    }
}
