//! Delta (differential) feature computation with its adjoint.
//!
//! Classic ASR front ends append first-order regression coefficients
//! ("delta" features) to each cepstral frame:
//!
//! `d_t = Σ_{k=1..K} k · (c_{t+k} − c_{t−k}) / (2 Σ k²)`
//!
//! with edge frames replicated. The operation is linear in the inputs, so
//! the adjoint needed by the white-box attack is exact. Profiles may use
//! deltas as one more diversity axis.

use crate::mfcc::FeatureMatrix;

/// Computes delta features over a window of `k` frames each side and
/// returns a matrix of the same shape.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn delta_features(feats: &FeatureMatrix, k: usize) -> FeatureMatrix {
    assert!(k > 0, "delta window must be positive");
    let n = feats.n_frames();
    let d = feats.dim();
    let denom: f64 = 2.0 * (1..=k).map(|i| (i * i) as f64).sum::<f64>();
    let clamp = |t: isize| -> usize { t.clamp(0, n as isize - 1) as usize };
    let mut out = FeatureMatrix::zeros(n, d);
    for t in 0..n {
        for i in 1..=k {
            let w = i as f64 / denom;
            let hi = clamp(t as isize + i as isize) * d;
            let lo = clamp(t as isize - i as isize) * d;
            let data = feats.as_slice();
            let row = out.row_mut(t);
            for j in 0..d {
                row[j] += w * (data[hi + j] - data[lo + j]);
            }
        }
    }
    out
}

/// Adjoint of [`delta_features`]: maps a gradient over the delta matrix
/// back to a gradient over the static features.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn delta_features_adjoint(d_delta: &FeatureMatrix, k: usize) -> FeatureMatrix {
    assert!(k > 0, "delta window must be positive");
    let n = d_delta.n_frames();
    let d = d_delta.dim();
    let denom: f64 = 2.0 * (1..=k).map(|i| (i * i) as f64).sum::<f64>();
    let mut out = FeatureMatrix::zeros(n, d);
    let clamp = |t: isize| -> usize { t.clamp(0, n as isize - 1) as usize };
    for t in 0..n {
        for i in 1..=k {
            let w = i as f64 / denom;
            let hi = clamp(t as isize + i as isize) * d;
            let lo = clamp(t as isize - i as isize) * d;
            let g = &d_delta.as_slice()[t * d..(t + 1) * d];
            let data = out.as_mut_slice();
            for j in 0..d {
                data[hi + j] += w * g[j];
                data[lo + j] -= w * g[j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: Vec<Vec<f64>>) -> FeatureMatrix {
        let d = rows[0].len();
        FeatureMatrix::from_rows(rows, d)
    }

    #[test]
    fn constant_signal_zero_delta() {
        let m = mat(vec![vec![3.0, -1.0]; 6]);
        let d = delta_features(&m, 2);
        assert!(d.as_slice().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn linear_ramp_constant_delta() {
        // c_t = t: delta = Σ k·2k / (2Σk²) = 1 in the interior.
        let m = mat((0..10).map(|t| vec![t as f64]).collect());
        let d = delta_features(&m, 2);
        for t in 2..8 {
            assert!((d.row(t)[0] - 1.0).abs() < 1e-12, "frame {t}");
        }
    }

    #[test]
    fn shape_preserved() {
        let m = mat(vec![vec![1.0, 2.0, 3.0]; 5]);
        let d = delta_features(&m, 1);
        assert_eq!(d.n_frames(), 5);
        assert_eq!(d.dim(), 3);
    }

    #[test]
    fn adjoint_identity() {
        // <delta(x), g> == <x, delta^T(g)> on a full basis sweep.
        let n = 5;
        let dim = 2;
        let k = 2;
        for t in 0..n {
            for j in 0..dim {
                let mut x = vec![vec![0.0; dim]; n];
                x[t][j] = 1.0;
                let dx = delta_features(&mat(x.clone()), k);
                for gt in 0..n {
                    for gj in 0..dim {
                        let mut g = vec![vec![0.0; dim]; n];
                        g[gt][gj] = 1.0;
                        let adj = delta_features_adjoint(&mat(g), k);
                        let lhs = dx.row(gt)[gj];
                        let rhs = adj.row(t)[j];
                        assert!((lhs - rhs).abs() < 1e-12, "({t},{j}) vs ({gt},{gj})");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        delta_features(&mat(vec![vec![0.0]]), 0);
    }
}
