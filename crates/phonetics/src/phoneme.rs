//! The ARPAbet phoneme inventory with acoustic metadata.
//!
//! Every phoneme carries the spectral description the formant synthesizer in
//! `mvp-audio` renders and the simulated acoustic models in `mvp-asr` learn
//! to recognise. The formant values for vowels follow the classic
//! Peterson–Barney measurements; consonants use representative loci / noise
//! bands. The values only need to be mutually discriminable — they are a
//! simulation substrate, not a naturalness target (see DESIGN.md §2).

/// Broad articulatory class of a phoneme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhonemeClass {
    /// Monophthong or diphthong vowel.
    Vowel,
    /// Plosive stop (p, b, t, d, k, g).
    Stop,
    /// Fricative (f, v, s, z, ...).
    Fricative,
    /// Affricate (ch, jh).
    Affricate,
    /// Nasal (m, n, ng).
    Nasal,
    /// Liquid (l, r).
    Liquid,
    /// Glide / semivowel (w, y) and aspirate h.
    Glide,
    /// Silence / word boundary marker.
    Silence,
}

/// An ARPAbet phoneme (stress-less inventory, 39 phones plus silence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are the standard ARPAbet symbols
pub enum Phoneme {
    // Vowels (15)
    AA,
    AE,
    AH,
    AO,
    AW,
    AY,
    EH,
    ER,
    EY,
    IH,
    IY,
    OW,
    OY,
    UH,
    UW,
    // Stops (6)
    B,
    D,
    G,
    K,
    P,
    T,
    // Affricates (2)
    CH,
    JH,
    // Fricatives (9)
    DH,
    F,
    S,
    SH,
    TH,
    V,
    Z,
    ZH,
    HH,
    // Nasals (3)
    M,
    N,
    NG,
    // Liquids (2)
    L,
    R,
    // Glides (2)
    W,
    Y,
    /// Inter-word / utterance silence.
    SIL,
}

/// Acoustic rendering description of one phoneme.
///
/// `formants` holds up to three resonance frequencies in Hz with relative
/// amplitudes; `noise_band` is `(center_hz, bandwidth_hz, amplitude)` for the
/// turbulent component of fricatives/affricates/stop bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acoustics {
    /// Resonance frequencies in Hz and their linear amplitudes.
    pub formants: [(f32, f32); 3],
    /// Turbulent noise component: `(center_hz, bandwidth_hz, amplitude)`.
    pub noise_band: (f32, f32, f32),
    /// Whether the vocal folds vibrate (adds the pitch harmonic stack).
    pub voiced: bool,
    /// Nominal duration in milliseconds at speaking rate 1.0.
    pub duration_ms: f32,
}

impl Phoneme {
    /// The full inventory in declaration order (silence last).
    pub const ALL: [Phoneme; 40] = [
        Phoneme::AA,
        Phoneme::AE,
        Phoneme::AH,
        Phoneme::AO,
        Phoneme::AW,
        Phoneme::AY,
        Phoneme::EH,
        Phoneme::ER,
        Phoneme::EY,
        Phoneme::IH,
        Phoneme::IY,
        Phoneme::OW,
        Phoneme::OY,
        Phoneme::UH,
        Phoneme::UW,
        Phoneme::B,
        Phoneme::D,
        Phoneme::G,
        Phoneme::K,
        Phoneme::P,
        Phoneme::T,
        Phoneme::CH,
        Phoneme::JH,
        Phoneme::DH,
        Phoneme::F,
        Phoneme::S,
        Phoneme::SH,
        Phoneme::TH,
        Phoneme::V,
        Phoneme::Z,
        Phoneme::ZH,
        Phoneme::HH,
        Phoneme::M,
        Phoneme::N,
        Phoneme::NG,
        Phoneme::L,
        Phoneme::R,
        Phoneme::W,
        Phoneme::Y,
        Phoneme::SIL,
    ];

    /// Number of phonemes including silence; acoustic-model class count.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable dense index in `0..Phoneme::COUNT`, used as the acoustic-model
    /// class id.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Phoneme::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Phoneme::COUNT`.
    pub fn from_index(idx: usize) -> Phoneme {
        Self::ALL[idx]
    }

    /// The ARPAbet symbol, e.g. `"AA"`.
    pub fn symbol(self) -> &'static str {
        match self {
            Phoneme::AA => "AA",
            Phoneme::AE => "AE",
            Phoneme::AH => "AH",
            Phoneme::AO => "AO",
            Phoneme::AW => "AW",
            Phoneme::AY => "AY",
            Phoneme::EH => "EH",
            Phoneme::ER => "ER",
            Phoneme::EY => "EY",
            Phoneme::IH => "IH",
            Phoneme::IY => "IY",
            Phoneme::OW => "OW",
            Phoneme::OY => "OY",
            Phoneme::UH => "UH",
            Phoneme::UW => "UW",
            Phoneme::B => "B",
            Phoneme::D => "D",
            Phoneme::G => "G",
            Phoneme::K => "K",
            Phoneme::P => "P",
            Phoneme::T => "T",
            Phoneme::CH => "CH",
            Phoneme::JH => "JH",
            Phoneme::DH => "DH",
            Phoneme::F => "F",
            Phoneme::S => "S",
            Phoneme::SH => "SH",
            Phoneme::TH => "TH",
            Phoneme::V => "V",
            Phoneme::Z => "Z",
            Phoneme::ZH => "ZH",
            Phoneme::HH => "HH",
            Phoneme::M => "M",
            Phoneme::N => "N",
            Phoneme::NG => "NG",
            Phoneme::L => "L",
            Phoneme::R => "R",
            Phoneme::W => "W",
            Phoneme::Y => "Y",
            Phoneme::SIL => "SIL",
        }
    }

    /// Parses an ARPAbet symbol (optionally with a trailing stress digit,
    /// which is ignored, e.g. `"AA1"`).
    pub fn parse(sym: &str) -> Option<Phoneme> {
        let sym = sym.trim_end_matches(|c: char| c.is_ascii_digit());
        Phoneme::ALL.iter().copied().find(|p| p.symbol() == sym)
    }

    /// Broad articulatory class.
    pub fn class(self) -> PhonemeClass {
        use Phoneme::*;
        match self {
            AA | AE | AH | AO | AW | AY | EH | ER | EY | IH | IY | OW | OY | UH | UW => {
                PhonemeClass::Vowel
            }
            B | D | G | K | P | T => PhonemeClass::Stop,
            CH | JH => PhonemeClass::Affricate,
            DH | F | S | SH | TH | V | Z | ZH => PhonemeClass::Fricative,
            HH | W | Y => PhonemeClass::Glide,
            M | N | NG => PhonemeClass::Nasal,
            L | R => PhonemeClass::Liquid,
            SIL => PhonemeClass::Silence,
        }
    }

    /// Whether this phoneme is a vowel (mono- or diphthong).
    pub fn is_vowel(self) -> bool {
        self.class() == PhonemeClass::Vowel
    }

    /// Acoustic rendering description (see [`Acoustics`]).
    pub fn acoustics(self) -> Acoustics {
        use Phoneme::*;
        // Helper: pure-formant voiced sound with default amplitudes.
        fn vowel(f1: f32, f2: f32, f3: f32, dur: f32) -> Acoustics {
            Acoustics {
                formants: [(f1, 1.0), (f2, 0.63), (f3, 0.32)],
                noise_band: (0.0, 0.0, 0.0),
                voiced: true,
                duration_ms: dur,
            }
        }
        fn fric(center: f32, bw: f32, voiced: bool, dur: f32) -> Acoustics {
            Acoustics {
                formants: if voiced {
                    [(220.0, 0.4), (0.0, 0.0), (0.0, 0.0)]
                } else {
                    [(0.0, 0.0); 3]
                },
                noise_band: (center, bw, 0.8),
                voiced,
                duration_ms: dur,
            }
        }
        fn stop(burst: f32, voiced: bool) -> Acoustics {
            Acoustics {
                formants: if voiced {
                    [(180.0, 0.5), (0.0, 0.0), (0.0, 0.0)]
                } else {
                    [(0.0, 0.0); 3]
                },
                noise_band: (burst, 900.0, 0.9),
                voiced,
                duration_ms: 60.0,
            }
        }
        fn sonorant(f1: f32, f2: f32, f3: f32, dur: f32) -> Acoustics {
            Acoustics {
                formants: [(f1, 0.9), (f2, 0.5), (f3, 0.25)],
                noise_band: (0.0, 0.0, 0.0),
                voiced: true,
                duration_ms: dur,
            }
        }
        match self {
            // Peterson–Barney style vowel targets.
            AA => vowel(730.0, 1090.0, 2440.0, 140.0),
            AE => vowel(660.0, 1720.0, 2410.0, 140.0),
            AH => vowel(640.0, 1190.0, 2390.0, 110.0),
            AO => vowel(570.0, 840.0, 2410.0, 140.0),
            AW => vowel(700.0, 1030.0, 2380.0, 170.0), // diphthong midpoint
            AY => vowel(660.0, 1400.0, 2500.0, 170.0),
            EH => vowel(530.0, 1840.0, 2480.0, 120.0),
            ER => vowel(490.0, 1350.0, 1690.0, 130.0),
            EY => vowel(440.0, 2100.0, 2600.0, 150.0),
            IH => vowel(390.0, 1990.0, 2550.0, 100.0),
            IY => vowel(270.0, 2290.0, 3010.0, 120.0),
            OW => vowel(470.0, 940.0, 2350.0, 150.0),
            OY => vowel(520.0, 1150.0, 2450.0, 170.0),
            UH => vowel(440.0, 1020.0, 2240.0, 100.0),
            UW => vowel(300.0, 870.0, 2240.0, 120.0),
            // Stops: burst centre frequencies chosen by place of articulation.
            B => stop(800.0, true),
            D => stop(2700.0, true),
            G => stop(1800.0, true),
            K => stop(2000.0, false),
            P => stop(900.0, false),
            T => stop(3200.0, false),
            // Affricates: stop burst plus sibilant tail.
            CH => fric(2800.0, 1600.0, false, 90.0),
            JH => fric(2500.0, 1500.0, true, 90.0),
            // Fricatives: noise band centres by sibilance.
            DH => fric(1400.0, 1400.0, true, 70.0),
            F => fric(4500.0, 2500.0, false, 90.0),
            S => fric(5500.0, 2000.0, false, 100.0),
            SH => fric(3300.0, 1800.0, false, 100.0),
            TH => fric(4900.0, 2600.0, false, 80.0),
            V => fric(3800.0, 2200.0, true, 70.0),
            Z => fric(5200.0, 2000.0, true, 90.0),
            ZH => fric(3000.0, 1700.0, true, 90.0),
            HH => fric(1600.0, 2400.0, false, 70.0),
            // Nasals: low first resonance with anti-resonance gap.
            M => sonorant(250.0, 1100.0, 2100.0, 80.0),
            N => sonorant(280.0, 1500.0, 2400.0, 80.0),
            NG => sonorant(260.0, 1300.0, 2000.0, 90.0),
            // Liquids and glides.
            L => sonorant(360.0, 1100.0, 2600.0, 80.0),
            R => sonorant(330.0, 1150.0, 1500.0, 80.0),
            W => sonorant(300.0, 700.0, 2200.0, 70.0),
            Y => sonorant(290.0, 2200.0, 2900.0, 70.0),
            SIL => Acoustics {
                formants: [(0.0, 0.0); 3],
                noise_band: (0.0, 0.0, 0.0),
                voiced: false,
                duration_ms: 70.0,
            },
        }
    }
}

impl std::fmt::Display for Phoneme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn indices_are_dense_and_roundtrip() {
        for (i, p) in Phoneme::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phoneme::from_index(i), *p);
        }
    }

    #[test]
    fn symbols_unique_and_parse_roundtrip() {
        let mut seen = HashSet::new();
        for p in Phoneme::ALL {
            assert!(seen.insert(p.symbol()), "duplicate symbol {p}");
            assert_eq!(Phoneme::parse(p.symbol()), Some(p));
        }
        assert_eq!(Phoneme::parse("AA1"), Some(Phoneme::AA));
        assert_eq!(Phoneme::parse("QQ"), None);
    }

    #[test]
    fn vowels_have_formants_and_voicing() {
        for p in Phoneme::ALL.iter().filter(|p| p.is_vowel()) {
            let a = p.acoustics();
            assert!(a.voiced, "{p}");
            assert!(a.formants[0].0 > 200.0, "{p}");
            assert!(a.formants[1].0 > a.formants[0].0, "{p} F2 <= F1");
        }
    }

    #[test]
    fn fricatives_have_noise() {
        for p in [Phoneme::S, Phoneme::SH, Phoneme::F, Phoneme::Z] {
            let a = p.acoustics();
            assert!(a.noise_band.2 > 0.0, "{p}");
            assert!(a.noise_band.0 > 1000.0, "{p}");
        }
    }

    #[test]
    fn acoustic_signatures_are_pairwise_distinct() {
        // The acoustic model can only discriminate phonemes whose spectral
        // descriptions differ; enforce that no two non-silence phonemes share
        // an identical description.
        let all: Vec<_> = Phoneme::ALL
            .iter()
            .filter(|p| **p != Phoneme::SIL)
            .map(|p| {
                let a = p.acoustics();
                (
                    a.formants.map(|(f, amp)| ((f * 10.0) as i64, (amp * 100.0) as i64)),
                    ((a.noise_band.0 * 10.0) as i64, (a.noise_band.1 * 10.0) as i64),
                    a.voiced,
                )
            })
            .collect();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "{} vs {}", Phoneme::ALL[i], Phoneme::ALL[j]);
            }
        }
    }

    #[test]
    fn durations_positive() {
        for p in Phoneme::ALL {
            assert!(p.acoustics().duration_ms > 0.0, "{p}");
        }
    }

    #[test]
    fn class_partition_counts() {
        let vowels = Phoneme::ALL.iter().filter(|p| p.is_vowel()).count();
        assert_eq!(vowels, 15);
        assert_eq!(Phoneme::COUNT, 40);
    }
}
