//! The [`PhoneticEncoder`] trait and the runtime-selectable [`Encoder`] enum.

use crate::{Metaphone, Nysiis, RefinedSoundex, Soundex};

/// A word-level phonetic encoding algorithm.
///
/// Implementors map a single word to a pronunciation-oriented code; the
/// provided [`encode_sentence`](PhoneticEncoder::encode_sentence) method maps
/// a whole transcription by encoding each token and joining with spaces,
/// which is the representation the similarity-calculation component of the
/// detection system compares.
pub trait PhoneticEncoder {
    /// Encodes a single word. Non-alphabetic characters are ignored; an
    /// input with no letters yields an empty code.
    fn encode_word(&self, word: &str) -> String;

    /// A short stable name for experiment-table output.
    fn name(&self) -> &'static str;

    /// Encodes a whole sentence token-by-token.
    ///
    /// ```
    /// use mvp_phonetics::{Metaphone, PhoneticEncoder};
    /// let m = Metaphone::default();
    /// assert_eq!(m.encode_sentence("I see the sea"), m.encode_sentence("i sea the see"));
    /// ```
    fn encode_sentence(&self, sentence: &str) -> String {
        sentence
            .split(|c: char| !(c.is_alphanumeric() || c == '\''))
            .filter(|t| !t.is_empty())
            .map(|t| self.encode_word(t))
            .filter(|c| !c.is_empty())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Runtime-selectable phonetic encoder, used in detection-system
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Encoder {
    /// Original Metaphone (the workspace default; best homophone collapse).
    #[default]
    Metaphone,
    /// American Soundex.
    Soundex,
    /// Refined Soundex.
    RefinedSoundex,
    /// NYSIIS.
    Nysiis,
}

impl Encoder {
    /// Every available encoder.
    pub const ALL: [Encoder; 4] =
        [Encoder::Metaphone, Encoder::Soundex, Encoder::RefinedSoundex, Encoder::Nysiis];
}

impl PhoneticEncoder for Encoder {
    fn encode_word(&self, word: &str) -> String {
        match self {
            Encoder::Metaphone => Metaphone.encode_word(word),
            Encoder::Soundex => Soundex.encode_word(word),
            Encoder::RefinedSoundex => RefinedSoundex.encode_word(word),
            Encoder::Nysiis => Nysiis.encode_word(word),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Encoder::Metaphone => Metaphone.name(),
            Encoder::Soundex => Soundex.name(),
            Encoder::RefinedSoundex => RefinedSoundex.name(),
            Encoder::Nysiis => Nysiis.name(),
        }
    }
}

impl std::fmt::Display for Encoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_encoding_joins_words() {
        let code = Encoder::Metaphone.encode_sentence("open the front door");
        assert_eq!(code.split(' ').count(), 4);
    }

    #[test]
    fn sentence_encoding_skips_punctuation() {
        let a = Encoder::Soundex.encode_sentence("I wish you wouldn't.");
        let b = Encoder::Soundex.encode_sentence("i wish you wouldn't");
        assert_eq!(a, b);
    }

    #[test]
    fn all_encoders_nonempty_on_words() {
        for e in Encoder::ALL {
            assert!(!e.encode_word("hello").is_empty(), "{e}");
            assert!(e.encode_sentence("").is_empty(), "{e}");
        }
    }

    #[test]
    fn encoder_names_unique() {
        let names: std::collections::HashSet<_> = Encoder::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), Encoder::ALL.len());
    }
}
