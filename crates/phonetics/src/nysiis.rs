//! The NYSIIS phonetic encoding (New York State Identification and
//! Intelligence System, 1970).

use crate::encode::PhoneticEncoder;

/// NYSIIS encoder (classic variant, code truncated to 6 characters).
///
/// ```
/// use mvp_phonetics::{Nysiis, PhoneticEncoder};
/// let n = Nysiis::default();
/// assert_eq!(n.encode_word("Macintosh"), "MCANT");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Nysiis;

fn is_vowel(c: u8) -> bool {
    // Y is treated as a vowel in the scan stage so spelling variants such as
    // smith/smyth collapse, as in common NYSIIS implementations.
    matches!(c, b'A' | b'E' | b'I' | b'O' | b'U' | b'Y')
}

fn replace_prefix(w: &mut Vec<u8>, from: &[u8], to: &[u8]) -> bool {
    if w.starts_with(from) {
        w.splice(0..from.len(), to.iter().copied());
        true
    } else {
        false
    }
}

fn replace_suffix(w: &mut Vec<u8>, from: &[u8], to: &[u8]) -> bool {
    if w.ends_with(from) {
        let start = w.len() - from.len();
        w.splice(start.., to.iter().copied());
        true
    } else {
        false
    }
}

impl PhoneticEncoder for Nysiis {
    fn encode_word(&self, word: &str) -> String {
        let mut w: Vec<u8> = word
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .map(|c| c.to_ascii_uppercase() as u8)
            .collect();
        if w.is_empty() {
            return String::new();
        }
        // 1. Prefix transformations.
        let _ = replace_prefix(&mut w, b"MAC", b"MCC")
            || replace_prefix(&mut w, b"KN", b"NN")
            || replace_prefix(&mut w, b"K", b"C")
            || replace_prefix(&mut w, b"PH", b"FF")
            || replace_prefix(&mut w, b"PF", b"FF")
            || replace_prefix(&mut w, b"SCH", b"SSS");
        // 2. Suffix transformations.
        let _ = replace_suffix(&mut w, b"EE", b"Y")
            || replace_suffix(&mut w, b"IE", b"Y")
            || replace_suffix(&mut w, b"DT", b"D")
            || replace_suffix(&mut w, b"RT", b"D")
            || replace_suffix(&mut w, b"RD", b"D")
            || replace_suffix(&mut w, b"NT", b"D")
            || replace_suffix(&mut w, b"ND", b"D");
        // 3. First key character.
        let mut key = vec![w[0]];
        // 4. Scan the rest.
        let n = w.len();
        let mut i = 1usize;
        while i < n {
            let prev = w[i - 1];
            let cur = w[i];
            let next = if i + 1 < n { w[i + 1] } else { 0 };
            let repl: Vec<u8> = match cur {
                b'E' if next == b'V' => {
                    i += 1; // consume V
                    b"AF".to_vec()
                }
                c if is_vowel(c) => b"A".to_vec(),
                b'Q' => b"G".to_vec(),
                b'Z' => b"S".to_vec(),
                b'M' => b"N".to_vec(),
                b'K' => {
                    if next == b'N' {
                        b"N".to_vec()
                    } else {
                        b"C".to_vec()
                    }
                }
                b'S' if next == b'C' && i + 2 < n && w[i + 2] == b'H' => {
                    i += 2;
                    b"SSS".to_vec()
                }
                b'P' if next == b'H' => {
                    i += 1;
                    b"FF".to_vec()
                }
                // Silent H / W collapse onto the previously *emitted* key
                // character, which the dedup below always removes — so emit
                // nothing.
                b'H' if !is_vowel(prev) || (next != 0 && !is_vowel(next)) => Vec::new(),
                b'W' if is_vowel(prev) => Vec::new(),
                c => vec![c],
            };
            for &r in &repl {
                if key.last() != Some(&r) {
                    key.push(r);
                }
            }
            i += 1;
        }
        // 5. Suffix cleanup on the key.
        if key.ends_with(b"S") && key.len() > 1 {
            key.pop();
        }
        if key.ends_with(b"AY") {
            key.truncate(key.len() - 2);
            key.push(b'Y');
        }
        if key.ends_with(b"A") && key.len() > 1 {
            key.pop();
        }
        key.truncate(6);
        String::from_utf8(key).expect("key is ASCII")
    }

    fn name(&self) -> &'static str {
        "NYSIIS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_values() {
        let n = Nysiis;
        for (word, code) in [
            ("Macintosh", "MCANT"),
            ("Knuth", "NAT"),
            ("Koehn", "CAN"),
            ("Phillipson", "FALAPS"),
            ("Pfeister", "FASTAR"),
        ] {
            assert_eq!(n.encode_word(word), code, "{word}");
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(Nysiis.encode_word(""), "");
    }

    #[test]
    fn similar_names_collapse() {
        let n = Nysiis;
        assert_eq!(n.encode_word("smith"), n.encode_word("smyth"));
    }

    proptest! {
        #[test]
        fn bounded_uppercase(word in "[a-zA-Z]{1,20}") {
            let code = Nysiis.encode_word(&word);
            prop_assert!(code.len() <= 6);
            prop_assert!(!code.is_empty());
            prop_assert!(code.bytes().all(|b| b.is_ascii_uppercase()));
        }

        #[test]
        fn no_adjacent_duplicates_after_first(word in "[a-z]{2,16}") {
            let code = Nysiis.encode_word(&word);
            let b = code.as_bytes();
            for i in 2..b.len() {
                prop_assert!(b[i] != b[i-1] || b[i] == b[1], "{}", code);
            }
        }
    }
}
