//! Pronunciation lexicon: word → phoneme sequence, with homophone support.
//!
//! The built-in dictionary covers the synthetic corpus vocabulary (including
//! deliberate homophone sets, whose members synthesize to *identical* audio
//! and therefore exercise the paper's phonetic-encoding rationale); words
//! outside the dictionary fall back to the rule-based
//! [`grapheme_to_phoneme`](crate::grapheme_to_phoneme) converter.

use std::collections::HashMap;

use crate::g2p::grapheme_to_phoneme;
use crate::phoneme::Phoneme;

/// Built-in dictionary entries: `"word: P1 P2 ..."`.
///
/// Entries are hand-checked ARPAbet pronunciations for the irregular portion
/// of the corpus vocabulary; regular words are resolved by G2P.
const BUILTIN: &str = "\
the: DH AH\na: AH\nan: AE N\nof: AH V\nto: T UW\ntoo: T UW\ntwo: T UW\n\
and: AE N D\nyou: Y UW\ni: AY\nit: IH T\nis: IH Z\nwas: W AA Z\nare: AA R\n\
he: HH IY\nshe: SH IY\nwe: W IY\nthey: DH EY\nbe: B IY\nhis: HH IH Z\n\
her: HH ER\nmy: M AY\nyour: Y AO R\nour: AW R\nthis: DH IH S\nthat: DH AE T\n\
have: HH AE V\nhas: HH AE Z\nhad: HH AE D\ndo: D UW\ndoes: D AH Z\n\
did: D IH D\nwill: W IH L\nwould: W UH D\nwood: W UH D\ncould: K UH D\n\
should: SH UH D\ncan: K AE N\nnot: N AA T\nno: N OW\nknow: N OW\n\
yes: Y EH S\nwhat: W AH T\nwhen: W EH N\nwhere: W EH R\nwear: W EH R\n\
who: HH UW\nwhy: W AY\nhow: HH AW\nall: AO L\nsome: S AH M\nsum: S AH M\n\
one: W AH N\nwon: W AH N\nthere: DH EH R\ntheir: DH EH R\nhere: HH IY R\n\
hear: HH IY R\nfor: F AO R\nfour: F AO R\nsee: S IY\nsea: S IY\n\
right: R AY T\nwrite: R AY T\nnight: N AY T\nknight: N AY T\nnew: N UW\n\
knew: N UW\nson: S AH N\nsun: S AH N\nby: B AY\nbuy: B AY\nbye: B AY\n\
so: S OW\nsew: S OW\neight: EY T\nate: EY T\nmeet: M IY T\nmeat: M IY T\n\
week: W IY K\nweak: W IY K\nhole: HH OW L\nwhole: HH OW L\nplane: P L EY N\n\
plain: P L EY N\nflower: F L AW ER\nflour: F L AW ER\npair: P EH R\n\
pear: P EH R\nwait: W EY T\nweight: W EY T\nsight: S AY T\nsite: S AY T\n\
cite: S AY T\nsore: S AO R\nsoar: S AO R\neyes: AY Z\nwish: W IH SH\n\
wouldn't: W UH D AH N T\ndon't: D OW N T\ncan't: K AE N T\n\
open: OW P AH N\nclose: K L OW Z\nfront: F R AH N T\nback: B AE K\n\
door: D AO R\nwindow: W IH N D OW\nlight: L AY T\nlights: L AY T S\n\
turn: T ER N\non: AA N\noff: AO F\nplay: P L EY\nstop: S T AA P\n\
music: M Y UW Z IH K\nvolume: V AA L Y UW M\nup: AH P\ndown: D AW N\n\
lock: L AA K\nunlock: AH N L AA K\ngarage: G ER AA ZH\nalarm: AH L AA R M\n\
call: K AO L\nphone: F OW N\nsend: S EH N D\nmessage: M EH S IH JH\n\
read: R IY D\nred: R EH D\nemail: IY M EY L\nset: S EH T\ntimer: T AY M ER\n\
temperature: T EH M P R AH CH ER\nheat: HH IY T\ncamera: K AE M ER AH\n\
record: R IH K AO R D\ndelete: D IH L IY T\nfile: F AY L\nfiles: F AY L Z\n\
order: AO R D ER\nbrowser: B R AW Z ER\nwebsite: W EH B S AY T\n\
visit: V IH Z IH T\ntime: T AY M\ntoday: T AH D EY\ntomorrow: T AH M AA R OW\n\
morning: M AO R N IH NG\nevening: IY V N IH NG\nwater: W AO T ER\n\
people: P IY P AH L\nhouse: HH AW S\nhome: HH OW M\nroom: R UW M\n\
kitchen: K IH CH AH N\nbedroom: B EH D R UW M\nlittle: L IH T AH L\n\
good: G UH D\ngreat: G R EY T\nsmall: S M AO L\nlarge: L AA R JH\n\
old: OW L D\nyoung: Y AH NG\nlong: L AO NG\nshort: SH AO R T\n\
man: M AE N\nwoman: W UH M AH N\nchild: CH AY L D\nfriend: F R EH N D\n\
mother: M AH DH ER\nfather: F AA DH ER\nfamily: F AE M L IY\n\
day: D EY\nyear: Y IH R\nyears: Y IH R Z\nworld: W ER L D\n\
country: K AH N T R IY\ncity: S IH T IY\nstreet: S T R IY T\n\
river: R IH V ER\nmountain: M AW N T AH N\nforest: F AO R AH S T\n\
garden: G AA R D AH N\nsummer: S AH M ER\nwinter: W IH N T ER\n\
spring: S P R IH NG\nautumn: AO T AH M\nrain: R EY N\nsnow: S N OW\n\
wind: W IH N D\nstorm: S T AO R M\nvoice: V OY S\nsound: S AW N D\n\
story: S T AO R IY\nbook: B UH K\nword: W ER D\nwords: W ER D Z\n\
letter: L EH T ER\npaper: P EY P ER\nschool: S K UW L\nteacher: T IY CH ER\n\
student: S T UW D AH N T\nwork: W ER K\nworked: W ER K T\n\
walk: W AO K\nwalked: W AO K T\ntalk: T AO K\nsaid: S EH D\n\
says: S EH Z\ncome: K AH M\ncame: K EY M\ngo: G OW\nwent: W EH N T\n\
gone: G AO N\ntake: T EY K\ntook: T UH K\ngive: G IH V\ngave: G EY V\n\
make: M EY K\nmade: M EY D\nfind: F AY N D\nfound: F AW N D\n\
think: TH IH NG K\nthought: TH AO T\nlook: L UH K\nlooked: L UH K T\n\
want: W AA N T\nwanted: W AA N T IH D\nlive: L IH V\nlived: L IH V D\n\
believe: B IH L IY V\nremember: R IH M EH M B ER\nanswer: AE N S ER\n\
question: K W EH S CH AH N\nbecause: B IH K AO Z\nbefore: B IH F AO R\n\
after: AE F T ER\nagain: AH G EH N\nnever: N EH V ER\nalways: AO L W EY Z\n\
often: AO F AH N\ntogether: T AH G EH DH ER\nbetween: B IH T W IY N\n\
through: TH R UW\nthrew: TH R UW\nunder: AH N D ER\nover: OW V ER\n\
into: IH N T UW\nabout: AH B AW T\nwith: W IH TH\nfrom: F R AH M\n\
very: V EH R IY\nonly: OW N L IY\nother: AH DH ER\nmany: M EH N IY\n\
more: M AO R\nmost: M OW S T\nfirst: F ER S T\nlast: L AE S T\n\
next: N EH K S T\nevery: EH V R IY\neach: IY CH\nboth: B OW TH\n\
few: F Y UW\nquiet: K W AY AH T\nquite: K W AY T\nplease: P L IY Z\n\
thank: TH AE NG K\nhello: HH EH L OW\ngoodbye: G UH D B AY\n\
door's: D AO R Z\nheard: HH ER D\nherd: HH ER D\n";

/// A pronunciation dictionary mapping words to ARPAbet phoneme sequences.
///
/// ```
/// use mvp_phonetics::{Lexicon, Phoneme};
/// let lex = Lexicon::builtin();
/// assert_eq!(lex.pronounce("see"), lex.pronounce("sea")); // homophones
/// assert!(!lex.pronounce("zyzzyva").is_empty());          // G2P fallback
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    entries: HashMap<String, Vec<Phoneme>>,
}

impl Lexicon {
    /// An empty lexicon (every lookup falls back to G2P).
    pub fn new() -> Lexicon {
        Lexicon::default()
    }

    /// The built-in dictionary covering the corpus vocabulary.
    pub fn builtin() -> Lexicon {
        let mut lex = Lexicon::new();
        for line in BUILTIN.lines() {
            let (word, phones) = line
                .split_once(':')
                // mvp-lint: allow(panic-path) -- BUILTIN is compiled-in data; a parse failure is a build defect, not request input
                .unwrap_or_else(|| panic!("malformed builtin lexicon line: {line}"));
            let phones: Vec<Phoneme> = phones
                .split_whitespace()
                .map(|s| {
                    Phoneme::parse(s)
                        // mvp-lint: allow(panic-path) -- BUILTIN is compiled-in data; a parse failure is a build defect, not request input
                        .unwrap_or_else(|| panic!("bad phoneme {s:?} for word {word:?}"))
                })
                .collect();
            lex.insert(word, phones);
        }
        lex
    }

    /// Inserts or replaces a pronunciation.
    ///
    /// # Panics
    ///
    /// Panics if `phones` is empty or contains [`Phoneme::SIL`].
    pub fn insert(&mut self, word: &str, phones: Vec<Phoneme>) {
        assert!(!phones.is_empty(), "empty pronunciation for {word:?}");
        assert!(!phones.contains(&Phoneme::SIL), "SIL inside pronunciation of {word:?}");
        self.entries.insert(word.to_lowercase(), phones);
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the lexicon has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the explicit pronunciation, if present.
    pub fn lookup(&self, word: &str) -> Option<&[Phoneme]> {
        self.entries.get(&word.to_lowercase()).map(Vec::as_slice)
    }

    /// Pronunciation of `word`: explicit entry or G2P fallback.
    ///
    /// Returns an empty sequence only when `word` contains no letters.
    pub fn pronounce(&self, word: &str) -> Vec<Phoneme> {
        match self.lookup(word) {
            Some(p) => p.to_vec(),
            None => grapheme_to_phoneme(word),
        }
    }

    /// Pronunciation of a whole sentence, with [`Phoneme::SIL`] separating
    /// words and framing the utterance.
    pub fn pronounce_sentence(&self, sentence: &str) -> Vec<Phoneme> {
        let mut out = vec![Phoneme::SIL];
        for token in
            sentence.split(|c: char| !(c.is_alphanumeric() || c == '\'')).filter(|t| !t.is_empty())
        {
            let phones = self.pronounce(token);
            if phones.is_empty() {
                continue;
            }
            out.extend(phones);
            out.push(Phoneme::SIL);
        }
        out
    }

    /// Iterates over the explicitly-listed words.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// All explicit words whose pronunciation equals that of `word`
    /// (excluding `word` itself).
    pub fn homophones_of(&self, word: &str) -> Vec<&str> {
        let Some(target) = self.lookup(word) else {
            return Vec::new();
        };
        let word_lc = word.to_lowercase();
        let mut out: Vec<&str> = self
            .entries
            .iter()
            .filter(|(w, p)| **w != word_lc && p.as_slice() == target)
            .map(|(w, _)| w.as_str())
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_parses_and_is_nontrivial() {
        let lex = Lexicon::builtin();
        assert!(lex.len() > 200, "only {} entries", lex.len());
    }

    #[test]
    fn homophone_sets() {
        let lex = Lexicon::builtin();
        assert_eq!(lex.homophones_of("to"), vec!["too", "two"]);
        assert!(lex.homophones_of("right").contains(&"write"));
        assert!(lex.homophones_of("door").is_empty());
    }

    #[test]
    fn sentence_pronunciation_framed_by_sil() {
        let lex = Lexicon::builtin();
        let p = lex.pronounce_sentence("open the door");
        assert_eq!(p.first(), Some(&Phoneme::SIL));
        assert_eq!(p.last(), Some(&Phoneme::SIL));
        assert_eq!(p.iter().filter(|&&x| x == Phoneme::SIL).count(), 4);
    }

    #[test]
    fn g2p_fallback_used_for_oov() {
        let lex = Lexicon::builtin();
        assert!(lex.lookup("blorple").is_none());
        assert!(!lex.pronounce("blorple").is_empty());
    }

    #[test]
    fn case_insensitive_lookup() {
        let lex = Lexicon::builtin();
        assert_eq!(lex.pronounce("DOOR"), lex.pronounce("door"));
    }

    #[test]
    fn insert_overrides() {
        let mut lex = Lexicon::builtin();
        lex.insert("door", vec![Phoneme::D, Phoneme::UW]);
        assert_eq!(lex.pronounce("door"), vec![Phoneme::D, Phoneme::UW]);
    }

    #[test]
    #[should_panic(expected = "empty pronunciation")]
    fn insert_empty_panics() {
        Lexicon::new().insert("x", vec![]);
    }

    #[test]
    fn no_sil_inside_builtin_entries() {
        let lex = Lexicon::builtin();
        for w in lex.words() {
            assert!(!lex.lookup(w).unwrap().contains(&Phoneme::SIL), "{w}");
        }
    }
}
