//! American Soundex and Refined Soundex phonetic encodings.

use crate::encode::PhoneticEncoder;

fn soundex_digit(c: char) -> Option<char> {
    match c {
        'b' | 'f' | 'p' | 'v' => Some('1'),
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some('2'),
        'd' | 't' => Some('3'),
        'l' => Some('4'),
        'm' | 'n' => Some('5'),
        'r' => Some('6'),
        _ => None, // vowels, h, w, y and non-letters
    }
}

/// Classic four-character American Soundex.
///
/// ```
/// use mvp_phonetics::{PhoneticEncoder, Soundex};
/// let s = Soundex::default();
/// assert_eq!(s.encode_word("Robert"), "R163");
/// assert_eq!(s.encode_word("Rupert"), "R163");
/// assert_eq!(s.encode_word("Ashcraft"), "A261");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Soundex;

impl PhoneticEncoder for Soundex {
    fn encode_word(&self, word: &str) -> String {
        let letters: Vec<char> = word
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        let Some(&first) = letters.first() else {
            return String::new();
        };
        let mut code = String::with_capacity(4);
        code.push(first.to_ascii_uppercase());
        let mut prev_digit = soundex_digit(first);
        for &c in &letters[1..] {
            let digit = soundex_digit(c);
            match digit {
                Some(d) => {
                    // Consecutive identical codes collapse; 'h'/'w' between
                    // identical codes also collapse (handled by not clearing
                    // prev on h/w below).
                    if prev_digit != Some(d) {
                        code.push(d);
                        if code.len() == 4 {
                            break;
                        }
                    }
                    prev_digit = Some(d);
                }
                None => {
                    // Vowels reset the separator rule; h/w do not.
                    if !matches!(c, 'h' | 'w') {
                        prev_digit = None;
                    }
                }
            }
        }
        while code.len() < 4 {
            code.push('0');
        }
        code
    }

    fn name(&self) -> &'static str {
        "Soundex"
    }
}

fn refined_digit(c: char) -> Option<char> {
    match c {
        'b' | 'p' => Some('1'),
        'f' | 'v' => Some('2'),
        'c' | 'k' | 's' => Some('3'),
        'g' | 'j' => Some('4'),
        'q' | 'x' | 'z' => Some('5'),
        'd' | 't' => Some('6'),
        'l' => Some('7'),
        'm' | 'n' => Some('8'),
        'r' => Some('9'),
        'a' | 'e' | 'i' | 'o' | 'u' | 'y' | 'h' | 'w' => Some('0'),
        _ => None,
    }
}

/// Refined Soundex: finer-grained consonant classes, unlimited length,
/// vowels encoded as `0`.
///
/// ```
/// use mvp_phonetics::{PhoneticEncoder, RefinedSoundex};
/// let r = RefinedSoundex::default();
/// assert_eq!(r.encode_word("Braz"), "B1905");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefinedSoundex;

impl PhoneticEncoder for RefinedSoundex {
    fn encode_word(&self, word: &str) -> String {
        let letters: Vec<char> = word
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        let Some(&first) = letters.first() else {
            return String::new();
        };
        let mut code = String::new();
        code.push(first.to_ascii_uppercase());
        let mut prev = None;
        for &c in &letters {
            let d = refined_digit(c);
            if let Some(d) = d {
                if prev != Some(d) {
                    code.push(d);
                }
                prev = Some(d);
            }
        }
        code
    }

    fn name(&self) -> &'static str {
        "RefinedSoundex"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_soundex_values() {
        let s = Soundex;
        for (word, code) in [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
        ] {
            assert_eq!(s.encode_word(word), code, "{word}");
        }
    }

    #[test]
    fn empty_and_nonalpha() {
        assert_eq!(Soundex.encode_word(""), "");
        assert_eq!(Soundex.encode_word("123"), "");
        assert_eq!(RefinedSoundex.encode_word(""), "");
    }

    #[test]
    fn refined_distinguishes_what_soundex_merges() {
        // d/t vs l are separate classes in both, but b/p vs f/v split only
        // in refined soundex.
        assert_eq!(Soundex.encode_word("bat"), Soundex.encode_word("fat").replace('F', "B"));
        assert_ne!(
            RefinedSoundex.encode_word("bat").trim_start_matches('B'),
            RefinedSoundex.encode_word("fat").trim_start_matches('F'),
        );
    }

    proptest! {
        #[test]
        fn soundex_shape(word in "[a-zA-Z]{1,16}") {
            let code = Soundex.encode_word(&word);
            prop_assert_eq!(code.len(), 4);
            let mut chars = code.chars();
            prop_assert!(chars.next().unwrap().is_ascii_uppercase());
            prop_assert!(chars.all(|c| c.is_ascii_digit()));
        }

        #[test]
        fn refined_starts_with_letter(word in "[a-zA-Z]{1,16}") {
            let code = RefinedSoundex.encode_word(&word);
            prop_assert!(code.chars().next().unwrap().is_ascii_uppercase());
        }
    }
}
