#![warn(missing_docs)]

//! Phonetic substrate for the MVP-EARS reproduction.
//!
//! The paper's similarity-calculation component first converts each
//! transcription into a *phonetic encoding* so that different ASRs emitting
//! different words for similar sounds (homophones, near-homophones) still
//! produce high similarity scores for benign audio. This crate provides:
//!
//! - the ARPAbet [`Phoneme`] inventory with per-phoneme acoustic metadata
//!   (formant frequencies, voicing, class) that the `mvp-audio` synthesizer
//!   and the `mvp-asr` acoustic models are built on;
//! - a rule-based grapheme-to-phoneme converter ([`grapheme_to_phoneme`])
//!   and a pronunciation [`Lexicon`] with homophone support;
//! - classic phonetic-encoding algorithms — [`Soundex`], [`RefinedSoundex`],
//!   [`Metaphone`] and [`Nysiis`] — behind the [`PhoneticEncoder`] trait.
//!
//! # Examples
//!
//! ```
//! use mvp_phonetics::{Metaphone, PhoneticEncoder};
//!
//! let enc = Metaphone::default();
//! // Homophones collapse to the same code, which is exactly why the paper's
//! // PE_JaroWinkler similarity method outperforms raw JaroWinkler.
//! assert_eq!(enc.encode_word("write"), enc.encode_word("right"));
//! ```

pub mod encode;
pub mod g2p;
pub mod lexicon;
pub mod metaphone;
pub mod nysiis;
pub mod phoneme;
pub mod soundex;

pub use encode::{Encoder, PhoneticEncoder};
pub use g2p::grapheme_to_phoneme;
pub use lexicon::Lexicon;
pub use metaphone::Metaphone;
pub use nysiis::Nysiis;
pub use phoneme::{Phoneme, PhonemeClass};
pub use soundex::{RefinedSoundex, Soundex};
