//! Rule-based grapheme-to-phoneme (G2P) conversion.
//!
//! The [`Lexicon`](crate::Lexicon) stores explicit pronunciations for the
//! corpus vocabulary; this module is the fallback for out-of-vocabulary
//! words. It implements a longest-match rewrite system over letter clusters
//! with a handful of context-sensitive rules (silent final `e`, soft `c`/`g`,
//! `igh`, `tion`, ...). The output only needs to be *consistent* — the same
//! word always yields the same phoneme string, and similar spellings yield
//! similar phoneme strings — because the synthesizer and every ASR share
//! this same pronunciation substrate.

use crate::phoneme::Phoneme;

/// Multi-letter cluster rules, longest first. `None` context means the rule
/// always applies.
const CLUSTERS: &[(&str, &[Phoneme])] = &[
    ("tion", &[Phoneme::SH, Phoneme::AH, Phoneme::N]),
    ("sion", &[Phoneme::ZH, Phoneme::AH, Phoneme::N]),
    ("ought", &[Phoneme::AO, Phoneme::T]),
    ("augh", &[Phoneme::AO]),
    ("eigh", &[Phoneme::EY]),
    ("igh", &[Phoneme::AY]),
    ("tch", &[Phoneme::CH]),
    ("dge", &[Phoneme::JH]),
    ("sch", &[Phoneme::S, Phoneme::K]),
    ("ch", &[Phoneme::CH]),
    ("sh", &[Phoneme::SH]),
    ("th", &[Phoneme::TH]),
    ("ph", &[Phoneme::F]),
    ("wh", &[Phoneme::W]),
    ("ng", &[Phoneme::NG]),
    ("ck", &[Phoneme::K]),
    ("qu", &[Phoneme::K, Phoneme::W]),
    ("oo", &[Phoneme::UW]),
    ("ee", &[Phoneme::IY]),
    ("ea", &[Phoneme::IY]),
    ("ai", &[Phoneme::EY]),
    ("ay", &[Phoneme::EY]),
    ("oa", &[Phoneme::OW]),
    ("ow", &[Phoneme::OW]),
    ("ou", &[Phoneme::AW]),
    ("oi", &[Phoneme::OY]),
    ("oy", &[Phoneme::OY]),
    ("au", &[Phoneme::AO]),
    ("aw", &[Phoneme::AO]),
    ("ew", &[Phoneme::UW]),
    ("ie", &[Phoneme::IY]),
    ("ey", &[Phoneme::IY]),
    ("ar", &[Phoneme::AA, Phoneme::R]),
    ("or", &[Phoneme::AO, Phoneme::R]),
    ("er", &[Phoneme::ER]),
    ("ir", &[Phoneme::ER]),
    ("ur", &[Phoneme::ER]),
];

fn single(c: u8, next: u8) -> &'static [Phoneme] {
    match c {
        b'a' => &[Phoneme::AE],
        b'b' => &[Phoneme::B],
        b'c' => {
            if matches!(next, b'e' | b'i' | b'y') {
                &[Phoneme::S]
            } else {
                &[Phoneme::K]
            }
        }
        b'd' => &[Phoneme::D],
        b'e' => &[Phoneme::EH],
        b'f' => &[Phoneme::F],
        b'g' => {
            if matches!(next, b'e' | b'i' | b'y') {
                &[Phoneme::JH]
            } else {
                &[Phoneme::G]
            }
        }
        b'h' => &[Phoneme::HH],
        b'i' => &[Phoneme::IH],
        b'j' => &[Phoneme::JH],
        b'k' => &[Phoneme::K],
        b'l' => &[Phoneme::L],
        b'm' => &[Phoneme::M],
        b'n' => &[Phoneme::N],
        b'o' => &[Phoneme::AA],
        b'p' => &[Phoneme::P],
        b'q' => &[Phoneme::K],
        b'r' => &[Phoneme::R],
        b's' => &[Phoneme::S],
        b't' => &[Phoneme::T],
        b'u' => &[Phoneme::AH],
        b'v' => &[Phoneme::V],
        b'w' => &[Phoneme::W],
        b'x' => &[Phoneme::K, Phoneme::S],
        b'y' => &[Phoneme::IY],
        b'z' => &[Phoneme::Z],
        _ => &[],
    }
}

/// Converts a word to its phoneme sequence using the rewrite rules.
///
/// Non-alphabetic characters are ignored; an input with no letters yields an
/// empty sequence. The result never contains [`Phoneme::SIL`].
///
/// ```
/// use mvp_phonetics::{grapheme_to_phoneme, Phoneme};
/// let phones = grapheme_to_phoneme("ship");
/// assert_eq!(phones, vec![Phoneme::SH, Phoneme::IH, Phoneme::P]);
/// ```
pub fn grapheme_to_phoneme(word: &str) -> Vec<Phoneme> {
    let w: Vec<u8> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase() as u8)
        .collect();
    let n = w.len();
    let mut out: Vec<Phoneme> = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        // Silent final 'e' (but keep single-letter words like "e" and words
        // that would otherwise have no vowel, e.g. "the" handled by lexicon).
        if w[i] == b'e' && i == n - 1 && i > 0 && out.iter().any(|p| p.is_vowel()) {
            // Lengthen the preceding vowel instead ("mad"/"made" distinction
            // is approximated by the magic-e rule below).
            break;
        }
        // Initial-cluster silent letters.
        if i == 0 && n >= 2 {
            match (w[0], w[1]) {
                (b'k', b'n') | (b'g', b'n') | (b'p', b'n') => {
                    i = 1;
                    continue;
                }
                (b'w', b'r') => {
                    i = 1;
                    continue;
                }
                _ => {}
            }
        }
        // Doubled consonants collapse.
        if i + 1 < n && w[i] == w[i + 1] && !matches!(w[i], b'a' | b'e' | b'i' | b'o' | b'u') {
            i += 1;
            continue;
        }
        // Longest-match cluster rules.
        let rest = &w[i..];
        let mut matched = false;
        for (pat, phones) in CLUSTERS {
            let pat = pat.as_bytes();
            if rest.starts_with(pat) {
                out.extend_from_slice(phones);
                i += pat.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Magic-e: vowel + single consonant + final 'e' makes the vowel long.
        if matches!(w[i], b'a' | b'i' | b'o' | b'u')
            && i + 2 < n
            && w[i + 2] == b'e'
            && i + 2 == n - 1
        {
            let is_cons = !matches!(w[i + 1], b'a' | b'e' | b'i' | b'o' | b'u');
            if is_cons {
                let long = match w[i] {
                    b'a' => Phoneme::EY,
                    b'i' => Phoneme::AY,
                    b'o' => Phoneme::OW,
                    _ => Phoneme::UW,
                };
                out.push(long);
                i += 1;
                continue;
            }
        }
        let next = if i + 1 < n { w[i + 1] } else { 0 };
        out.extend_from_slice(single(w[i], next));
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_words() {
        assert_eq!(grapheme_to_phoneme("cat"), vec![Phoneme::K, Phoneme::AE, Phoneme::T]);
        assert_eq!(grapheme_to_phoneme("dog"), vec![Phoneme::D, Phoneme::AA, Phoneme::G]);
        assert_eq!(grapheme_to_phoneme("ship"), vec![Phoneme::SH, Phoneme::IH, Phoneme::P]);
    }

    #[test]
    fn cluster_rules() {
        assert_eq!(grapheme_to_phoneme("night"), vec![Phoneme::N, Phoneme::AY, Phoneme::T]);
        assert_eq!(
            grapheme_to_phoneme("nation"),
            vec![Phoneme::N, Phoneme::AE, Phoneme::SH, Phoneme::AH, Phoneme::N]
        );
        assert_eq!(
            grapheme_to_phoneme("queen"),
            vec![Phoneme::K, Phoneme::W, Phoneme::IY, Phoneme::N]
        );
    }

    #[test]
    fn magic_e() {
        assert_eq!(grapheme_to_phoneme("made"), vec![Phoneme::M, Phoneme::EY, Phoneme::D]);
        assert_eq!(grapheme_to_phoneme("ride"), vec![Phoneme::R, Phoneme::AY, Phoneme::D]);
        assert_eq!(grapheme_to_phoneme("code"), vec![Phoneme::K, Phoneme::OW, Phoneme::D]);
    }

    #[test]
    fn silent_initials() {
        assert_eq!(grapheme_to_phoneme("knight"), grapheme_to_phoneme("night"));
        assert_eq!(grapheme_to_phoneme("write")[0], Phoneme::R);
    }

    #[test]
    fn soft_c_and_g() {
        assert_eq!(grapheme_to_phoneme("city")[0], Phoneme::S);
        assert_eq!(grapheme_to_phoneme("cold")[0], Phoneme::K);
        assert_eq!(grapheme_to_phoneme("gem")[0], Phoneme::JH);
        assert_eq!(grapheme_to_phoneme("go")[0], Phoneme::G);
    }

    #[test]
    fn doubled_consonants_collapse() {
        assert_eq!(grapheme_to_phoneme("ball"), grapheme_to_phoneme("bal"));
    }

    #[test]
    fn r_colored_vowels() {
        assert_eq!(grapheme_to_phoneme("car"), vec![Phoneme::K, Phoneme::AA, Phoneme::R]);
        assert_eq!(grapheme_to_phoneme("fur"), vec![Phoneme::F, Phoneme::ER]);
        assert_eq!(grapheme_to_phoneme("for"), vec![Phoneme::F, Phoneme::AO, Phoneme::R]);
    }

    #[test]
    fn vowel_digraphs() {
        assert_eq!(grapheme_to_phoneme("boat"), vec![Phoneme::B, Phoneme::OW, Phoneme::T]);
        assert_eq!(grapheme_to_phoneme("rain"), vec![Phoneme::R, Phoneme::EY, Phoneme::N]);
        assert_eq!(grapheme_to_phoneme("mouth"), vec![Phoneme::M, Phoneme::AW, Phoneme::TH]);
        assert_eq!(grapheme_to_phoneme("boy"), vec![Phoneme::B, Phoneme::OY]);
    }

    #[test]
    fn empty_and_nonalpha() {
        assert!(grapheme_to_phoneme("").is_empty());
        assert!(grapheme_to_phoneme("1234").is_empty());
    }

    proptest! {
        #[test]
        fn no_silence_and_deterministic(word in "[a-z]{1,16}") {
            let a = grapheme_to_phoneme(&word);
            let b = grapheme_to_phoneme(&word);
            prop_assert_eq!(&a, &b);
            prop_assert!(!a.contains(&Phoneme::SIL));
        }

        #[test]
        fn words_with_vowels_produce_output(word in "[a-z]{0,4}[aeiou][a-z]{0,4}") {
            prop_assert!(!grapheme_to_phoneme(&word).is_empty());
        }
    }
}
