//! The original Metaphone phonetic encoding (Lawrence Philips, 1990).
//!
//! Metaphone is the default phonetic encoder of the detection system: it
//! collapses English homophones (`write`/`right`, `knight`/`night`) onto the
//! same code, which is what lets PE_JaroWinkler forgive benign cross-ASR
//! word substitutions in the paper's Table III ablation.

use crate::encode::PhoneticEncoder;

/// Original Metaphone encoder.
///
/// ```
/// use mvp_phonetics::{Metaphone, PhoneticEncoder};
/// let m = Metaphone::default();
/// assert_eq!(m.encode_word("phone"), "FN");
/// assert_eq!(m.encode_word("knight"), m.encode_word("night"));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metaphone;

fn is_vowel(c: u8) -> bool {
    matches!(c, b'A' | b'E' | b'I' | b'O' | b'U')
}

impl Metaphone {
    fn transform(word: &[u8]) -> String {
        // Apply initial-cluster exceptions.
        let mut w: Vec<u8> = word.to_vec();
        if w.len() >= 2 {
            match (w[0], w[1]) {
                (b'A', b'E') => {
                    w.remove(0);
                }
                (b'G' | b'K' | b'P', b'N') | (b'W', b'R') => {
                    w.remove(0);
                }
                (b'X', _) => w[0] = b'S',
                (b'W', b'H') => {
                    w.remove(1);
                }
                _ => {}
            }
        } else if w.first() == Some(&b'X') {
            w[0] = b'S';
        }

        let n = w.len();
        let at = |i: isize| -> u8 {
            if i < 0 || i as usize >= n {
                0
            } else {
                w[i as usize]
            }
        };
        let mut out = String::new();
        let mut i: isize = 0;
        while (i as usize) < n {
            let c = at(i);
            let prev = at(i - 1);
            let next = at(i + 1);
            let next2 = at(i + 2);
            // Skip duplicate adjacent letters except C.
            if c == prev && c != b'C' {
                i += 1;
                continue;
            }
            match c {
                b'A' | b'E' | b'I' | b'O' | b'U'
                    if i == 0 => {
                        out.push(c as char);
                    }
                b'B'
                    // Silent terminal B after M ("lamb", "climb").
                    if !(prev == b'M' && i as usize == n - 1) => {
                        out.push('B');
                    }
                b'C' => {
                    if next == b'I' && next2 == b'A' {
                        out.push('X');
                    } else if next == b'H' {
                        if prev == b'S' {
                            out.push('K'); // "sch"
                        } else {
                            out.push('X');
                        }
                        i += 1; // consume the H
                    } else if matches!(next, b'I' | b'E' | b'Y') {
                        out.push('S');
                    } else {
                        out.push('K');
                    }
                }
                b'D' => {
                    if next == b'G' && matches!(next2, b'E' | b'Y' | b'I') {
                        out.push('J');
                        i += 1; // consume the G
                    } else {
                        out.push('T');
                    }
                }
                b'F' => out.push('F'),
                b'G' => {
                    let silent_gh = next == b'H' && !is_vowel(next2) && (i as usize + 2) <= n;
                    let gn = next == b'N';
                    if silent_gh && next2 != 0 {
                        // "gh" followed by consonant: silent ("night").
                    } else if next == b'H' && next2 == 0 {
                        // terminal "gh": silent ("though").
                        i += 1;
                    } else if gn {
                        // "gn" / "gned": silent G.
                    } else if matches!(next, b'I' | b'E' | b'Y') {
                        out.push('J');
                    } else {
                        out.push('K');
                    }
                }
                b'H' => {
                    // Silent after vowel with no following vowel, and inside
                    // digraphs already consumed (CH/GH/PH/SH/TH).
                    let after_varson = matches!(prev, b'C' | b'S' | b'P' | b'T' | b'G');
                    if is_vowel(prev) && !is_vowel(next) {
                        // silent
                    } else if after_varson {
                        // digraph handled by the consonant branch
                    } else {
                        out.push('H');
                    }
                }
                b'J' => out.push('J'),
                b'K'
                    if prev != b'C' => {
                        out.push('K');
                    }
                b'L' => out.push('L'),
                b'M' => out.push('M'),
                b'N' => out.push('N'),
                b'P' => {
                    if next == b'H' {
                        out.push('F');
                        i += 1;
                    } else {
                        out.push('P');
                    }
                }
                b'Q' => out.push('K'),
                b'R' => out.push('R'),
                b'S' => {
                    if next == b'H' {
                        out.push('X');
                        i += 1;
                    } else if next == b'I' && matches!(next2, b'O' | b'A') {
                        out.push('X');
                    } else {
                        out.push('S');
                    }
                }
                b'T' => {
                    if next == b'I' && matches!(next2, b'O' | b'A') {
                        out.push('X');
                    } else if next == b'H' {
                        out.push('0'); // theta
                        i += 1;
                    } else if !(next == b'C' && next2 == b'H') {
                        out.push('T');
                    }
                }
                b'V' => out.push('F'),
                b'W'
                    if is_vowel(next) => {
                        out.push('W');
                    }
                b'X' => out.push_str("KS"),
                b'Y'
                    if is_vowel(next) => {
                        out.push('Y');
                    }
                b'Z' => out.push('S'),
                _ => {}
            }
            i += 1;
        }
        out
    }
}

impl PhoneticEncoder for Metaphone {
    fn encode_word(&self, word: &str) -> String {
        let letters: Vec<u8> = word
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .map(|c| c.to_ascii_uppercase() as u8)
            .collect();
        if letters.is_empty() {
            return String::new();
        }
        Self::transform(&letters)
    }

    fn name(&self) -> &'static str {
        "Metaphone"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_values() {
        let m = Metaphone;
        for (word, code) in [
            // TH encodes as theta ('0'), so Thompson opens with it.
            ("Thompson", "0MPSN"),
            ("metaphone", "MTFN"),
            ("discrimination", "TSKRMNXN"),
            ("school", "SKL"),
            ("thought", "0T"),
            ("phone", "FN"),
            ("aggregate", "AKRKT"),
            ("lamb", "LM"),
            ("xylophone", "SLFN"),
        ] {
            assert_eq!(m.encode_word(word), code, "{word}");
        }
    }

    #[test]
    fn homophones_collapse() {
        let m = Metaphone;
        for (a, b) in [
            ("write", "right"),
            ("knight", "night"),
            ("sea", "see"),
            ("hear", "here"),
            ("four", "for"),
            ("know", "no"),
            ("their", "there"),
        ] {
            assert_eq!(m.encode_word(a), m.encode_word(b), "{a}/{b}");
        }
    }

    #[test]
    fn more_homophones_collapse() {
        let m = Metaphone;
        for (a, b) in
            [("buy", "by"), ("new", "knew"), ("weak", "week"), ("meet", "meat"), ("wait", "weight")]
        {
            assert_eq!(m.encode_word(a), m.encode_word(b), "{a}/{b}");
        }
    }

    #[test]
    fn initial_cluster_exceptions() {
        let m = Metaphone;
        assert_eq!(m.encode_word("gnome"), m.encode_word("nome"));
        assert_eq!(m.encode_word("pneumatic").chars().next(), Some('N'));
        assert_eq!(m.encode_word("wrack"), m.encode_word("rack"));
        assert!(m.encode_word("xenon").starts_with('S'));
    }

    #[test]
    fn distinct_words_stay_distinct() {
        let m = Metaphone;
        assert_ne!(m.encode_word("door"), m.encode_word("wall"));
        assert_ne!(m.encode_word("open"), m.encode_word("close"));
    }

    #[test]
    fn empty_input() {
        assert_eq!(Metaphone.encode_word(""), "");
        assert_eq!(Metaphone.encode_word("42"), "");
    }

    proptest! {
        #[test]
        fn output_alphabet(word in "[a-zA-Z]{1,20}") {
            let code = Metaphone.encode_word(&word);
            prop_assert!(code.chars().all(|c| c.is_ascii_uppercase() || c == '0'), "{}", code);
        }

        #[test]
        fn deterministic_and_case_insensitive(word in "[a-z]{1,16}") {
            let lower = Metaphone.encode_word(&word);
            let upper = Metaphone.encode_word(&word.to_uppercase());
            prop_assert_eq!(lower, upper);
        }
    }
}
