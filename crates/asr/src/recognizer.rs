//! The [`Asr`] trait and the [`TrainedAsr`] pipeline implementation.

use mvp_audio::Waveform;
use mvp_dsp::mfcc::FeatureMatrix;
use mvp_phonetics::Phoneme;

use crate::am::{AcousticModel, AmScratch, QuantizedAcousticModel};
use crate::ctc::{ctc_loss_and_grad, RunAccumulator};
use crate::decoder::Decoder;
use crate::features::{FeatureFrontEnd, FrontEndScratch, FrontEndStream};

/// A speech recogniser: audio in, transcription out.
///
/// The detection system treats every ASR — target or auxiliary — through
/// this interface only, mirroring the paper's claim that MVP-EARS needs no
/// access to model internals at detection time.
pub trait Asr: Send + Sync {
    /// A short stable identifier (e.g. `"DS0"`).
    fn name(&self) -> &str;

    /// Transcribes `wave` to lower-case text (empty for silent audio).
    fn transcribe(&self, wave: &Waveform) -> String;
}

/// A fully assembled simulated ASR: front end → acoustic model → decoder.
///
/// A pipeline carries an optional int8 *precision variant* of its
/// acoustic model (see [`TrainedAsr::quantize`]). When present, every
/// forward/transcription path runs the quantized model; the training,
/// attack and gradient paths always use the f64 weights, which is the
/// PVP threat model — the attacker optimises against full precision and
/// the cheap low-precision sibling votes independently.
#[derive(Debug, Clone)]
pub struct TrainedAsr {
    name: String,
    frontend: FeatureFrontEnd,
    am: AcousticModel,
    decoder: Decoder,
    qam: Option<QuantizedAcousticModel>,
}

impl TrainedAsr {
    /// Assembles a pipeline from trained parts.
    pub fn new(
        name: impl Into<String>,
        frontend: FeatureFrontEnd,
        am: AcousticModel,
        decoder: Decoder,
    ) -> TrainedAsr {
        TrainedAsr { name: name.into(), frontend, am, decoder, qam: None }
    }

    /// The feature front end (exposed for attacks and diagnostics).
    pub fn frontend(&self) -> &FeatureFrontEnd {
        &self.frontend
    }

    /// The acoustic model.
    pub fn acoustic_model(&self) -> &AcousticModel {
        &self.am
    }

    /// The int8 precision variant, if this pipeline carries one.
    pub fn quantized_model(&self) -> Option<&QuantizedAcousticModel> {
        self.qam.as_ref()
    }

    /// Short precision label for tables and logs: `"int8"` or `"f64"`.
    pub fn precision(&self) -> &'static str {
        if self.qam.is_some() {
            "int8"
        } else {
            "f64"
        }
    }

    /// The word decoder.
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// An int8 precision variant of this pipeline: the acoustic model is
    /// quantized post-training, calibrated on the features of
    /// `calibration` (benign audio), and the clone is renamed
    /// `"<name>-I8"`. Front end and decoder are shared unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` produces no feature frames.
    pub fn quantize(&self, calibration: &[&Waveform]) -> TrainedAsr {
        let mut feats = FeatureMatrix::zeros(0, self.frontend.dim());
        for wave in calibration {
            let f = self.frontend.features(wave);
            for row in f.rows() {
                feats.push_row(row);
            }
        }
        let qam = QuantizedAcousticModel::quantize(&self.am, &feats);
        self.clone().with_quantized(qam)
    }

    /// Attaches a prepared precision variant (the persistence path; most
    /// callers want [`quantize`](Self::quantize)). Renames the pipeline
    /// with the `-I8` suffix unless it already carries one.
    ///
    /// # Panics
    ///
    /// Panics if the variant's dimensionality does not match the front
    /// end's.
    pub fn with_quantized(mut self, qam: QuantizedAcousticModel) -> TrainedAsr {
        assert_eq!(qam.dim(), self.frontend.dim(), "quantized model dimension mismatch");
        if !self.name.ends_with("-I8") {
            self.name.push_str("-I8");
        }
        self.qam = Some(qam);
        self
    }

    /// Runs the acoustic model all transcription paths share: the int8
    /// variant when present, the f64 model otherwise.
    fn am_forward(&self, feats: &FeatureMatrix, scratch: &mut AmScratch, out: &mut FeatureMatrix) {
        match &self.qam {
            Some(qam) => qam.logit_matrix_into(feats, scratch, out),
            None => self.am.logit_matrix_into(feats, scratch, out),
        }
    }

    /// Per-frame logits over phoneme classes for `wave` (through the
    /// precision variant when present).
    pub fn logits(&self, wave: &Waveform) -> FeatureMatrix {
        let mut out = FeatureMatrix::default();
        self.am_forward(&self.frontend.features(wave), &mut AmScratch::default(), &mut out);
        out
    }

    /// Transcribes a whole micro-batch. Produces exactly what
    /// [`Asr::transcribe`] would per waveform, in order.
    pub fn transcribe_batch(&self, waves: &[&Waveform]) -> Vec<String> {
        self.transcribe_batch_with(waves, &mut AsrScratch::default())
    }

    /// Transcribes a micro-batch through a caller-owned scratch plan.
    ///
    /// Every intermediate — widened samples, MFCC workspace, stacked
    /// features, logit matrix, acoustic-model activations — lives in
    /// `scratch`, so a long-lived caller (mvp-serve's per-ASR workers)
    /// performs zero steady-state allocation per batch once the buffers
    /// have grown to the working-set size.
    pub fn transcribe_batch_with(
        &self,
        waves: &[&Waveform],
        scratch: &mut AsrScratch,
    ) -> Vec<String> {
        waves
            .iter()
            .map(|wave| {
                if wave.is_empty() {
                    return String::new();
                }
                {
                    let _span = mvp_obs::span!("asr.features");
                    wave.copy_to_f64(&mut scratch.samples);
                    self.frontend.features_into(
                        &scratch.samples,
                        &mut scratch.frontend,
                        &mut scratch.feats,
                    );
                    self.am_forward(&scratch.feats, &mut scratch.am, &mut scratch.logits);
                }
                let _span = mvp_obs::span!("asr.decode");
                self.decoder.decode(&scratch.logits)
            })
            .collect()
    }

    /// Feeds a chunk of widened samples into `stream`, advancing MFCCs,
    /// context stacking, the logit matrix and the greedy prefix decode as
    /// far as the new samples allow. Returns the number of newly decoded
    /// logit frames.
    ///
    /// Any chunking of a signal — including one-sample chunks — yields,
    /// after [`stream_finish`](Self::stream_finish), exactly the transcript
    /// of [`Asr::transcribe`] on the whole signal.
    pub fn stream_push(&self, stream: &mut AsrStream, chunk: &[f64]) -> usize {
        stream.n_samples += chunk.len();
        stream.feats.reset(0, self.frontend.dim());
        stream.frontend.push(&self.frontend, chunk, &mut stream.feats);
        self.extend_with_frames(stream)
    }

    /// [`stream_push`](Self::stream_push) for raw `f32` samples, widened
    /// through the stream's own buffer exactly as
    /// [`Waveform::copy_to_f64`] widens them.
    pub fn stream_push_f32(&self, stream: &mut AsrStream, chunk: &[f32]) -> usize {
        let mut samples = std::mem::take(&mut stream.samples);
        samples.clear();
        samples.extend(chunk.iter().map(|&s| s as f64));
        let n = self.stream_push(stream, &samples);
        stream.samples = samples;
        n
    }

    /// Advances the logit matrix and prefix decode over the stacked rows
    /// currently staged in `stream.feats` (the rows the front end completed
    /// in the last push). Runs the same batched
    /// [`AcousticModel::logit_matrix_into`] entry point as the one-shot
    /// path — its rows are bit-identical at any batch size, which is what
    /// makes chunked and batch logits agree exactly.
    fn extend_with_frames(&self, stream: &mut AsrStream) -> usize {
        self.am_forward(&stream.feats, &mut stream.am, &mut stream.logits);
        for row in stream.logits.rows() {
            stream.runs.push_logits_row(row);
        }
        stream.logits.n_frames()
    }

    /// The running best transcript of the frames decoded so far — the
    /// incremental detector polls this between chunks.
    pub fn stream_transcript(&self, stream: &AsrStream) -> String {
        self.decoder.decode_runs(&stream.runs)
    }

    /// Flushes the trailing partial frames, returns the final transcript
    /// and resets `stream` for the next utterance.
    pub fn stream_finish(&self, stream: &mut AsrStream) -> String {
        stream.feats.reset(0, self.frontend.dim());
        stream.frontend.finish(&self.frontend, &mut stream.feats);
        self.extend_with_frames(stream);
        let text = self.decoder.decode_runs(&stream.runs);
        stream.reset();
        text
    }

    /// Converts a text command into the CTC target sequence using the
    /// built-in lexicon. Silence symbols (word boundaries) are *kept* —
    /// like DeepSpeech's space character they are regular CTC symbols,
    /// distinct from the blank.
    pub fn target_indices(text: &str) -> Vec<usize> {
        let lex = mvp_phonetics::Lexicon::builtin();
        let with_sil = lex.pronounce_sentence(text);
        if with_sil.len() <= 2 {
            return Vec::new(); // only the framing silences: no words
        }
        with_sil.into_iter().map(Phoneme::index).collect()
    }

    /// CTC loss of `wave` against a target phoneme index sequence.
    pub fn ctc_loss(&self, wave: &Waveform, target: &[usize]) -> f64 {
        ctc_loss_and_grad(&self.logits(wave), target).0
    }

    /// CTC loss and its gradient with respect to the waveform samples —
    /// the full differentiable chain the white-box attack optimises:
    /// CTC → logits → acoustic model → stacked MFCC features → samples.
    pub fn ctc_loss_and_input_grad(&self, wave: &Waveform, target: &[usize]) -> (f64, Vec<f64>) {
        self.attack_loss_and_input_grad(wave, target, 0.0)
    }

    /// Attack loss: CTC plus `align_weight ×` a frame cross-entropy against
    /// a proportionally stretched target alignment, with the combined
    /// gradient w.r.t. the waveform samples.
    ///
    /// The auxiliary term encourages *multi-frame* phoneme runs — plain CTC
    /// is satisfied by single-frame emissions that real decoders (including
    /// this crate's, via its min-run filter) treat as transition noise.
    pub fn attack_loss_and_input_grad(
        &self,
        wave: &Waveform,
        target: &[usize],
        align_weight: f64,
    ) -> (f64, Vec<f64>) {
        let (feats, cache) = self.frontend.features_with_cache(wave);
        let logits = self.am.logit_matrix(&feats);
        let (mut loss, mut d_logits) = ctc_loss_and_grad(&logits, target);
        if !loss.is_finite() {
            return (loss, vec![0.0; wave.len()]);
        }
        if align_weight > 0.0 && !logits.is_empty() {
            let align = stretch_alignment(target, logits.n_frames());
            let inv_t = 1.0 / logits.n_frames() as f64;
            for (t, row) in logits.rows().enumerate() {
                let probs = crate::am::softmax(row);
                let label = align[t];
                loss -= align_weight * probs[label].max(1e-300).ln() * inv_t;
                let d_row = d_logits.row_mut(t);
                for (k, &p) in probs.iter().enumerate() {
                    d_row[k] += align_weight * (p - f64::from(k == label)) * inv_t;
                }
            }
        }
        let mut am_scratch = AmScratch::default();
        let mut d_feats = FeatureMatrix::zeros(feats.n_frames(), feats.dim());
        for t in 0..feats.n_frames() {
            self.am.backward_to_features_into(
                feats.row(t),
                d_logits.row(t),
                &mut am_scratch,
                d_feats.row_mut(t),
            );
        }
        (loss, self.frontend.backward(&cache, &d_feats))
    }
}

/// Reusable workspace for [`TrainedAsr::transcribe_batch_with`]: the full
/// per-item intermediate state of the pipeline, owned by the caller so
/// repeated batches reuse every allocation.
#[derive(Debug, Clone, Default)]
pub struct AsrScratch {
    samples: Vec<f64>,
    frontend: FrontEndScratch,
    feats: FeatureMatrix,
    logits: FeatureMatrix,
    am: AmScratch,
}

/// Incremental transcription state for one utterance through one
/// [`TrainedAsr`] — the streaming counterpart of [`AsrScratch`]. Drive it
/// with [`TrainedAsr::stream_push`] / [`TrainedAsr::stream_finish`];
/// buffers keep their capacity across utterances, so a long-lived stream
/// (mvp-serve's per-ASR workers hold one per in-flight stream) allocates
/// nothing in steady state once warm.
#[derive(Debug, Clone, Default)]
pub struct AsrStream {
    samples: Vec<f64>,
    frontend: FrontEndStream,
    /// Stacked rows completed by the most recent push (not the history —
    /// the accumulated state lives in `runs`).
    feats: FeatureMatrix,
    /// Logits of the most recent push's rows.
    logits: FeatureMatrix,
    am: AmScratch,
    runs: RunAccumulator,
    n_samples: usize,
}

impl AsrStream {
    /// Clears all carried state, ready for a fresh utterance.
    pub fn reset(&mut self) {
        self.frontend.reset();
        self.runs.reset();
        self.n_samples = 0;
    }

    /// Total samples pushed since the last reset.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Logit frames decoded since the last reset.
    pub fn frames_decoded(&self) -> usize {
        self.runs.n_frames()
    }
}

/// Distributes `n_frames` frames across the target symbols proportionally
/// to their nominal phoneme durations.
fn stretch_alignment(target: &[usize], n_frames: usize) -> Vec<usize> {
    assert!(!target.is_empty(), "empty target");
    let durations: Vec<f64> =
        target.iter().map(|&i| f64::from(Phoneme::from_index(i).acoustics().duration_ms)).collect();
    let total: f64 = durations.iter().sum();
    let mut bounds = Vec::with_capacity(target.len());
    let mut acc = 0.0;
    for &d in &durations {
        acc += d;
        bounds.push(acc / total);
    }
    (0..n_frames)
        .map(|t| {
            let frac = (t as f64 + 0.5) / n_frames as f64;
            let k = bounds.iter().position(|&b| frac <= b).unwrap_or(target.len() - 1);
            target[k]
        })
        .collect()
}

impl Asr for TrainedAsr {
    fn name(&self) -> &str {
        &self.name
    }

    fn transcribe(&self, wave: &Waveform) -> String {
        if wave.is_empty() {
            return String::new();
        }
        let logits = {
            let _span = mvp_obs::span!("asr.features");
            self.logits(wave)
        };
        let _span = mvp_obs::span!("asr.decode");
        self.decoder.decode(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_indices_keep_word_boundaries() {
        let t = TrainedAsr::target_indices("open the door");
        assert!(!t.is_empty());
        // Framing and inter-word silences: 4 for a three-word phrase.
        let sils = t.iter().filter(|&&i| i == Phoneme::SIL.index()).count();
        assert_eq!(sils, 4);
        // Never the blank.
        assert!(t.iter().all(|&i| i < Phoneme::COUNT));
    }

    #[test]
    fn target_indices_empty_text() {
        assert!(TrainedAsr::target_indices("").is_empty());
    }

    #[test]
    fn transcribe_batch_matches_one_shot() {
        use crate::profile::AsrProfile;
        use mvp_audio::synth::{SpeakerProfile, Synthesizer};
        use mvp_audio::Waveform;
        use mvp_phonetics::Lexicon;

        let asr = AsrProfile::Ds0.trained();
        let synth = Synthesizer::new(16_000);
        let lex = Lexicon::builtin();
        let texts = ["open the door", "good morning", "the man walked the street"];
        let waves: Vec<Waveform> =
            texts.iter().map(|t| synth.synthesize(&lex, t, &SpeakerProfile::default()).0).collect();
        let mut refs: Vec<&Waveform> = waves.iter().collect();
        let empty = Waveform::new(16_000);
        refs.push(&empty);
        let batch = asr.transcribe_batch(&refs);
        assert_eq!(batch.len(), 4);
        for (wave, text) in refs.iter().zip(&batch) {
            assert_eq!(*text, asr.transcribe(wave));
        }
    }

    #[test]
    fn streaming_transcription_matches_one_shot() {
        use crate::profile::AsrProfile;
        use mvp_audio::synth::{SpeakerProfile, Synthesizer};
        use mvp_phonetics::Lexicon;

        let asr = AsrProfile::Ds0.trained();
        let synth = Synthesizer::new(16_000);
        let lex = Lexicon::builtin();
        let (wave, _) = synth.synthesize(&lex, "open the front door", &SpeakerProfile::default());
        let reference = asr.transcribe(&wave);
        assert!(!reference.is_empty());
        let samples = wave.to_f64();

        let mut stream = AsrStream::default();
        // Deterministic random chunk boundaries, reusing the stream across
        // trials to prove stream_finish clears every carry.
        let mut seed = 0xDEAD_BEEFu64;
        for trial in 0..3 {
            let mut pos = 0;
            while pos < samples.len() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let len = 1 + (seed % 1200) as usize;
                let end = (pos + len).min(samples.len());
                asr.stream_push(&mut stream, &samples[pos..end]);
                pos = end;
            }
            assert_eq!(asr.stream_finish(&mut stream), reference, "trial {trial}");
        }
        // f32 ingress widens exactly like copy_to_f64.
        for chunk in wave.samples().chunks(777) {
            asr.stream_push_f32(&mut stream, chunk);
        }
        assert_eq!(asr.stream_finish(&mut stream), reference);
        // Empty stream decodes to the empty transcript, like empty audio.
        assert_eq!(asr.stream_finish(&mut stream), "");
    }

    #[test]
    fn running_transcript_converges_to_final() {
        use crate::profile::AsrProfile;
        use mvp_audio::synth::{SpeakerProfile, Synthesizer};
        use mvp_phonetics::Lexicon;

        let asr = AsrProfile::Ds0.trained();
        let synth = Synthesizer::new(16_000);
        let (wave, _) =
            synth.synthesize(&Lexicon::builtin(), "good morning", &SpeakerProfile::default());
        let samples = wave.to_f64();
        let mut stream = AsrStream::default();
        let mut runnings = Vec::new();
        for chunk in samples.chunks(1600) {
            asr.stream_push(&mut stream, chunk);
            runnings.push(asr.stream_transcript(&stream));
        }
        assert!(stream.frames_decoded() > 0);
        assert_eq!(stream.n_samples(), samples.len());
        let fin = asr.stream_finish(&mut stream);
        assert_eq!(fin, asr.transcribe(&wave));
        // The running estimate is a prefix-ish view: by the last chunk it
        // must already contain the first decoded word.
        let first_word = fin.split_whitespace().next().unwrap();
        assert!(
            runnings.last().unwrap().contains(first_word),
            "running {:?} vs final {fin:?}",
            runnings.last().unwrap()
        );
    }

    const BENIGN_PHRASES: [&str; 4] =
        ["open the door", "good morning", "turn on the light", "call me back now"];

    /// One shared (f64, int8) pair of the same pipeline; quantization is
    /// deterministic, so caching it keeps the property test fast.
    fn precision_pair() -> &'static (std::sync::Arc<TrainedAsr>, TrainedAsr) {
        use crate::profile::AsrProfile;
        use mvp_audio::synth::{SpeakerProfile, Synthesizer};
        use mvp_phonetics::Lexicon;

        static PAIR: std::sync::OnceLock<(std::sync::Arc<TrainedAsr>, TrainedAsr)> =
            std::sync::OnceLock::new();
        PAIR.get_or_init(|| {
            let asr = AsrProfile::Ds0.trained();
            let synth = Synthesizer::new(16_000);
            let lex = Lexicon::builtin();
            let calibration: Vec<_> = BENIGN_PHRASES
                .iter()
                .map(|t| synth.synthesize(&lex, t, &SpeakerProfile::default()).0)
                .collect();
            let refs: Vec<_> = calibration.iter().collect();
            let quantized = asr.quantize(&refs);
            (asr, quantized)
        })
    }

    proptest::proptest! {
        /// PVP's load-bearing property: on *benign* audio the int8
        /// precision variant transcribes (near-)identically to its f64
        /// parent — similarity stays above the detector's benign
        /// operating region (fitted thresholds sit below 0.6), so the
        /// cheap ensemble member never flags clean speech on its own.
        #[test]
        fn quantized_variant_agrees_with_f64_on_benign_audio(
            phrase_idx in 0usize..4,
            speaker_seed in 0u64..50,
        ) {
            use mvp_audio::synth::{SpeakerProfile, Synthesizer};
            use mvp_phonetics::Lexicon;

            let (asr, quantized) = precision_pair();
            let synth = Synthesizer::new(16_000);
            let speaker = SpeakerProfile {
                seed: speaker_seed,
                pitch_hz: 100.0 + (speaker_seed % 7) as f32 * 8.0,
                ..SpeakerProfile::default()
            };
            let (wave, _) =
                synth.synthesize(&Lexicon::builtin(), BENIGN_PHRASES[phrase_idx], &speaker);
            let full = asr.transcribe(&wave);
            let cheap = quantized.transcribe(&wave);
            let sim = mvp_textsim::levenshtein_similarity(&full, &cheap);
            proptest::prop_assert!(
                sim >= 0.6,
                "int8 vs f64 transcripts diverged: {full:?} vs {cheap:?} (sim {sim})"
            );
        }
    }

    #[test]
    fn stretched_alignment_is_monotone_and_covers_target() {
        let target = TrainedAsr::target_indices("open the door");
        let align = super::stretch_alignment(&target, 120);
        assert_eq!(align.len(), 120);
        // Every target symbol appears, in order.
        let mut collapsed = vec![align[0]];
        for &a in &align[1..] {
            if *collapsed.last().unwrap() != a {
                collapsed.push(a);
            }
        }
        assert_eq!(collapsed, target);
        // Long vowels get more frames than the framing silences.
        let vowel = target.iter().find(|&&i| Phoneme::from_index(i).is_vowel()).unwrap();
        let vowel_frames = align.iter().filter(|&&a| a == *vowel).count();
        assert!(vowel_frames >= 2);
    }
}
