#![warn(missing_docs)]

//! Simulated automatic speech recognition.
//!
//! A complete, self-contained ASR pipeline mirroring the four stages of the
//! paper's Figure 2 — feature extraction, acoustic feature recognition,
//! phoneme assembling and language generation:
//!
//! 1. [`features`]: MFCC extraction with per-profile geometry, context
//!    stacking and frame subsampling (all differentiable end to end);
//! 2. [`am`]: a trainable frame-level acoustic model (affine + softmax over
//!    the ARPAbet classes) with SGD training on aligned synthetic speech;
//! 3. [`ctc`]: greedy best-path decoding plus the full CTC forward-backward
//!    loss *with gradients*, which the white-box attack optimises;
//! 4. [`decoder`] + [`lm`]: lexicon-driven phoneme-to-word assembly with a
//!    bigram language model (this is where homophone choices diverge
//!    between ASRs);
//! 5. [`profile`]: five trained-model profiles — DS0, DS1, GCS, AT and a
//!    deliberately weak KALDI — diverse in features, context, training data
//!    and decoding, reproducing the ASR diversity the paper's detection
//!    idea rests on.
//!
//! # Examples
//!
//! ```no_run
//! use mvp_asr::profile::AsrProfile;
//! use mvp_asr::Asr;
//! use mvp_audio::synth::{SpeakerProfile, Synthesizer};
//! use mvp_phonetics::Lexicon;
//!
//! let asr = AsrProfile::Ds0.trained();
//! let synth = Synthesizer::new(16_000);
//! let (wave, _) = synth.synthesize(&Lexicon::builtin(), "open the door", &SpeakerProfile::default());
//! let text = asr.transcribe(&wave);
//! assert!(text.contains("door"));
//! ```

pub mod am;
pub mod ctc;
pub mod decoder;
pub mod features;
pub mod lm;
pub mod persist;
pub mod profile;
pub mod recognizer;

pub use am::{AcousticModel, AmScratch, QuantizedAcousticModel};
pub use ctc::{ctc_loss_and_grad, greedy_phonemes, RunAccumulator};
pub use decoder::{Decoder, DecoderConfig};
pub use features::{FeatureFrontEnd, FrontEndConfig, FrontEndScratch, FrontEndStream};
pub use lm::BigramLm;
pub use persist::QuantizedAsr;
pub use profile::{AsrProfile, PrecisionVariant, MODEL_DIR_ENV};
pub use recognizer::{Asr, AsrScratch, AsrStream, TrainedAsr};
