//! The five diverse ASR profiles and their training harness.
//!
//! Diversity axes mirror the paper's Section IV-D discussion:
//!
//! | Profile | Mirrors | Feature geometry | Context | Subsample | Training data |
//! |---|---|---|---|---|---|
//! | `Ds0` | DeepSpeech v0.1.0 (the attack target) | 25 ms / 10 ms, 26 mel, 13 cep | ±1 | 1 | seed A |
//! | `Ds1` | DeepSpeech v0.1.1 (same architecture, retrained) | identical to DS0 | ±1 | 1 | seed B |
//! | `Gcs` | Google Cloud Speech (LSTM: long context) | 20 ms / 10 ms, 40 mel, 13 cep | ±3 | 1 | seed C |
//! | `At` | Amazon Transcribe (unknown internals) | 32 ms / 12 ms, 32 mel, 16 cep | ±2 | 1 | seed D |
//! | `Kaldi` | Kaldi (deliberately weak auxiliary, §V-E note) | 25 ms / 10 ms, 13 mel, 8 cep | 0 | 3 | small, noisy |
//! | `KaldiVariant` | the Kaldi `--frame-subsampling-factor` variant of §III | as Kaldi | 0 | 1 | as Kaldi |
//!
//! Training is deterministic per profile and cached process-wide, so tests
//! and experiment binaries pay the (few-second) cost once.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use mvp_artifact::{ArtifactError, Persist};
use mvp_corpus::{command_phrases, CorpusBuilder, CorpusConfig, SentenceGenerator};
use mvp_dsp::mfcc::{FeatureMatrix, MfccConfig};
use mvp_dsp::Window;
use mvp_phonetics::{Lexicon, Phoneme};

use crate::am::{AcousticModel, TrainConfig};
use crate::decoder::{Decoder, DecoderConfig};
use crate::features::{FeatureFrontEnd, FrontEndConfig};
use crate::lm::BigramLm;
use crate::recognizer::{Asr, TrainedAsr};

/// Environment variable naming a directory of persisted profile artifacts.
///
/// When set, [`AsrProfile::trained`] backs its process-wide cache with the
/// directory: profiles load from disk instead of retraining, and freshly
/// trained profiles are saved there for the next process.
pub const MODEL_DIR_ENV: &str = "MVP_EARS_MODEL_DIR";

/// One of the simulated ASR systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsrProfile {
    /// DeepSpeech v0.1.0 analogue — the attack target model.
    Ds0,
    /// DeepSpeech v0.1.1 analogue — same architecture, different training.
    Ds1,
    /// Google Cloud Speech analogue — wide temporal context.
    Gcs,
    /// Amazon Transcribe analogue — distinct feature geometry.
    At,
    /// Weak Kaldi analogue (frame subsampling 3, low feature resolution).
    Kaldi,
    /// The Kaldi variant with `--frame-subsampling-factor` set to 1
    /// (Section III transferability probe).
    KaldiVariant,
}

/// Everything needed to train one profile.
#[derive(Debug, Clone)]
pub struct ProfileSpec {
    /// Display name.
    pub name: &'static str,
    /// Front-end geometry.
    pub frontend: FrontEndConfig,
    /// Acoustic-model training hyper-parameters.
    pub train: TrainConfig,
    /// Seed of the training corpus (different seeds = different data).
    pub corpus_seed: u64,
    /// Number of training sentences.
    pub corpus_size: usize,
    /// Probability of noise augmentation during training.
    pub noise_prob: f64,
    /// Seed of the LM training sample.
    pub lm_seed: u64,
    /// Number of LM training sentences.
    pub lm_size: usize,
    /// Decoder tuning.
    pub decoder: DecoderConfig,
}

impl AsrProfile {
    /// All profiles the workspace trains.
    pub const ALL: [AsrProfile; 6] = [
        AsrProfile::Ds0,
        AsrProfile::Ds1,
        AsrProfile::Gcs,
        AsrProfile::At,
        AsrProfile::Kaldi,
        AsrProfile::KaldiVariant,
    ];

    /// Display name (matches the paper's system notation).
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// The training specification of this profile.
    pub fn spec(self) -> ProfileSpec {
        let mfcc = |frame_len: usize, hop: usize, n_mels: usize, n_cepstra: usize| MfccConfig {
            sample_rate: 16_000,
            frame_len,
            hop,
            n_fft: 512,
            n_mels,
            n_cepstra,
            window: Window::Hann,
            f_min: 50.0,
            f_max: 8_000.0,
            pre_emphasis: 0.97,
            log_floor: 1e-10,
        };
        match self {
            AsrProfile::Ds0 => ProfileSpec {
                name: "DS0",
                frontend: FrontEndConfig { mfcc: mfcc(400, 160, 26, 13), context: 1, subsample: 1 },
                train: TrainConfig { seed: 100, hidden: 64, ..TrainConfig::default() },
                corpus_seed: 1_000,
                corpus_size: 70,
                noise_prob: 0.4,
                lm_seed: 100,
                lm_size: 400,
                decoder: DecoderConfig::default(),
            },
            AsrProfile::Ds1 => ProfileSpec {
                name: "DS1",
                // Same architecture as DS0; only training data and seeds
                // differ (v0.1.0 vs v0.1.1).
                frontend: FrontEndConfig { mfcc: mfcc(400, 160, 26, 13), context: 1, subsample: 1 },
                train: TrainConfig { seed: 200, hidden: 64, ..TrainConfig::default() },
                corpus_seed: 2_000,
                corpus_size: 70,
                noise_prob: 0.4,
                lm_seed: 200,
                lm_size: 400,
                decoder: DecoderConfig::default(),
            },
            AsrProfile::Gcs => ProfileSpec {
                name: "GCS",
                frontend: FrontEndConfig { mfcc: mfcc(320, 160, 40, 13), context: 3, subsample: 1 },
                train: TrainConfig { seed: 300, hidden: 96, ..TrainConfig::default() },
                corpus_seed: 3_000,
                corpus_size: 80,
                noise_prob: 0.5,
                lm_seed: 300,
                lm_size: 500,
                decoder: DecoderConfig::default(),
            },
            AsrProfile::At => ProfileSpec {
                name: "AT",
                frontend: FrontEndConfig { mfcc: mfcc(512, 192, 32, 16), context: 2, subsample: 1 },
                train: TrainConfig { seed: 400, hidden: 80, ..TrainConfig::default() },
                corpus_seed: 4_000,
                corpus_size: 80,
                noise_prob: 0.5,
                lm_seed: 400,
                lm_size: 500,
                decoder: DecoderConfig::default(),
            },
            AsrProfile::Kaldi => ProfileSpec {
                name: "KALDI",
                frontend: FrontEndConfig { mfcc: mfcc(400, 160, 13, 8), context: 0, subsample: 3 },
                train: TrainConfig { seed: 500, epochs: 4, hidden: 24, ..TrainConfig::default() },
                corpus_seed: 5_000,
                corpus_size: 25,
                noise_prob: 0.9,
                lm_seed: 500,
                lm_size: 150,
                decoder: DecoderConfig { min_run: 1, ..DecoderConfig::default() },
            },
            AsrProfile::KaldiVariant => {
                let mut spec = AsrProfile::Kaldi.spec();
                spec.name = "KALDI-SUB1";
                spec.frontend.subsample = 1;
                spec
            }
        }
    }

    /// Trains this profile from scratch (deterministic; a few seconds).
    pub fn train(self) -> TrainedAsr {
        let spec = self.spec();
        let frontend = FeatureFrontEnd::new(spec.frontend.clone());

        // 1. Acoustic model on frame-labelled synthetic speech.
        let corpus = CorpusBuilder::new(CorpusConfig {
            size: spec.corpus_size,
            seed: spec.corpus_seed,
            sample_rate: 16_000,
            noise_prob: spec.noise_prob,
            noise_snr_db: (12.0, 28.0),
        })
        .build();
        let mut features = FeatureMatrix::zeros(0, frontend.dim());
        let mut labels: Vec<usize> = Vec::new();
        for utt in corpus.utterances() {
            let feats = frontend.features(&utt.wave);
            for row in 0..feats.n_frames() {
                let center = frontend.frame_center_sample(row);
                let label = utt
                    .alignment
                    .iter()
                    .find(|a| center >= a.start && center < a.end)
                    .map_or(Phoneme::SIL, |a| a.phoneme);
                features.push_row(feats.row(row));
                labels.push(label.index());
            }
        }
        let am = AcousticModel::train(&features, &labels, &spec.train);

        // 2. Language model on this profile's own sentence sample, plus the
        //    assistant command phrases every deployed ASR has seen.
        let mut lm_sentences = SentenceGenerator::new(spec.lm_seed).take_sentences(spec.lm_size);
        for cmd in command_phrases() {
            for _ in 0..3 {
                lm_sentences.push(cmd.to_string());
            }
        }
        let lm = BigramLm::train(lm_sentences.iter().map(String::as_str), 0.05);

        // 3. Decoder over the shared lexicon.
        let decoder = Decoder::new(&Lexicon::builtin(), lm, spec.decoder.clone());
        TrainedAsr::new(spec.name, frontend, am, decoder)
    }

    /// Resolves a display name back to its profile.
    pub fn by_name(name: &str) -> Option<AsrProfile> {
        AsrProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// File name of this profile's artifact inside a model directory.
    pub fn artifact_file_name(self) -> String {
        format!("asr-{}.mvpa", self.name().to_lowercase())
    }

    /// File name of this profile's *quantized* artifact inside a model
    /// directory.
    pub fn quantized_artifact_file_name(self) -> String {
        format!("asr-{}-i8.mvpa", self.name().to_lowercase())
    }

    /// Path of this profile's artifact inside `dir`.
    pub fn artifact_path(self, dir: &Path) -> PathBuf {
        dir.join(self.artifact_file_name())
    }

    /// Loads this profile's persisted pipeline from `dir`.
    ///
    /// Refuses (with the typed [`ArtifactError`]) rather than degrade: a
    /// corrupt, truncated or version-skewed artifact — or one whose stored
    /// profile name does not match — is an error, never a silently wrong
    /// model. A missing file is reported as a `NotFound` I/O error
    /// ([`ArtifactError::is_not_found`]).
    pub fn load(self, dir: &Path) -> Result<TrainedAsr, ArtifactError> {
        let asr = TrainedAsr::load_file(&self.artifact_path(dir))?;
        if asr.name() != self.name() {
            return Err(ArtifactError::SchemaMismatch(format!(
                "artifact holds profile {:?} where {:?} was expected",
                asr.name(),
                self.name()
            )));
        }
        Ok(asr)
    }

    /// Loads this profile from `dir`, training and saving it on a cache
    /// miss (missing file). Any other load failure propagates — a corrupt
    /// artifact is *not* silently replaced, because whoever wrote it may
    /// still be relying on it.
    pub fn load_or_train(self, dir: &Path) -> Result<TrainedAsr, ArtifactError> {
        match self.load(dir) {
            Ok(asr) => Ok(asr),
            Err(e) if e.is_not_found() => {
                let asr = self.train();
                asr.save_file(&self.artifact_path(dir))?;
                Ok(asr)
            }
            Err(e) => Err(e),
        }
    }

    /// The process-wide cached trained instance of this profile, backed by
    /// the artifact directory in [`MODEL_DIR_ENV`] when that is set.
    pub fn trained(self) -> Arc<TrainedAsr> {
        let dir = std::env::var_os(MODEL_DIR_ENV).map(PathBuf::from);
        self.trained_in(dir.as_deref())
    }

    /// [`trained`](Self::trained) with an explicit disk tier.
    ///
    /// With `dir = None` this is a pure in-process cache (train on miss).
    /// With a directory, misses first try the persisted artifact and only
    /// then retrain; fresh models are saved back best-effort. Because this
    /// path is infallible, a *corrupt* artifact here is warned about and
    /// healed by retraining — use [`load`](Self::load) /
    /// [`load_or_train`](Self::load_or_train) where refusal is wanted.
    pub fn trained_in(self, dir: Option<&Path>) -> Arc<TrainedAsr> {
        static CACHE: OnceLock<Mutex<HashMap<AsrProfile, Arc<TrainedAsr>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        // Training panics can poison the lock; the map itself is never left
        // half-updated (single insert), so recover the guard and go on.
        {
            let map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(asr) = map.get(&self) {
                return Arc::clone(asr);
            }
        }
        // Resolve outside the lock: loading takes milliseconds but training
        // takes seconds, and other profiles should not serialise behind it.
        let resolved = match dir {
            Some(dir) => match self.load(dir) {
                Ok(asr) => asr,
                Err(e) => {
                    if !e.is_not_found() {
                        eprintln!(
                            "warning: discarding unusable artifact for {} in {}: {e}",
                            self.name(),
                            dir.display()
                        );
                    }
                    let asr = self.train();
                    if let Err(e) = asr.save_file(&self.artifact_path(dir)) {
                        eprintln!("warning: could not persist {} model: {e}", self.name());
                    }
                    asr
                }
            },
            None => self.train(),
        };
        let trained = Arc::new(resolved);
        let mut map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(map.entry(self).or_insert(trained))
    }

    /// The process-wide cached *int8* variant of this profile, backed by
    /// the artifact directory in [`MODEL_DIR_ENV`] when that is set.
    ///
    /// The variant is the profile's full-precision pipeline carrying a
    /// [`crate::am::QuantizedAcousticModel`] calibrated on a small fixed
    /// benign sample (seed disjoint from every training corpus), so it is
    /// deterministic per profile, exactly like [`trained`](Self::trained).
    pub fn trained_quantized(self) -> Arc<TrainedAsr> {
        let dir = std::env::var_os(MODEL_DIR_ENV).map(PathBuf::from);
        self.trained_quantized_in(dir.as_deref())
    }

    /// [`trained_quantized`](Self::trained_quantized) with an explicit
    /// disk tier, mirroring [`trained_in`](Self::trained_in): `None` is a
    /// pure in-process cache; with a directory, misses first try the
    /// persisted `asr-<name>-i8.mvpa` artifact (healing an unusable one by
    /// re-quantizing, with a warning) and fresh variants are saved back
    /// best-effort.
    pub fn trained_quantized_in(self, dir: Option<&Path>) -> Arc<TrainedAsr> {
        static CACHE: OnceLock<Mutex<HashMap<AsrProfile, Arc<TrainedAsr>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        {
            let map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(asr) = map.get(&self) {
                return Arc::clone(asr);
            }
        }
        let path = dir.map(|d| d.join(self.quantized_artifact_file_name()));
        let loaded =
            path.as_deref().and_then(|p| match crate::persist::QuantizedAsr::load_file(p) {
                Ok(q) if q.as_asr().name() == format!("{}-I8", self.name()) => Some(q.into_asr()),
                Ok(_) => {
                    eprintln!("warning: {} holds another profile; re-quantizing", p.display());
                    None
                }
                Err(e) => {
                    if !e.is_not_found() {
                        eprintln!("warning: discarding unusable int8 artifact for {self}: {e}");
                    }
                    None
                }
            });
        let resolved = loaded.unwrap_or_else(|| {
            let base = self.trained_in(dir);
            let calibration = calibration_corpus();
            let refs: Vec<&mvp_audio::Waveform> =
                calibration.utterances().iter().map(|u| &u.wave).collect();
            let quantized = base.quantize(&refs);
            if let Some(path) = &path {
                if let Err(e) = crate::persist::QuantizedAsr::new(quantized.clone()).save_file(path)
                {
                    eprintln!("warning: could not persist {self} int8 variant: {e}");
                }
            }
            quantized
        });
        let trained = Arc::new(resolved);
        let mut map = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(map.entry(self).or_insert(trained))
    }
}

/// The shared activation-calibration sample: a small clean corpus whose
/// seed is disjoint from every profile's training and LM seeds, so the
/// int8 scales never memorise training audio.
fn calibration_corpus() -> mvp_corpus::SpeechCorpus {
    CorpusBuilder::new(CorpusConfig {
        size: 8,
        seed: 90_909,
        sample_rate: 16_000,
        noise_prob: 0.0,
        noise_snr_db: (12.0, 28.0),
    })
    .build()
}

/// One ensemble member: an ASR profile at a numeric precision.
///
/// The paper's ensemble diversity comes from *architectural* version
/// differences; PVP (PAPERS.md) shows numeric precision is a second, free
/// diversity axis. A `PrecisionVariant` names a point on both axes, so a
/// detection system can mix `DS1@f64` with `DS1@int8` — or run a
/// precision-only ensemble of one architecture at several precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrecisionVariant {
    /// The architectural version.
    pub profile: AsrProfile,
    /// Run the profile's int8 quantized acoustic model instead of f64.
    pub int8: bool,
}

impl PrecisionVariant {
    /// The profile at full f64 precision.
    pub fn f64(profile: AsrProfile) -> PrecisionVariant {
        PrecisionVariant { profile, int8: false }
    }

    /// The profile's int8 quantized variant.
    pub fn int8(profile: AsrProfile) -> PrecisionVariant {
        PrecisionVariant { profile, int8: true }
    }

    /// Display name, e.g. `"DS1"` or `"DS1-I8"`.
    pub fn name(self) -> String {
        if self.int8 {
            format!("{}-I8", self.profile.name())
        } else {
            self.profile.name().to_string()
        }
    }

    /// The process-wide cached trained pipeline of this variant.
    pub fn trained(self) -> Arc<TrainedAsr> {
        if self.int8 {
            self.profile.trained_quantized()
        } else {
            self.profile.trained()
        }
    }
}

impl std::fmt::Display for PrecisionVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl std::fmt::Display for AsrProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizer::Asr;
    use mvp_corpus::{CorpusBuilder, CorpusConfig};
    use mvp_textsim::wer;

    #[test]
    fn specs_are_diverse() {
        let specs: Vec<ProfileSpec> = AsrProfile::ALL.iter().map(|p| p.spec()).collect();
        // DS0 and DS1 share geometry but not training seeds.
        assert_eq!(specs[0].frontend, specs[1].frontend);
        assert_ne!(specs[0].train.seed, specs[1].train.seed);
        assert_ne!(specs[0].corpus_seed, specs[1].corpus_seed);
        // GCS and AT differ from DS0 in feature geometry.
        assert_ne!(specs[2].frontend.mfcc.n_mels, specs[0].frontend.mfcc.n_mels);
        assert_ne!(specs[3].frontend.mfcc.frame_len, specs[0].frontend.mfcc.frame_len);
        // Kaldi subsamples; its variant does not.
        assert_eq!(specs[4].frontend.subsample, 3);
        assert_eq!(specs[5].frontend.subsample, 1);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> =
            AsrProfile::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), AsrProfile::ALL.len());
    }

    #[test]
    fn trained_is_cached() {
        let a = AsrProfile::Ds0.trained();
        let b = AsrProfile::Ds0.trained();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn by_name_round_trips() {
        for p in AsrProfile::ALL {
            assert_eq!(AsrProfile::by_name(p.name()), Some(p));
        }
        assert_eq!(AsrProfile::by_name("DS0-I8"), None);
    }

    #[test]
    fn quantized_variant_is_cached_and_named() {
        let a = AsrProfile::Kaldi.trained_quantized();
        let b = PrecisionVariant::int8(AsrProfile::Kaldi).trained();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.name(), "KALDI-I8");
        assert_eq!(a.precision(), "int8");
        assert!(a.quantized_model().is_some());
        // The f64 cache entry is untouched by quantization.
        let base = PrecisionVariant::f64(AsrProfile::Kaldi).trained();
        assert_eq!(base.precision(), "f64");
        assert_eq!(PrecisionVariant::int8(AsrProfile::Kaldi).name(), "KALDI-I8");
    }

    #[test]
    fn quantized_disk_tier_round_trips() {
        // KaldiVariant: no other test quantizes it, so the in-process
        // cache is guaranteed cold and the disk-tier miss path runs.
        let dir = std::env::temp_dir().join(format!("mvp-quant-tier-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let profile = AsrProfile::KaldiVariant;
        profile.trained().save_file(&profile.artifact_path(&dir)).unwrap();
        let first = profile.trained_quantized_in(Some(&dir));
        let saved = dir.join(profile.quantized_artifact_file_name());
        assert!(saved.exists(), "int8 artifact persisted on the miss path");
        let reloaded = crate::persist::QuantizedAsr::load_file(&saved).unwrap();
        assert_eq!(reloaded.as_asr().name(), first.name());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ds0_transcribes_benign_speech_accurately() {
        let asr = AsrProfile::Ds0.trained();
        // Held-out corpus: seed differs from every training seed.
        let corpus = CorpusBuilder::new(CorpusConfig {
            size: 10,
            seed: 777_777,
            noise_prob: 0.3,
            ..CorpusConfig::default()
        })
        .build();
        let mut total_wer = 0.0;
        for utt in corpus.utterances() {
            let hyp = asr.transcribe(&utt.wave);
            total_wer += wer(&utt.text, &hyp);
        }
        let mean = total_wer / 10.0;
        assert!(mean < 0.25, "mean WER {mean}");
    }

    #[test]
    fn profiles_disagree_more_on_kaldi() {
        let ds0 = AsrProfile::Ds0.trained();
        let kaldi = AsrProfile::Kaldi.trained();
        let corpus = CorpusBuilder::new(CorpusConfig {
            size: 6,
            seed: 888_888,
            noise_prob: 0.5,
            ..CorpusConfig::default()
        })
        .build();
        let mut kaldi_wer = 0.0;
        let mut ds0_wer = 0.0;
        for utt in corpus.utterances() {
            ds0_wer += wer(&utt.text, &ds0.transcribe(&utt.wave));
            kaldi_wer += wer(&utt.text, &kaldi.transcribe(&utt.wave));
        }
        assert!(kaldi_wer > ds0_wer, "kaldi {kaldi_wer} vs ds0 {ds0_wer}");
    }
}
